"""Simply Weakly Recursive (SWR) TGDs -- Definition 5 and Theorem 1.

A set ``P`` of TGDs is SWR iff (i) every rule is *simple* (no repeated
variables in an atom, no constants, single-atom head) and (ii) the
position graph ``AG(P)`` has no cycle containing both an ``m``-edge and
an ``s``-edge.  Theorem 1: every SWR set is FO-rewritable.  The check
runs in PTIME: the graph has at most ``Σ_r (arity(r)+1)`` nodes and the
cycle condition reduces to an SCC computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.cycles import LabeledEdge
from repro.graphs.position_graph import PositionGraph, build_position_graph
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class SWRResult:
    """Outcome of an SWR membership check.

    Attributes:
        is_swr: overall verdict (simple AND no dangerous cycle).
        simple: True iff every rule is simple; SWR is only defined over
            simple TGDs, so ``simple=False`` forces ``is_swr=False``.
        simplicity_violations: per-rule reasons when not simple.
        graph: the position graph (built whenever every head is a
            single atom, even for non-simple rules -- the paper's
            Example 2 uses it "nonetheless"); None when some head has
            several atoms and the graph is undefined.
        dangerous_cycle: a witness cycle with both an ``m``- and an
            ``s``-edge, or None.
        graph_condition: True iff no dangerous cycle exists (the
            acyclicity condition in isolation).
    """

    is_swr: bool
    simple: bool
    simplicity_violations: tuple[tuple[str, str], ...]
    graph: PositionGraph | None
    dangerous_cycle: tuple[LabeledEdge, ...] | None

    @property
    def graph_condition(self) -> bool:
        """The position-graph acyclicity condition in isolation."""
        return self.graph is not None and self.dangerous_cycle is None

    def explain(self) -> str:
        """Human-readable verdict with the reasons."""
        lines = [f"SWR: {self.is_swr}"]
        if not self.simple:
            lines.append("not a set of simple TGDs:")
            lines.extend(
                f"  [{label}] {reason}"
                for label, reason in self.simplicity_violations
            )
        if self.graph is None:
            lines.append("position graph undefined (multi-atom head)")
        elif self.dangerous_cycle is None:
            lines.append("position graph has no cycle with both m and s")
        else:
            lines.append("dangerous cycle (m+s):")
            lines.extend(f"  {edge}" for edge in self.dangerous_cycle)
        return "\n".join(lines)


def is_swr(rules: Sequence[TGD]) -> SWRResult:
    """Check SWR membership (Definition 5) with witnesses."""
    rules = tuple(rules)
    violations: list[tuple[str, str]] = []
    for index, rule in enumerate(rules, start=1):
        for reason in rule.simplicity_violations():
            violations.append((rule.label or f"#{index}", reason))
    simple = not violations

    graph: PositionGraph | None = None
    cycle: tuple[LabeledEdge, ...] | None = None
    if all(len(rule.head) == 1 for rule in rules):
        graph = build_position_graph(rules)
        cycle = graph.dangerous_cycle()

    return SWRResult(
        is_swr=simple and graph is not None and cycle is None,
        simple=simple,
        simplicity_violations=tuple(violations),
        graph=graph,
        dangerous_cycle=cycle,
    )
