"""Weakly Recursive (WR) TGDs -- Definition 8.

A set ``P`` of arbitrary TGDs (constants, repeated variables and
multi-atom heads allowed) is WR iff its P-node graph has no cycle that
contains a ``d``-edge, an ``m``-edge and an ``s``-edge while containing
no ``i``-edge.  The paper conjectures that every WR set is
FO-rewritable and that the membership problem is in PSPACE; the P-node
graph construction used here is the documented reconstruction of
:mod:`repro.graphs.pnode_graph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.cycles import LabeledEdge
from repro.graphs.pnode_graph import (
    DEFAULT_MAX_NODES,
    PNodeGraph,
    build_pnode_graph,
)
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class WRResult:
    """Outcome of a WR membership check.

    Attributes:
        is_wr: True iff the P-node graph has no dangerous cycle.
        graph: the constructed P-node graph.
        dangerous_cycle: a witness cycle with ``d``, ``m`` and ``s``
            edges and no ``i``-edge, or None.
    """

    is_wr: bool
    graph: PNodeGraph
    dangerous_cycle: tuple[LabeledEdge, ...] | None

    def explain(self) -> str:
        """Human-readable verdict with the witness cycle, if any."""
        lines = [f"WR: {self.is_wr}"]
        lines.append(
            f"P-node graph: {len(self.graph.pnodes)} nodes, "
            f"{len(self.graph.edges)} edges"
        )
        if self.dangerous_cycle is None:
            lines.append("no cycle with d, m and s edges avoiding i-edges")
        else:
            lines.append("dangerous cycle (d+m+s, no i):")
            lines.extend(f"  {edge}" for edge in self.dangerous_cycle)
        return "\n".join(lines)


def is_wr(
    rules: Sequence[TGD], max_nodes: int = DEFAULT_MAX_NODES
) -> WRResult:
    """Check WR membership (Definition 8) with witnesses.

    Raises
    :class:`~repro.graphs.pnode_graph.PNodeGraphBudgetExceeded` when the
    P-node graph grows beyond *max_nodes* (the problem is conjectured
    PSPACE-complete, so a budget is unavoidable in general).
    """
    graph = build_pnode_graph(tuple(rules), max_nodes=max_nodes)
    cycle = graph.dangerous_cycle()
    return WRResult(is_wr=cycle is None, graph=graph, dangerous_cycle=cycle)
