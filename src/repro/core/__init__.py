"""The paper's contribution: SWR and WR membership, and classification.

* :mod:`repro.core.swr` -- Simply Weakly Recursive TGDs (Definition 5):
  simple TGDs whose position graph has no cycle with both an ``m``-edge
  and an ``s``-edge.  Membership is in PTIME.
* :mod:`repro.core.wr` -- Weakly Recursive TGDs (Definition 8):
  arbitrary TGDs whose P-node graph has no cycle with ``d``, ``m`` and
  ``s`` edges and no ``i``-edge.
* :mod:`repro.core.classify` -- classify a TGD set against every
  recognizer in the library (SWR, WR and all baseline classes).
"""

from repro.core.classify import ClassificationReport, classify
from repro.core.per_query import PerQueryClassReport, classify_for_query
from repro.core.swr import SWRResult, is_swr
from repro.core.wr import WRResult, is_wr

__all__ = [
    "ClassificationReport",
    "PerQueryClassReport",
    "SWRResult",
    "WRResult",
    "classify",
    "classify_for_query",
    "is_swr",
    "is_wr",
]
