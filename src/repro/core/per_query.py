"""Per-query class checking: Section 7's fallback, done statically.

When a TGD set as a whole fails SWR/WR, a *specific query* may only
reach a well-behaved part of it.  The static version of that idea:
restrict the rule set to the rules backward-reachable from the query
(:mod:`repro.rewriting.relevance` — only those can ever participate in
the query's rewriting) and run the membership check on the restriction.
A positive verdict guarantees FO-rewritability *of this query* even
over an ill-behaved ontology.

The dynamic counterpart (actually running the staged rewriter) is
:mod:`repro.rewriting.probe`; this module is the cheap static filter
to try first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.swr import SWRResult, is_swr
from repro.core.wr import WRResult, is_wr
from repro.graphs.pnode_graph import (
    DEFAULT_MAX_NODES,
    PNodeGraphBudgetExceeded,
)
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.tgd import TGD
from repro.rewriting.relevance import relevant_rules


@dataclass(frozen=True)
class PerQueryClassReport:
    """Class membership of the query-relevant fragment of a rule set.

    Attributes:
        relevant: the rules backward-reachable from the query.
        dropped: the ignored rules.
        swr: SWR check on the relevant fragment.
        wr: WR check on the relevant fragment (None if over budget).
        fo_rewritable_guaranteed: True when the fragment is SWR or WR
            -- every rewriting of the query stays within the fragment,
            so the query is FO-rewritable over the full set too.
    """

    relevant: tuple[TGD, ...]
    dropped: tuple[TGD, ...]
    swr: SWRResult
    wr: WRResult | None

    @property
    def fo_rewritable_guaranteed(self) -> bool:
        if self.swr.is_swr:
            return True
        return self.wr is not None and self.wr.is_wr


def classify_for_query(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    wr_max_nodes: int = DEFAULT_MAX_NODES,
) -> PerQueryClassReport:
    """SWR/WR membership of the query-relevant fragment of *rules*."""
    relevance = relevant_rules(query, rules)
    fragment = relevance.relevant
    swr_result = is_swr(fragment)
    wr_result: WRResult | None
    try:
        wr_result = is_wr(fragment, max_nodes=wr_max_nodes)
    except PNodeGraphBudgetExceeded:
        wr_result = None  # keep the SWR verdict; WR undecided
    return PerQueryClassReport(
        relevant=fragment,
        dropped=relevance.dropped,
        swr=swr_result,
        wr=wr_result,
    )
