"""Classification of a TGD set against every class in the library.

Produces the membership matrix the benches print for experiment E7
(the paper's subsumption claims): SWR, WR and every baseline class,
with per-class reasons and witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.classes.base import ClassCheck
from repro.classes.registry import (
    ALL_CLASS_NAMES,
    BASELINE_CLASS_NAMES,
    all_recognizers,
)
from repro.core.swr import SWRResult, is_swr
from repro.core.wr import WRResult, is_wr
from repro.graphs.pnode_graph import PNodeGraphBudgetExceeded
from repro.lang.printer import format_table
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class ClassificationReport:
    """Membership of one TGD set in every implemented class.

    Attributes:
        rules: the classified set.
        swr: the full SWR check result (with position graph).
        wr: the full WR check result (with P-node graph), or None if
            the P-node graph exceeded its node budget.
        baselines: name -> ClassCheck for every other recognizer.
    """

    rules: tuple[TGD, ...]
    swr: SWRResult
    wr: WRResult | None
    baselines: Mapping[str, ClassCheck]

    def memberships(self) -> dict[str, bool | None]:
        """Flat name -> verdict mapping (None = not decided).

        Keys follow :data:`repro.classes.registry.ALL_CLASS_NAMES`
        order exactly, so tables and golden tests are stable.
        """
        out: dict[str, bool | None] = {
            "SWR": self.swr.is_swr,
            "WR": self.wr.is_wr if self.wr is not None else None,
        }
        for name in ALL_CLASS_NAMES:
            if name in self.baselines:
                out[name] = self.baselines[name].member
        for name, check in self.baselines.items():
            if name not in out:
                out[name] = check.member
        return out

    def table(self) -> str:
        """A two-column text table: class, member?"""
        rows = [
            (name, {True: "yes", False: "no", None: "?"}[verdict])
            for name, verdict in self.memberships().items()
        ]
        return format_table(("class", "member"), rows)

    def in_any_baseline(self) -> bool:
        """True iff some FO-rewritable baseline class accepts the set.

        Only the FO-rewritable baselines count (guarded/datalog/
        weakly-acyclic are reference classes, not FO-rewritable ones).
        """
        return any(
            self.baselines[name].member
            for name in BASELINE_CLASS_NAMES
            if name in self.baselines
        )


def classify(
    rules: Sequence[TGD], wr_max_nodes: int = 20_000
) -> ClassificationReport:
    """Run every recognizer over *rules* and collect the verdicts."""
    rules = tuple(rules)
    swr_result = is_swr(rules)
    try:
        wr_result: WRResult | None = is_wr(rules, max_nodes=wr_max_nodes)
    except PNodeGraphBudgetExceeded:
        wr_result = None
    checks = {name: check(rules) for name, check in all_recognizers()}
    return ClassificationReport(
        rules=rules, swr=swr_result, wr=wr_result, baselines=checks
    )
