"""UCQ-to-SQL compilation and a SQLite execution backend.

First-order rewritability (Definition 1) is valuable precisely because
the rewritten query can be handed to a plain RDBMS.  This module closes
that loop: :func:`ucq_to_sql` compiles a UCQ into a ``SELECT ... UNION``
statement, and :class:`SQLiteBackend` materialises a
:class:`~repro.data.database.Database` into SQLite tables and executes
the SQL, so ontology-mediated query answering really does run as SQL
over the original data (paper Section 1: "the complexity of query
answering ... matches the complexity of query evaluation in classical
DBMSs").

Every value is stored in a tagged text encoding (``s:`` for strings,
``i:`` for integers, ``n:`` for labeled nulls) so heterogeneous constant
types round-trip exactly and the Unique Name Assumption is preserved by
SQL equality.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Iterable, Sequence

from repro import obs
from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.errors import ReproError
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.signature import Signature
from repro.lang.terms import Constant, Null, Term, Variable


# Virtual-machine instructions between progress-handler callbacks when
# instrumentation is on; small enough to resolve per-query work, large
# enough to keep the callback itself off the profile.
_PROGRESS_GRANULARITY = 256


def _encode(term: Term) -> str:
    if isinstance(term, Constant):
        if isinstance(term.value, bool):
            raise ReproError("boolean constants are not supported in SQL backend")
        if isinstance(term.value, int):
            return f"i:{term.value}"
        return f"s:{term.value}"
    if isinstance(term, Null):
        return f"n:{term.label}"
    raise ReproError(f"cannot encode non-ground term {term!r}")


def _decode(text: str) -> Term:
    tag, _, payload = text.partition(":")
    if tag == "i":
        return Constant(int(payload))
    if tag == "s":
        return Constant(payload)
    if tag == "n":
        return Null(payload)
    raise ReproError(f"malformed encoded value {text!r}")


def _sql_literal(term: Term) -> str:
    encoded = _encode(term).replace("'", "''")
    return f"'{encoded}'"


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def cq_to_sql(query: ConjunctiveQuery) -> str:
    """Compile one CQ into a ``SELECT DISTINCT`` over self-joined tables.

    Each body atom becomes a table alias ``t0, t1, ...``; variable
    co-occurrence becomes equality predicates; constants become
    equality with literals.  Boolean queries select the literal ``1``.
    """
    aliases = [f"t{i}" for i in range(len(query.body))]
    from_clause = ", ".join(
        f"{_quote_ident(atom.relation)} AS {alias}"
        for atom, alias in zip(query.body, aliases)
    )
    first_site: dict[Variable, str] = {}
    conditions: list[str] = []
    for atom, alias in zip(query.body, aliases):
        for position, term in enumerate(atom.terms, start=1):
            column = f"{alias}.c{position}"
            if isinstance(term, Variable):
                anchor = first_site.get(term)
                if anchor is None:
                    first_site[term] = column
                else:
                    conditions.append(f"{column} = {anchor}")
            else:
                conditions.append(f"{column} = {_sql_literal(term)}")
    if query.answer_terms:
        select_items = []
        for i, term in enumerate(query.answer_terms):
            if isinstance(term, Variable):
                select_items.append(f"{first_site[term]} AS a{i}")
            else:
                select_items.append(f"{_sql_literal(term)} AS a{i}")
        select_clause = ", ".join(select_items)
    else:
        select_clause = "1 AS a0"
    sql = f"SELECT DISTINCT {select_clause} FROM {from_clause}"
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    return sql


def ucq_to_sql(query: UnionOfConjunctiveQueries | ConjunctiveQuery) -> str:
    """Compile a UCQ into a ``UNION`` of per-disjunct ``SELECT`` blocks."""
    ucq = UnionOfConjunctiveQueries.of(query)
    with obs.span("sql.compile", disjuncts=len(ucq)):
        return "\nUNION\n".join(cq_to_sql(cq) for cq in ucq)


def _rule_to_cq(rule) -> ConjunctiveQuery:
    """View a full TGD as the CQ selecting its head tuple."""
    head = rule.head[0]
    return ConjunctiveQuery(head.terms, rule.body, name=head.relation)


def datalog_to_sql(rewriting) -> str:
    """Compile a :class:`~repro.rewriting.datalog_target.DatalogRewriting`
    into a single ``WITH`` query.

    One CTE per auxiliary predicate (its defining rules merged with
    ``UNION ALL``; the per-branch ``SELECT DISTINCT`` keeps each CTE
    duplicate-light) and a final ``SELECT DISTINCT`` over the
    ``UNION ALL`` of the goal rules.  CTE columns follow the backend's
    base-table convention (``c1 .. ck``, ``c0`` for arity 0), so
    :func:`cq_to_sql` compiles goal bodies against CTEs and base tables
    alike.  The output is byte-deterministic: the rewriting's rules are
    already normalized and sorted, and the emitter adds no
    order-sensitive choices of its own.
    """
    with obs.span(
        "sql.compile_datalog",
        rules=len(rewriting.aux_rules) + len(rewriting.goal_rules),
    ):
        groups: dict[str, list] = {}
        for rule in rewriting.aux_rules:
            groups.setdefault(rule.head[0].relation, []).append(rule)
        ctes = []
        for name, rules in groups.items():
            arity = rules[0].head[0].arity
            columns = ", ".join(
                f"c{i}" for i in range(1, arity + 1)
            ) or "c0"
            selects = "\nUNION ALL\n".join(
                cq_to_sql(_rule_to_cq(rule)) for rule in rules
            )
            ctes.append(
                f"{_quote_ident(name)}({columns}) AS (\n{selects}\n)"
            )
        goal_selects = "\nUNION ALL\n".join(
            cq_to_sql(_rule_to_cq(rule)) for rule in rewriting.goal_rules
        )
        columns = ", ".join(
            f"a{i}" for i in range(rewriting.arity)
        ) or "a0"
        outer = f"SELECT DISTINCT {columns} FROM (\n{goal_selects}\n)"
        if not ctes:
            return outer
        return "WITH " + ",\n".join(ctes) + "\n" + outer


class SQLiteBackend:
    """A SQLite-backed relational store mirroring a :class:`Database`.

    Intended usage::

        backend = SQLiteBackend.from_database(db)
        rows = backend.execute_ucq(rewriting)

    The backend creates one table per relation with columns
    ``c1 ... ck`` and a covering index per column, then evaluates
    compiled SQL with ordinary SQLite query processing.

    The backend is safe to share across the worker threads of
    :meth:`repro.api.Session.answer_many`: one connection is opened with
    ``check_same_thread=False`` and every statement runs under an
    internal lock (SQLite serialises at the C level anyway; the lock
    also keeps the progress-handler tick accounting exact).  ``close``
    is idempotent, and using a closed backend raises
    :class:`~repro.lang.errors.ReproError` rather than leaking a stale
    handle.
    """

    def __init__(self, signature: Signature):
        self._signature = signature
        self._lock = threading.RLock()
        self._connection: sqlite3.Connection | None = sqlite3.connect(
            ":memory:", check_same_thread=False
        )
        for relation in signature.relations():
            self._create_relation(relation, signature[relation])

    def _create_relation(self, relation: str, arity: int) -> None:
        columns = ", ".join(f"c{i} TEXT NOT NULL" for i in range(1, arity + 1))
        if arity == 0:
            columns = "c0 TEXT NOT NULL DEFAULT ''"
        connection = self._conn()
        connection.execute(
            f"CREATE TABLE {_quote_ident(relation)} ({columns})"
        )
        for i in range(1, arity + 1):
            connection.execute(
                f"CREATE INDEX {_quote_ident(f'ix_{relation}_{i}')} "
                f"ON {_quote_ident(relation)} (c{i})"
            )

    def ensure_atoms(self, atoms: Iterable[Atom]) -> None:
        """Create (empty) tables for relations of *atoms* that the
        loaded signature lacks, so compiled SQL never hits a missing
        table -- rewritings may reference ontology relations with no
        stored facts."""
        with self._lock:
            for atom in atoms:
                if atom.relation not in self._signature.relations():
                    self._signature.declare(atom.relation, atom.arity)
                    self._create_relation(atom.relation, atom.arity)

    def ensure_ucq(
        self, query: UnionOfConjunctiveQueries | ConjunctiveQuery
    ) -> None:
        """:meth:`ensure_atoms` over every body atom of a (U)CQ."""
        ucq = UnionOfConjunctiveQueries.of(query)
        self.ensure_atoms(atom for cq in ucq for atom in cq.body)

    @classmethod
    def from_database(cls, database: Database) -> "SQLiteBackend":
        """Create tables for the database's signature and load its facts."""
        backend = cls(database.signature)
        backend.load(database.facts())
        return backend

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the connection."""
        return self._connection is None

    def _conn(self) -> sqlite3.Connection:
        if self._connection is None:
            raise ReproError("SQLiteBackend is closed")
        return self._connection

    def load(self, facts: Iterable[Atom]) -> int:
        """Bulk-insert facts; returns the number of rows inserted."""
        with obs.span("sql.load") as span, self._lock:
            connection = self._conn()
            count = 0
            for fact in facts:
                placeholders = ", ".join("?" for _ in fact.terms) or "''"
                connection.execute(
                    f"INSERT INTO {_quote_ident(fact.relation)} VALUES ({placeholders})",
                    tuple(_encode(t) for t in fact.terms),
                )
                count += 1
            connection.commit()
            span.set(rows=count)
            obs.count("sql.rows_loaded", count)
        return count

    def delete(self, facts: Iterable[Atom]) -> int:
        """Remove facts; returns the number of rows deleted.

        The incremental-maintenance counterpart of :meth:`load` (see
        :mod:`repro.hybrid.maintain`): relations the backend never saw
        are ignored, and deleting an absent fact is a no-op, so callers
        can hand over a raw delta without pre-filtering.
        """
        with obs.span("sql.delete") as span, self._lock:
            connection = self._conn()
            count = 0
            for fact in facts:
                if fact.relation not in self._signature.relations():
                    continue
                conditions = " AND ".join(
                    f"c{i} = ?" for i in range(1, len(fact.terms) + 1)
                ) or "1 = 1"
                cursor = connection.execute(
                    f"DELETE FROM {_quote_ident(fact.relation)} "
                    f"WHERE {conditions}",
                    tuple(_encode(t) for t in fact.terms),
                )
                count += cursor.rowcount if cursor.rowcount > 0 else 0
            connection.commit()
            span.set(rows=count)
            obs.count("sql.rows_deleted", count)
        return count

    def _run(self, sql: str) -> list:
        """Execute *sql*, tracking statement/row/VM-progress counters.

        The SQLite progress handler fires every ``_PROGRESS_GRANULARITY``
        virtual-machine instructions, so ``sql.vdbe_ticks`` approximates
        the rows/index entries scanned by the query -- it is only
        installed while instrumentation is enabled, keeping the
        disabled path handler-free.
        """
        ticks = 0
        instrumented = obs.enabled()
        with self._lock:
            connection = self._conn()
            if instrumented:

                def on_progress() -> int:
                    nonlocal ticks
                    ticks += 1
                    return 0

                connection.set_progress_handler(
                    on_progress, _PROGRESS_GRANULARITY
                )
            try:
                rows = connection.execute(sql).fetchall()
            finally:
                if instrumented:
                    connection.set_progress_handler(None, 0)
        if instrumented:
            obs.count("sql.statements")
            obs.count("sql.rows_fetched", len(rows))
            obs.count("sql.vdbe_ticks", ticks)
        return rows

    def execute_sql(self, sql: str) -> frozenset[tuple[Term, ...]]:
        """Run raw compiled SQL, decoding rows back into terms."""
        with obs.span("sql.execute", kind="raw") as span:
            rows = self._run(sql)
            span.set(rows=len(rows))
        out: set[tuple[Term, ...]] = set()
        for row in rows:
            decoded = tuple(
                _decode(cell) for cell in row if isinstance(cell, str)
            )
            out.add(decoded)
        return frozenset(out)

    def execute_cq(self, query: ConjunctiveQuery) -> frozenset[tuple[Term, ...]]:
        """Compile and run one CQ; boolean queries return {()} or {}."""
        with obs.span("sql.execute", kind="cq") as span:
            rows = self._run(cq_to_sql(query))
            span.set(rows=len(rows))
        return _decode_rows(rows, query.arity)

    def execute_ucq(
        self, query: UnionOfConjunctiveQueries | ConjunctiveQuery
    ) -> frozenset[tuple[Term, ...]]:
        """Compile and run a UCQ; boolean queries return {()} or {}."""
        ucq = UnionOfConjunctiveQueries.of(query)
        with obs.span(
            "sql.execute", kind="ucq", disjuncts=len(ucq)
        ) as span:
            rows = self._run(ucq_to_sql(ucq))
            span.set(rows=len(rows))
        return _decode_rows(rows, ucq.arity)

    def close(self) -> None:
        """Close the underlying SQLite connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _decode_rows(
    rows: Sequence[Sequence[object]], arity: int
) -> frozenset[tuple[Term, ...]]:
    if arity == 0:
        return frozenset([()]) if rows else frozenset()
    out: set[tuple[Term, ...]] = set()
    for row in rows:
        out.add(tuple(_decode(str(cell)) for cell in row))
    return frozenset(out)
