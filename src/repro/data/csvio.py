"""CSV import/export of fact sets.

The on-disk layout is one CSV file per relation (``<relation>.csv``)
with no header; every cell is read back as a string constant unless it
parses as an integer, in which case it becomes an integer constant.
Labeled nulls are serialised as ``_:label`` and restored as nulls.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.errors import ReproError
from repro.lang.terms import Constant, Null, Term


def _cell_to_term(cell: str) -> Term:
    if cell.startswith("_:"):
        return Null(cell[2:])
    try:
        return Constant(int(cell))
    except ValueError:
        return Constant(cell)


def _term_to_cell(term: Term) -> str:
    if isinstance(term, Null):
        return f"_:{term.label}"
    if isinstance(term, Constant):
        return str(term.value)
    raise ReproError(f"cannot serialise non-ground term {term!r}")


def load_facts_csv(directory: str | Path) -> Database:
    """Load every ``*.csv`` file under *directory* into a database.

    The file stem names the relation; rows become facts.
    """
    base = Path(directory)
    if not base.is_dir():
        raise ReproError(f"{base} is not a directory")
    database = Database()
    for path in sorted(base.glob("*.csv")):
        relation = path.stem
        with path.open(newline="") as handle:
            for row in csv.reader(handle):
                if not row:
                    continue
                database.add(Atom(relation, [_cell_to_term(c) for c in row]))
    return database


def save_facts_csv(database: Database, directory: str | Path) -> tuple[Path, ...]:
    """Write the database as one CSV file per relation; return the paths."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for relation in database.relations():
        path = base / f"{relation}.csv"
        rows = sorted(
            database.rows(relation),
            key=lambda row: tuple(_term_to_cell(t) for t in row),
        )
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            for row in rows:
                writer.writerow([_term_to_cell(t) for t in row])
        written.append(path)
    return tuple(written)


def facts_from_rows(relation: str, rows: Iterable[Iterable[object]]) -> tuple[Atom, ...]:
    """Convenience: build facts from plain Python rows.

    Strings and ints become constants; existing terms pass through.
    """
    out: list[Atom] = []
    for row in rows:
        terms: list[Term] = []
        for value in row:
            if isinstance(value, (Constant, Null)):
                terms.append(value)
            else:
                terms.append(Constant(value))
        out.append(Atom(relation, terms))
    return tuple(out)
