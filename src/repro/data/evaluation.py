"""Conjunctive-query evaluation over :class:`~repro.data.database.Database`.

Implements ``ans(q, D)`` of Section 3 for CQs and UCQs by an indexed
backtracking join: atoms are processed most-bound-first, each step
either probing a (relation, position) hash index when some argument is
already bound or scanning the relation otherwise.

Two answer policies are provided:

* :func:`evaluate_cq` / :func:`evaluate_ucq` return every answer tuple,
  including tuples that mention labeled nulls (useful when querying a
  chase instance as a plain database);
* the ``certain=True`` flag filters tuples mentioning nulls, which is
  the filter used to read certain answers off a chase.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Null, Term, Variable


def evaluate_cq(
    query: ConjunctiveQuery, database: Database, certain: bool = False
) -> frozenset[tuple[Term, ...]]:
    """All answers of *query* over *database*.

    With ``certain=True``, answers containing labeled nulls are
    filtered out (the certain-answer filter over chase instances).
    Boolean queries return ``{()}`` when satisfied and ``frozenset()``
    otherwise.
    """
    answers: set[tuple[Term, ...]] = set()
    for binding in _match_body(list(query.body), database, {}):
        row = tuple(
            binding[t] if isinstance(t, Variable) else t
            for t in query.answer_terms
        )
        if certain and any(isinstance(t, Null) for t in row):
            continue
        answers.add(row)
    return frozenset(answers)


def evaluate_ucq(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    database: Database,
    certain: bool = False,
) -> frozenset[tuple[Term, ...]]:
    """All answers of a UCQ (union of the disjuncts' answers)."""
    answers: set[tuple[Term, ...]] = set()
    for cq in UnionOfConjunctiveQueries.of(query):
        answers.update(evaluate_cq(cq, database, certain=certain))
    return frozenset(answers)


def holds(query: ConjunctiveQuery, database: Database) -> bool:
    """True iff the boolean query (or some answer) is satisfied."""
    for _ in _match_body(list(query.body), database, {}):
        return True
    return False


def find_homomorphism(
    atoms: Sequence[Atom], database: Database
) -> dict[Variable, Term] | None:
    """A homomorphism from *atoms* into *database*, or None.

    Used by the chase (applicability and satisfaction checks) and by
    CQ containment via the canonical-database method.
    """
    for binding in _match_body(list(atoms), database, {}):
        return binding
    return None


def all_homomorphisms(
    atoms: Sequence[Atom], database: Database
) -> Iterator[dict[Variable, Term]]:
    """Every homomorphism from *atoms* into *database* (lazily)."""
    return _match_body(list(atoms), database, {})


def _match_body(
    atoms: list[Atom],
    database: Database,
    binding: dict[Variable, Term],
) -> Iterator[dict[Variable, Term]]:
    """Backtracking join: yield every extension of *binding* matching *atoms*."""
    if not atoms:
        yield dict(binding)
        return
    index = _pick_next(atoms, database, binding)
    atom = atoms[index]
    rest = atoms[:index] + atoms[index + 1:]
    for row in _candidate_rows(atom, database, binding):
        extension = _match_atom(atom, row, binding)
        if extension is None:
            continue
        yield from _match_body(rest, database, extension)


def _pick_next(
    atoms: list[Atom], database: Database, binding: dict[Variable, Term]
) -> int:
    """Greedy join order: prefer atoms with bound arguments, then small relations."""
    best_index = 0
    best_key: tuple[int, int] | None = None
    for i, atom in enumerate(atoms):
        bound = sum(
            1
            for t in atom.terms
            if not isinstance(t, Variable) or t in binding
        )
        key = (-bound, database.count(atom.relation))
        if best_key is None or key < best_key:
            best_key = key
            best_index = i
    return best_index


def _candidate_rows(
    atom: Atom, database: Database, binding: dict[Variable, Term]
) -> tuple[tuple[Term, ...], ...]:
    """Rows of the atom's relation worth trying under *binding*.

    Probes the hash index on the first bound argument position, falling
    back to a full relation scan when nothing is bound.
    """
    for position, term in enumerate(atom.terms, start=1):
        if isinstance(term, Variable):
            value = binding.get(term)
            if value is not None:
                return database.lookup(atom.relation, position, value)
        else:
            return database.lookup(atom.relation, position, term)
    return tuple(database.rows(atom.relation))


def _match_atom(
    atom: Atom, row: tuple[Term, ...], binding: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    """Extend *binding* so that *atom* maps onto *row*, or None."""
    if len(row) != atom.arity:
        return None
    extension = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Variable):
            bound = extension.get(term)
            if bound is None:
                extension[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extension
