"""The data-plane seam: what a session needs from an evaluation backend.

The paper's pitch is that FO-rewritable query answering pushes all data
work down to a stock DBMS -- *which* DBMS should therefore be a detail.
:class:`Backend` is the protocol :class:`~repro.api.Session` and
:class:`~repro.api.PreparedQuery` program against; the bundled SQLite
implementation (:class:`repro.data.sql.SQLiteBackend`) is one
registered provider, and server-grade backends (PostgreSQL, DuckDB)
plug in behind the same six methods without touching the session layer.

Thread-safety contract
----------------------

A backend is shared across the worker threads of
``Session.answer_many`` and across the serving layer's executor, so
every method must be safe to call concurrently: either internally
locked (as SQLite's single connection is) or backed by a connection
pool.  ``close`` must be idempotent, and using a closed backend must
raise :class:`~repro.lang.errors.ReproError` rather than corrupt state.

Providers register under a name::

    from repro.data.backend import register_backend, create_backend

    register_backend("duckdb", lambda signature: DuckDBBackend(signature))
    backend = create_backend("duckdb", signature)

``Session(backend_factory=...)`` accepts either a registered name or a
factory callable directly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.lang.atoms import Atom
from repro.lang.errors import ReproError
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.signature import Signature
from repro.lang.terms import Term


@runtime_checkable
class Backend(Protocol):
    """Evaluation backend for compiled rewritings (UCQ or SQL text).

    All methods must be thread-safe (see the module docstring); the
    session layer calls them concurrently from batch pools and the
    async serving executor without external locking.
    """

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the connection(s)."""
        ...

    def load(self, facts: Iterable[Atom]) -> int:
        """Bulk-insert ground facts; returns the number of rows stored.

        Backends may additionally implement the *optional* ``delete(facts)
        -> int`` counterpart; the session layer probes for it with
        ``getattr`` when propagating ABox deletions (incremental
        maintenance, :mod:`repro.hybrid`) and rebuilds the backend from
        scratch when it is absent.
        """
        ...

    def ensure_atoms(self, atoms: Iterable[Atom]) -> None:
        """Create (empty) relations for *atoms* the store lacks, so
        compiled SQL never references a missing table."""
        ...

    def ensure_ucq(
        self, query: UnionOfConjunctiveQueries | ConjunctiveQuery
    ) -> None:
        """:meth:`ensure_atoms` over every body atom of a (U)CQ."""
        ...

    def execute_sql(self, sql: str) -> frozenset[tuple[Term, ...]]:
        """Run compiled SQL text, decoding rows back into terms."""
        ...

    def execute_ucq(
        self, query: UnionOfConjunctiveQueries | ConjunctiveQuery
    ) -> frozenset[tuple[Term, ...]]:
        """Compile and run a UCQ; boolean queries return ``{()}`` or ``{}``."""
        ...

    def close(self) -> None:
        """Release the underlying connection(s); must be idempotent."""
        ...


BackendFactory = Callable[[Signature], Backend]
"""A provider: builds an empty backend over *signature* (facts are
loaded separately with :meth:`Backend.load`)."""


def _sqlite_factory(signature: Signature) -> Backend:
    # Imported lazily so the protocol module stays import-light and the
    # session layer never names the concrete class.
    from repro.data.sql import SQLiteBackend

    return SQLiteBackend(signature)


_FACTORIES: dict[str, BackendFactory] = {"sqlite": _sqlite_factory}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a named backend provider."""
    _FACTORIES[name] = factory


def backend_names() -> tuple[str, ...]:
    """The registered provider names, sorted."""
    return tuple(sorted(_FACTORIES))


def create_backend(
    factory: str | BackendFactory, signature: Signature
) -> Backend:
    """Instantiate a backend from a registered name or a factory."""
    if callable(factory):
        return factory(signature)
    provider = _FACTORIES.get(factory)
    if provider is None:
        raise ReproError(
            f"unknown backend factory {factory!r}; "
            f"registered: {', '.join(backend_names())}"
        )
    return provider(signature)
