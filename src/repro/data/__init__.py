"""Extensional layer: in-memory relational database, evaluation, SQL.

This package provides the "traditional relational database" substrate
that OBDA layers an ontology on top of (paper Section 1): an in-memory
fact store with hash indexes, a conjunctive-query evaluator implementing
``ans(q, D)`` of Section 3, a compiler from UCQs to SQL with a SQLite
execution backend (demonstrating that FO-rewritability turns ontology
QA into plain SQL evaluation), and CSV fact I/O.
"""

from repro.data.csvio import load_facts_csv, save_facts_csv
from repro.data.database import Database
from repro.data.datalog import (
    DatalogProgram,
    MaterializationResult,
    datalog_fragment,
)
from repro.data.evaluation import evaluate_cq, evaluate_ucq
from repro.data.sql import SQLiteBackend, ucq_to_sql

__all__ = [
    "Database",
    "DatalogProgram",
    "MaterializationResult",
    "datalog_fragment",
    "SQLiteBackend",
    "evaluate_cq",
    "evaluate_ucq",
    "load_facts_csv",
    "save_facts_csv",
    "ucq_to_sql",
]
