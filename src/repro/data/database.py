"""In-memory relational database with per-position hash indexes.

A :class:`Database` stores ground atoms (facts) grouped by relation.
Terms in facts are constants or labeled nulls -- nulls appear when the
database is a chase instance.  The store maintains, lazily, one hash
index per (relation, position) pair mapping each term to the facts that
carry it at that position; the CQ evaluator uses these indexes for its
join plans.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError
from repro.lang.signature import Signature
from repro.lang.terms import Constant, Null, Term


class Database:
    """A mutable set of facts with indexed access paths.

    The class behaves as a collection of :class:`Atom` objects
    (``len``, ``in``, iteration) and offers relation-level and
    index-level access for evaluators.
    """

    def __init__(self, facts: Iterable[Atom] = ()):
        self._relations: dict[str, set[tuple[Term, ...]]] = {}
        self._indexes: dict[tuple[str, int], dict[Term, list[tuple[Term, ...]]]] = {}
        self._signature = Signature()
        for fact in facts:
            self.add(fact)

    # ----------------------------------------------------------------- #
    # Mutation                                                           #
    # ----------------------------------------------------------------- #

    def add(self, fact: Atom) -> bool:
        """Insert *fact*; return True iff it was not already present."""
        if not fact.is_ground():
            raise SafetyError(f"cannot store non-ground atom {fact}")
        self._signature.observe_atom(fact)
        rows = self._relations.setdefault(fact.relation, set())
        if fact.terms in rows:
            return False
        rows.add(fact.terms)
        for position in range(1, fact.arity + 1):
            index = self._indexes.get((fact.relation, position))
            if index is not None:
                index.setdefault(fact.terms[position - 1], []).append(fact.terms)
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; return the number actually added."""
        return sum(1 for fact in facts if self.add(fact))

    def discard(self, fact: Atom) -> bool:
        """Remove *fact* if present; return True iff it was present."""
        rows = self._relations.get(fact.relation)
        if rows is None or fact.terms not in rows:
            return False
        rows.remove(fact.terms)
        for position in range(1, fact.arity + 1):
            index = self._indexes.get((fact.relation, position))
            if index is not None:
                bucket = index.get(fact.terms[position - 1])
                if bucket is not None:
                    bucket.remove(fact.terms)
        return True

    # ----------------------------------------------------------------- #
    # Access                                                             #
    # ----------------------------------------------------------------- #

    @property
    def signature(self) -> Signature:
        """The signature induced by the stored facts."""
        return self._signature

    def relations(self) -> tuple[str, ...]:
        """Relation symbols with at least one stored fact, sorted."""
        return tuple(sorted(r for r, rows in self._relations.items() if rows))

    def rows(self, relation: str) -> frozenset[tuple[Term, ...]]:
        """All tuples of *relation* (empty when unknown)."""
        return frozenset(self._relations.get(relation, ()))

    def count(self, relation: str) -> int:
        """Number of stored tuples of *relation*."""
        return len(self._relations.get(relation, ()))

    def lookup(
        self, relation: str, position: int, term: Term
    ) -> tuple[tuple[Term, ...], ...]:
        """All tuples of *relation* with *term* at 1-based *position*.

        Builds the (relation, position) hash index on first use.
        """
        key = (relation, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self._relations.get(relation, ()):
                index.setdefault(row[position - 1], []).append(row)
            self._indexes[key] = index
        return tuple(index.get(term, ()))

    def facts(self) -> Iterator[Atom]:
        """Iterate over all stored facts as atoms."""
        for relation, rows in self._relations.items():
            for row in rows:
                yield Atom(relation, row)

    def constants(self) -> frozenset[Constant]:
        """The active domain restricted to constants."""
        out: set[Constant] = set()
        for rows in self._relations.values():
            for row in rows:
                out.update(t for t in row if isinstance(t, Constant))
        return frozenset(out)

    def nulls(self) -> frozenset[Null]:
        """All labeled nulls occurring in the stored facts."""
        out: set[Null] = set()
        for rows in self._relations.values():
            for row in rows:
                out.update(t for t in row if isinstance(t, Null))
        return frozenset(out)

    def copy(self) -> "Database":
        """An independent copy of this database (indexes not copied)."""
        clone = Database()
        for relation, rows in self._relations.items():
            target = clone._relations.setdefault(relation, set())
            target.update(rows)
            if rows:
                arity = len(next(iter(rows)))
                clone._signature.declare(relation, arity)
        return clone

    # ----------------------------------------------------------------- #
    # Collection protocol                                                #
    # ----------------------------------------------------------------- #

    def __contains__(self, fact: Atom) -> bool:
        rows = self._relations.get(fact.relation)
        return rows is not None and fact.terms in rows

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    def __iter__(self) -> Iterator[Atom]:
        return self.facts()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine: Mapping[str, set] = {
            r: rows for r, rows in self._relations.items() if rows
        }
        theirs: Mapping[str, set] = {
            r: rows for r, rows in other._relations.items() if rows
        }
        return mine == theirs

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{r}:{len(rows)}" for r, rows in sorted(self._relations.items())
        )
        return f"Database({sizes})"
