"""Semi-naive bottom-up evaluation of (plain) Datalog programs.

The paper's introduction contrasts TGDs with classical Datalog, which
lacks value invention but enjoys terminating bottom-up evaluation.
This module provides that substrate: a semi-naive fixpoint engine for
*full* TGDs (no existential head variables), used by the
materialisation-vs-rewriting comparison benches and available as a
standalone component.

Semi-naive evaluation avoids rederiving known facts: at each round,
every rule is evaluated once per body atom with that atom restricted
to the *delta* (facts new in the previous round) and the remaining
atoms over the full instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.data.database import Database
from repro.data.evaluation import _match_atom, _match_body  # noqa: SLF001
from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term, Variable
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class MaterializationResult:
    """Outcome of a Datalog materialisation.

    Attributes:
        instance: the least fixpoint (contains the input facts).
        rounds: number of semi-naive rounds until saturation.
        derived: number of facts added beyond the input.
    """

    instance: Database
    rounds: int
    derived: int


class DatalogProgram:
    """A set of full TGDs evaluated bottom-up to a least fixpoint."""

    def __init__(self, rules: Sequence[TGD]):
        rules = tuple(rules)
        for rule in rules:
            if rule.existential_head_variables():
                raise SafetyError(
                    f"rule {rule.label or rule} has existential head "
                    "variables; Datalog evaluation requires full TGDs"
                )
        self._rules = rules

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The program's rules."""
        return self._rules

    def materialize(self, database: Database) -> MaterializationResult:
        """Compute the least fixpoint of the program over *database*."""
        instance = database.copy()
        delta = list(database.facts())
        rounds = 0
        derived = 0
        while delta:
            rounds += 1
            delta_db = Database(delta)
            next_delta: list[Atom] = []
            for rule in self._rules:
                for binding in _semi_naive_matches(rule, instance, delta_db):
                    for head in rule.head:
                        fact = Atom(
                            head.relation,
                            [
                                binding[t] if isinstance(t, Variable) else t
                                for t in head.terms
                            ],
                        )
                        if instance.add(fact):
                            next_delta.append(fact)
                            derived += 1
            delta = next_delta
        return MaterializationResult(
            instance=instance, rounds=rounds, derived=derived
        )

    def answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        database: Database,
    ) -> frozenset[tuple[Term, ...]]:
        """Materialise and evaluate *query* over the fixpoint."""
        from repro.data.evaluation import evaluate_ucq

        result = self.materialize(database)
        return evaluate_ucq(
            UnionOfConjunctiveQueries.of(query), result.instance
        )


def _semi_naive_matches(
    rule: TGD, instance: Database, delta: Database
) -> Iterator[dict[Variable, Term]]:
    """Bindings of the rule body using >= 1 delta fact.

    One pass per body position: atom *i* ranges over the delta, atoms
    before and after it over the full instance; duplicate bindings
    across passes are filtered.
    """
    seen: set[tuple[Term, ...]] = set()
    body_vars = rule.body_variables()
    body = list(rule.body)
    for pivot_index, pivot in enumerate(body):
        rest = body[:pivot_index] + body[pivot_index + 1:]
        for row in delta.rows(pivot.relation):
            base = _match_atom(pivot, row, {})
            if base is None:
                continue
            for binding in _match_body(rest, instance, base):
                key = tuple(binding[v] for v in body_vars)
                if key in seen:
                    continue
                seen.add(key)
                yield binding


def datalog_fragment(rules: Sequence[TGD]) -> tuple[TGD, ...]:
    """The full (existential-free) rules of a TGD set."""
    return tuple(r for r in rules if not r.existential_head_variables())
