"""Static analysis (lint) for TGD programs and queries.

A pass-pipeline analyzer that turns the paper's graph conditions --
and a layer of everyday well-formedness checks -- into structured
:class:`~repro.lint.diagnostics.Diagnostic` records with stable codes,
severities, source spans and fix hints, renderable as text, JSON or
SARIF.  See ``docs/lint.md`` for the full code catalogue.

Typical usage::

    from repro.lint import lint_source, render
    report = lint_source(open("ontology.dlp").read(), path="ontology.dlp")
    print(render(report, "text"))
    raise SystemExit(report.exit_code(strict=True))
"""

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.engine import (
    LintConfig,
    PASS_REGISTRY,
    all_codes,
    code_names,
    lint_program,
    lint_source,
    preflight,
)
from repro.lint.formats import render, render_json, render_sarif, render_text
from repro.lint.passes import LintContext, estimate_rewriting_growth, rule_subsumes

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintContext",
    "LintReport",
    "PASS_REGISTRY",
    "Severity",
    "all_codes",
    "code_names",
    "estimate_rewriting_growth",
    "lint_program",
    "lint_source",
    "preflight",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_subsumes",
]
