"""The lint pass pipeline.

:func:`lint_program` runs the registered passes over parsed rules (and
an optional query); :func:`lint_source` starts from program text,
converting parse failures into ``RL000`` diagnostics instead of
exceptions; :func:`preflight` is the cheap error-level subset that
``repro classify`` and ``repro rewrite`` run before their real work.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

from repro.lang.errors import ParseError
from repro.lang.parser import parse_program, parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.tgd import TGD
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.passes import (
    LintContext,
    pass_arity_consistency,
    pass_duplicate_and_subsumed_rules,
    pass_existential_head_variables,
    pass_high_branching,
    pass_no_fo_guarantee,
    pass_pnode_graph_recursion,
    pass_position_graph_recursion,
    pass_rewriting_blowup,
    pass_simplicity,
    pass_underivable_predicates,
    pass_unused_predicates,
)
from repro.rewriting.budget import RewritingBudget

LintPass = Callable[[LintContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class PassSpec:
    """One registered pass: its primary code, stage and callable."""

    code: str
    name: str
    stage: str  # "wellformed" | "recursion" | "risk"
    run: LintPass
    preflight: bool = False  # cheap + error-capable: runs before classify/rewrite


#: Every pass, in pipeline order.  Codes are stable public API.
PASS_REGISTRY: tuple[PassSpec, ...] = (
    PassSpec("RL001", "arity-mismatch", "wellformed", pass_arity_consistency, preflight=True),
    PassSpec("RL002", "existential-head-variable", "wellformed", pass_existential_head_variables),
    PassSpec("RL003", "duplicate-rule", "wellformed", pass_duplicate_and_subsumed_rules),
    PassSpec("RL005", "unused-predicate", "wellformed", pass_unused_predicates),
    PassSpec("RL006", "underivable-predicate", "wellformed", pass_underivable_predicates),
    PassSpec("RL007", "simplicity-violation", "wellformed", pass_simplicity),
    PassSpec("RL010", "dangerous-position-cycle", "recursion", pass_position_graph_recursion),
    PassSpec("RL011", "dangerous-pnode-cycle", "recursion", pass_pnode_graph_recursion),
    PassSpec("RL020", "high-branching-relation", "risk", pass_high_branching),
    PassSpec("RL021", "rewriting-blowup-risk", "risk", pass_rewriting_blowup),
    PassSpec("RL022", "no-fo-guarantee", "risk", pass_no_fo_guarantee),
)

#: Codes emitted by passes registered under a sibling code.
SECONDARY_CODES: dict[str, str] = {
    "RL000": "parse-error",
    "RL004": "subsumed-rule",
    "RL012": "pnode-budget-exceeded",
    "RL013": "position-graph-undefined",
}


def all_codes() -> tuple[str, ...]:
    """Every diagnostic code the linter can emit, sorted."""
    return tuple(
        sorted({spec.code for spec in PASS_REGISTRY} | set(SECONDARY_CODES))
    )


def code_names() -> dict[str, str]:
    """code -> short kebab-case name, for SARIF rule metadata."""
    out = {spec.code: spec.name for spec in PASS_REGISTRY}
    out.update(SECONDARY_CODES)
    return dict(sorted(out.items()))


@dataclass(frozen=True)
class LintConfig:
    """Knobs of one lint run.

    Attributes:
        budget: the rewriting budget the risk passes warn against.
        branching_threshold: RL020 fires at this many deriving rules.
        default_depth: assumed rounds for RL021 on cyclic programs.
        wr_max_nodes: P-node graph budget for the WR check.
        stages: which pipeline stages run.
        disabled: diagnostic codes to suppress.
    """

    budget: RewritingBudget = field(default_factory=RewritingBudget.default)
    branching_threshold: int = 8
    default_depth: int = 10
    wr_max_nodes: int = 20_000
    stages: tuple[str, ...] = ("wellformed", "recursion", "risk")
    disabled: frozenset[str] = frozenset()


def lint_program(
    rules: Sequence[TGD],
    query: ConjunctiveQuery | None = None,
    config: LintConfig | None = None,
    path: str = "<string>",
    source: str | None = None,
) -> LintReport:
    """Run the lint pipeline over parsed *rules* (and *query*)."""
    config = config or LintConfig()
    ctx = LintContext(
        rules=tuple(rules),
        query=query,
        budget=config.budget,
        branching_threshold=config.branching_threshold,
        default_depth=config.default_depth,
        wr_max_nodes=config.wr_max_nodes,
    )
    diagnostics: list[Diagnostic] = []
    for spec in PASS_REGISTRY:
        if spec.stage not in config.stages:
            continue
        diagnostics.extend(
            d for d in spec.run(ctx) if d.code not in config.disabled
        )
    return LintReport.of(diagnostics, path=path, source=source)


def lint_source(
    text: str,
    query_text: str | None = None,
    config: LintConfig | None = None,
    path: str = "<string>",
) -> LintReport:
    """Lint program *text*; parse failures become RL000 diagnostics."""
    try:
        rules = parse_program(text)
    except ParseError as error:
        return LintReport.of(
            [_parse_diagnostic(error)], path=path, source=text
        )
    query = None
    if query_text is not None:
        try:
            query = parse_query(query_text)
        except ParseError as error:
            diagnostic = dataclasses.replace(
                _parse_diagnostic(error, prefix="query: "), span=None
            )
            return LintReport.of([diagnostic], path=path, source=text)
    report = lint_program(rules, query, config, path=path, source=text)
    return LintReport.of(
        (_strip_query_span(d) for d in report), path=path, source=text
    )


def _strip_query_span(diagnostic: Diagnostic) -> Diagnostic:
    """Drop spans that index the separate query text, not the program.

    Query-attributed diagnostics carry spans into ``query_text``; the
    report's source is the *program* text, so rendering them would
    underline the wrong characters.
    """
    if diagnostic.rule is not None and diagnostic.rule.startswith("query "):
        return dataclasses.replace(diagnostic, span=None)
    return diagnostic


def _parse_diagnostic(error: ParseError, prefix: str = "") -> Diagnostic:
    return Diagnostic(
        code="RL000",
        severity=Severity.ERROR,
        message=f"{prefix}{error}",
        span=error.span,
    )


def preflight(
    rules: Sequence[TGD],
    query: ConjunctiveQuery | None = None,
    config: LintConfig | None = None,
) -> tuple[Diagnostic, ...]:
    """Error-level well-formedness findings only, as fast as possible.

    This is the subset ``repro classify`` and ``repro rewrite`` run
    before doing real work: only passes marked ``preflight`` execute,
    and only error-severity findings are returned, so a clean program
    pays a single pass over its atoms.
    """
    config = config or LintConfig()
    ctx = LintContext(rules=tuple(rules), query=query, budget=config.budget)
    findings: list[Diagnostic] = []
    for spec in PASS_REGISTRY:
        if not spec.preflight:
            continue
        findings.extend(
            d
            for d in spec.run(ctx)
            if d.severity is Severity.ERROR and d.code not in config.disabled
        )
    return tuple(findings)


def strictness_config(config: LintConfig, codes: Iterable[str]) -> LintConfig:
    """A copy of *config* with *codes* added to the disabled set."""
    return replace(config, disabled=config.disabled | set(codes))
