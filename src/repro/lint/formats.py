"""Render a :class:`~repro.lint.diagnostics.LintReport`.

Three formats, selected by ``repro lint --format``:

* **text** -- compiler-style ``path:line:col: severity[CODE]: message``
  lines, with the offending source line quoted and a caret underline
  when the report carries the program text;
* **json** -- a stable machine-readable document;
* **sarif** -- SARIF 2.1.0, consumable by GitHub code scanning and
  every SARIF-aware CI viewer.
"""

from __future__ import annotations

import json

from repro.lint.diagnostics import Diagnostic, LintReport, Severity

#: SARIF levels for each severity.
_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    """Compiler-style text rendering, one finding per block."""
    lines: list[str] = []
    source_lines = (
        report.source.splitlines() if report.source is not None else None
    )
    for diagnostic in report:
        location = diagnostic.file or report.path
        if diagnostic.span is not None:
            location += f":{diagnostic.span.line}:{diagnostic.span.column}"
        lines.append(
            f"{location}: {diagnostic.severity}[{diagnostic.code}]: "
            f"{diagnostic.message}"
        )
        if (
            source_lines is not None
            and diagnostic.span is not None
            and 1 <= diagnostic.span.line <= len(source_lines)
        ):
            quoted = source_lines[diagnostic.span.line - 1]
            lines.append(f"    | {quoted}")
            width = max(1, _caret_width(diagnostic, quoted))
            lines.append(
                "    | " + " " * (diagnostic.span.column - 1) + "^" * width
            )
        for note in diagnostic.notes:
            lines.append(f"    note: {note}")
        if diagnostic.hint is not None:
            lines.append(f"    hint: {diagnostic.hint}")
    counts = report.counts()
    summary = ", ".join(
        f"{count} {name}{'s' if count != 1 else ''}"
        for name, count in counts.items()
        if count
    )
    lines.append(summary if summary else "no findings")
    return "\n".join(lines)


def _caret_width(diagnostic: Diagnostic, quoted: str) -> int:
    span = diagnostic.span
    assert span is not None
    if span.end_line == span.line:
        return span.end_column - span.column
    return len(quoted) - (span.column - 1)


def render_json(report: LintReport) -> str:
    """Stable JSON document with findings and a severity summary."""
    document = {
        "version": 1,
        "path": report.path,
        "summary": report.counts(),
        "diagnostics": [d.to_dict() for d in report],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(
    report: LintReport,
    names: dict[str, str] | None = None,
    tool: str = "repro-lint",
) -> str:
    """SARIF 2.1.0 document for CI code-scanning upload.

    *names* maps diagnostic codes to rule names; it defaults to the lint
    registry.  Other producers sharing this renderer (``repro check``)
    pass their own code catalogue and *tool* driver name.
    """
    if names is None:
        from repro.lint.engine import code_names

        names = code_names()
    seen_codes = sorted({d.code for d in report})
    rules = [
        {
            "id": code,
            "name": names.get(code, code),
            "shortDescription": {"text": names.get(code, code)},
            "helpUri": "https://example.invalid/repro/docs/lint.md",
        }
        for code in seen_codes
    ]
    rule_index = {code: i for i, code in enumerate(seen_codes)}
    results = [_sarif_result(d, report, rule_index) for d in report]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "informationUri": (
                            "https://example.invalid/repro/docs/lint.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_result(
    diagnostic: Diagnostic, report: LintReport, rule_index: dict[str, int]
) -> dict[str, object]:
    message = diagnostic.message
    if diagnostic.notes:
        message += "\n" + "\n".join(diagnostic.notes)
    result: dict[str, object] = {
        "ruleId": diagnostic.code,
        "ruleIndex": rule_index[diagnostic.code],
        "level": _SARIF_LEVEL[diagnostic.severity],
        "message": {"text": message},
    }
    if diagnostic.span is not None:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diagnostic.file or report.path
                    },
                    "region": {
                        "startLine": diagnostic.span.line,
                        "startColumn": diagnostic.span.column,
                        "endLine": diagnostic.span.end_line,
                        "endColumn": diagnostic.span.end_column,
                    },
                }
            }
        ]
    if diagnostic.hint is not None:
        result["fixes"] = [
            {"description": {"text": diagnostic.hint}}
        ]
    return result


def render(
    report: LintReport,
    fmt: str,
    names: dict[str, str] | None = None,
    tool: str = "repro-lint",
) -> str:
    """Dispatch on ``text`` / ``json`` / ``sarif``."""
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        return render_json(report)
    if fmt == "sarif":
        return render_sarif(report, names=names, tool=tool)
    raise ValueError(f"unknown lint output format: {fmt!r}")
