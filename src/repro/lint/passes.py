"""The analysis passes behind ``repro lint``.

Each pass is a generator ``(LintContext) -> Iterator[Diagnostic]``;
the pipeline in :mod:`repro.lint.engine` decides which passes run.
Three families:

* **well-formedness** (``RL001``-``RL007``): inconsistent arities,
  suspicious existential head variables, duplicate/subsumed rules,
  unused and underivable predicates, simplicity violations;
* **recursion** (``RL010``-``RL013``): the paper's position-graph and
  P-node-graph conditions, reported as *minimal witness cycles* with
  their ``m``/``s``/``d``/``i`` edge labels attributed back to the
  offending rules;
* **rewriting risk** (``RL020``-``RL022``): branching factors and a
  UCQ-growth estimate against a :class:`~repro.rewriting.budget.
  RewritingBudget` -- the blowups documented by Gottlob & Schwentick
  (*Rewriting Ontological Queries into Small Nonrecursive Datalog
  Programs*) are exactly what these warn about before ``rewrite`` is
  attempted.

The full code catalogue with examples lives in ``docs/lint.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.core.swr import SWRResult, is_swr
from repro.core.wr import WRResult, is_wr
from repro.graphs.cycles import LabeledEdge, LabeledGraph
from repro.graphs.pnode_graph import PNodeGraphBudgetExceeded
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.spans import Span
from repro.lang.terms import Term, Variable
from repro.lang.tgd import TGD
from repro.lint.diagnostics import Diagnostic, Severity
from repro.rewriting.budget import RewritingBudget

#: Cap on the blowup estimate so the arithmetic stays exact but bounded.
_ESTIMATE_CAP = 10**18


@dataclass
class LintContext:
    """Shared state of one lint run.

    The SWR/WR results are computed lazily and memoized so the
    recursion passes and the rewriting-risk passes share one graph
    construction.
    """

    rules: tuple[TGD, ...]
    query: ConjunctiveQuery | None = None
    budget: RewritingBudget = field(default_factory=RewritingBudget.default)
    branching_threshold: int = 8
    default_depth: int = 10
    wr_max_nodes: int = 20_000
    _swr: SWRResult | None = field(default=None, repr=False)
    _wr: "WRResult | None | str" = field(default=None, repr=False)

    def swr(self) -> SWRResult:
        if self._swr is None:
            self._swr = is_swr(self.rules)
        return self._swr

    def wr(self) -> WRResult | None:
        """The WR check result, or None when its budget was exceeded."""
        if self._wr is None:
            try:
                self._wr = is_wr(self.rules, max_nodes=self.wr_max_nodes)
            except PNodeGraphBudgetExceeded:
                self._wr = "budget"
        return self._wr if isinstance(self._wr, WRResult) else None

    def wr_budget_exceeded(self) -> bool:
        self.wr()
        return self._wr == "budget"

    def branching(self) -> dict[str, list[str]]:
        """relation -> labels of the rules deriving it (head relation)."""
        out: dict[str, list[str]] = {}
        for index, rule in enumerate(self.rules, start=1):
            label = rule.label or f"#{index}"
            for atom in rule.head:
                derivers = out.setdefault(atom.relation, [])
                if label not in derivers:
                    derivers.append(label)
        return out


def _rule_name(rule: TGD, index: int) -> str:
    return rule.label or f"#{index}"


def _first_span(*objects: object) -> Span | None:
    for obj in objects:
        span = getattr(obj, "span", None)
        if span is not None:
            return span
    return None


# --------------------------------------------------------------------- #
# Well-formedness (RL001-RL007)                                          #
# --------------------------------------------------------------------- #


def pass_arity_consistency(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL001: a relation used with two different arities is an error."""
    first_use: dict[str, tuple[int, Atom, str]] = {}

    def sites() -> Iterator[tuple[Atom, str]]:
        for index, rule in enumerate(ctx.rules, start=1):
            name = _rule_name(rule, index)
            for atom in rule.body + rule.head:
                yield atom, name
        if ctx.query is not None:
            for atom in ctx.query.body:
                yield atom, f"query {ctx.query.name}"

    for atom, where in sites():
        known = first_use.get(atom.relation)
        if known is None:
            first_use[atom.relation] = (atom.arity, atom, where)
            continue
        arity, first_atom, first_where = known
        if atom.arity != arity:
            yield Diagnostic(
                code="RL001",
                severity=Severity.ERROR,
                message=(
                    f"relation {atom.relation} used with arity "
                    f"{atom.arity} here but with arity {arity} in "
                    f"{first_where}"
                ),
                span=atom.span,
                rule=where,
                hint=(
                    f"make every use of {atom.relation} take the same "
                    "number of arguments"
                ),
                notes=(
                    f"first use: {first_atom} in {first_where}"
                    + (
                        f" (at {first_atom.span})"
                        if first_atom.span is not None
                        else ""
                    ),
                ),
            )


def _near_miss(left: str, right: str) -> bool:
    """A plausible-typo pair: same up to case, or one *letter* edit away.

    Edits that only touch digits (``Y1`` vs ``Y3``) are conventional
    naming, not typos, and single-character names carry too little
    signal; neither counts.
    """
    if left == right or min(len(left), len(right)) < 2:
        return False
    if left.lower() == right.lower():
        return True
    if len(left) == len(right):
        diffs = [(a, b) for a, b in zip(left, right) if a != b]
        return len(diffs) == 1 and not (
            diffs[0][0].isdigit() and diffs[0][1].isdigit()
        )
    if abs(len(left) - len(right)) != 1:
        return False
    shorter, longer = sorted((left, right), key=len)
    for i in range(len(longer)):
        if longer[:i] + longer[i + 1:] == shorter:
            return not longer[i].isdigit()
    return False


def pass_existential_head_variables(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL002: existential head variables, flagged harder on near-typos.

    Value invention is the point of existential rules, so a plain
    existential head variable is only an *info*; it becomes a *warning*
    when its name is one edit away from a body variable -- the classic
    symptom of a typo silently turning a join into value invention.
    """
    for index, rule in enumerate(ctx.rules, start=1):
        body_names = [v.name for v in rule.body_variables()]
        for var in rule.existential_head_variables():
            near = next(
                (name for name in body_names if _near_miss(var.name, name)),
                None,
            )
            atom = next(
                (a for a in rule.head if var in a.variables()), rule.head[0]
            )
            if near is not None:
                yield Diagnostic(
                    code="RL002",
                    severity=Severity.WARNING,
                    message=(
                        f"head variable {var} is existential but is one "
                        f"edit away from body variable {near}; possible typo"
                    ),
                    span=_first_span(atom, rule),
                    rule=_rule_name(rule, index),
                    hint=(
                        f"rename {var} to {near} if a join was intended; "
                        "keep it if value invention was intended"
                    ),
                )
            else:
                yield Diagnostic(
                    code="RL002",
                    severity=Severity.INFO,
                    message=(
                        f"head variable {var} is existential "
                        "(value invention)"
                    ),
                    span=_first_span(atom, rule),
                    rule=_rule_name(rule, index),
                )


def _match_atom(
    pattern: Atom, target: Atom, theta: Mapping[Variable, Term]
) -> dict[Variable, Term] | None:
    """Extend *theta* so that θ(pattern) == target, or None."""
    if pattern.relation != target.relation or pattern.arity != target.arity:
        return None
    extended = dict(theta)
    for p, t in zip(pattern.terms, target.terms):
        if isinstance(p, Variable):
            bound = extended.get(p)
            if bound is None:
                extended[p] = t
            elif bound != t:
                return None
        elif p != t:
            return None
    return extended


def _embeds(
    atoms: Sequence[Atom], into: Sequence[Atom], theta: Mapping[Variable, Term]
) -> bool:
    """Backtracking search for θ' ⊇ θ with θ'(atoms) ⊆ into."""
    if not atoms:
        return True
    head_atom, rest = atoms[0], atoms[1:]
    for candidate in into:
        extended = _match_atom(head_atom, candidate, theta)
        if extended is not None and _embeds(rest, into, extended):
            return True
    return False


def rule_subsumes(general: TGD, specific: TGD) -> bool:
    """True iff *general* makes *specific* redundant.

    Both single-head: there must be a substitution θ with
    θ(head(general)) == head(specific) and θ(body(general)) a subset of
    body(specific) -- whenever the specific rule fires, the general one
    already derives the same head atom.  Multi-head rules only subsume
    via structural equality.
    """
    if len(general.head) != 1 or len(specific.head) != 1:
        return general == specific
    theta = _match_atom(general.head[0], specific.head[0], {})
    if theta is None:
        return False
    return _embeds(list(general.body), list(specific.body), theta)


def pass_duplicate_and_subsumed_rules(
    ctx: LintContext,
) -> Iterator[Diagnostic]:
    """RL003 (duplicate) / RL004 (subsumed): redundant rules."""
    for j, later in enumerate(ctx.rules):
        for i, earlier in enumerate(ctx.rules[:j]):
            earlier_name = _rule_name(earlier, i + 1)
            later_name = _rule_name(later, j + 1)
            forward = rule_subsumes(earlier, later)
            backward = rule_subsumes(later, earlier)
            if forward and backward:
                yield Diagnostic(
                    code="RL003",
                    severity=Severity.WARNING,
                    message=(
                        f"rule {later_name} duplicates rule {earlier_name}"
                    ),
                    span=later.span,
                    rule=later_name,
                    hint=f"delete rule {later_name}",
                )
                break
            if forward:
                yield Diagnostic(
                    code="RL004",
                    severity=Severity.WARNING,
                    message=(
                        f"rule {later_name} is subsumed by the more "
                        f"general rule {earlier_name}"
                    ),
                    span=later.span,
                    rule=later_name,
                    hint=f"delete rule {later_name}",
                )
                break
            if backward:
                yield Diagnostic(
                    code="RL004",
                    severity=Severity.WARNING,
                    message=(
                        f"rule {earlier_name} is subsumed by the more "
                        f"general rule {later_name}"
                    ),
                    span=earlier.span,
                    rule=earlier_name,
                    hint=f"delete rule {earlier_name}",
                )
                break


def pass_unused_predicates(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL005: derived relations nothing consumes (query-aware).

    Only meaningful when a query closes the program: without one, any
    head relation may be the user's output.  The pass is skipped when
    ``ctx.query`` is None.
    """
    if ctx.query is None:
        return
    consumed = {atom.relation for atom in ctx.query.body}
    for rule in ctx.rules:
        for atom in rule.body:
            consumed.add(atom.relation)
    for index, rule in enumerate(ctx.rules, start=1):
        for atom in rule.head:
            if atom.relation not in consumed:
                yield Diagnostic(
                    code="RL005",
                    severity=Severity.WARNING,
                    message=(
                        f"relation {atom.relation} is derived by rule "
                        f"{_rule_name(rule, index)} but never used by any "
                        "rule body or by the query"
                    ),
                    span=_first_span(atom, rule),
                    rule=_rule_name(rule, index),
                    hint=(
                        f"delete the rule or reference {atom.relation} "
                        "somewhere"
                    ),
                )


def pass_underivable_predicates(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL006: consumed-but-never-derived relations (assumed EDB).

    Info by default (reading base relations is normal); upgraded to a
    warning when the name is one edit away from a *derived* relation,
    which usually means a typo quietly emptied the query.
    """
    derived = {atom.relation for rule in ctx.rules for atom in rule.head}
    reported: set[str] = set()

    def sites() -> Iterator[tuple[Atom, str]]:
        for index, rule in enumerate(ctx.rules, start=1):
            for atom in rule.body:
                yield atom, _rule_name(rule, index)
        if ctx.query is not None:
            for atom in ctx.query.body:
                yield atom, f"query {ctx.query.name}"

    for atom, where in sites():
        if atom.relation in derived or atom.relation in reported:
            continue
        reported.add(atom.relation)
        near = next(
            (
                name
                for name in sorted(derived)
                if _near_miss(atom.relation, name)
            ),
            None,
        )
        if near is not None:
            yield Diagnostic(
                code="RL006",
                severity=Severity.WARNING,
                message=(
                    f"relation {atom.relation} is never derived by any "
                    f"rule but is one edit away from derived relation "
                    f"{near}; possible typo"
                ),
                span=atom.span,
                rule=where,
                hint=f"did you mean {near}?",
            )
        else:
            yield Diagnostic(
                code="RL006",
                severity=Severity.INFO,
                message=(
                    f"relation {atom.relation} is never derived by any "
                    "rule; it must come from the database (EDB)"
                ),
                span=atom.span,
                rule=where,
            )


def pass_simplicity(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL007: per-rule simplicity violations (Section 5), with spans."""
    for index, rule in enumerate(ctx.rules, start=1):
        for reason, atom in rule.simplicity_violation_atoms():
            yield Diagnostic(
                code="RL007",
                severity=Severity.WARNING,
                message=f"rule is not simple: {reason}",
                span=_first_span(atom, rule) if atom is not None else rule.span,
                rule=_rule_name(rule, index),
                hint=(
                    "SWR (Definition 5) only applies to simple TGDs; "
                    "the WR check still covers this rule"
                ),
            )


# --------------------------------------------------------------------- #
# Recursion diagnostics (RL010-RL013)                                    #
# --------------------------------------------------------------------- #


def _cycle_notes(
    cycle: Sequence[LabeledEdge], graph: LabeledGraph
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(rendered edge lines, rule labels on the cycle, program order)."""
    notes: list[str] = []
    rule_names: list[str] = []
    for edge in cycle:
        rules = sorted(graph.rules_of(edge.source, edge.target))
        via = f" (via {', '.join(rules)})" if rules else ""
        notes.append(f"{edge}{via}")
        for name in rules:
            if name not in rule_names:
                rule_names.append(name)
    return tuple(notes), tuple(rule_names)


def _anchor_rule(
    ctx: LintContext, rule_names: Sequence[str]
) -> tuple[Span | None, str | None]:
    """Span and label of the first program rule implicated in a cycle."""
    names = set(rule_names)
    for index, rule in enumerate(ctx.rules, start=1):
        if _rule_name(rule, index) in names:
            return rule.span, _rule_name(rule, index)
    return None, None


def pass_position_graph_recursion(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL010/RL013: the SWR condition on the position graph AG(P).

    RL010 fires when AG(P) has a cycle with both an ``m``- and an
    ``s``-edge (Definition 5 fails); the diagnostic carries the minimal
    witness cycle found, each edge with its labels and the rule whose
    expansion created it.  RL013 (info) notes when the graph is
    undefined because some head has several atoms.
    """
    result = ctx.swr()
    if result.graph is None:
        yield Diagnostic(
            code="RL013",
            severity=Severity.INFO,
            message=(
                "position graph undefined (some rule has a multi-atom "
                "head); the SWR check does not apply"
            ),
            hint="the WR check on the P-node graph still applies",
        )
        return
    if result.dangerous_cycle is None:
        return
    graph = result.graph.graph
    cycle = (
        graph.find_minimal_labeled_cycle(("m", "s"))
        or result.dangerous_cycle
    )
    notes, rule_names = _cycle_notes(cycle, graph)
    span, rule = _anchor_rule(ctx, rule_names)
    named = f" (rules {', '.join(rule_names)})" if rule_names else ""
    yield Diagnostic(
        code="RL010",
        severity=Severity.WARNING,
        message=(
            "not SWR: the position graph has a cycle carrying both an "
            f"m-edge and an s-edge{named}; Theorem 1 does not guarantee "
            "FO-rewritability"
        ),
        span=span,
        rule=rule,
        hint=(
            "break the recursion among the cycle rules, or rely on the "
            "WR check / run rewrite with an explicit budget"
        ),
        notes=notes,
    )


def pass_pnode_graph_recursion(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL011/RL012: the WR condition on the P-node graph.

    RL011 fires when the P-node graph has a cycle with ``d``, ``m`` and
    ``s`` edges and no ``i``-edge (Definition 8 fails): the set is
    outside WR and the rewriting is conjectured non-FO.  RL012 (info)
    reports an exceeded node budget (WR membership undecided).
    """
    result = ctx.wr()
    if result is None:
        yield Diagnostic(
            code="RL012",
            severity=Severity.INFO,
            message=(
                f"P-node graph exceeded its {ctx.wr_max_nodes}-node "
                "budget; WR membership is undecided"
            ),
            hint="raise wr_max_nodes, or bound rewrite explicitly",
        )
        return
    if result.dangerous_cycle is None:
        return
    graph = result.graph.graph
    cycle = (
        graph.find_minimal_labeled_cycle(("d", "m", "s"), forbidden=("i",))
        or result.dangerous_cycle
    )
    notes, rule_names = _cycle_notes(cycle, graph)
    span, rule = _anchor_rule(ctx, rule_names)
    named = f" (rules {', '.join(rule_names)})" if rule_names else ""
    yield Diagnostic(
        code="RL011",
        severity=Severity.WARNING,
        message=(
            "not WR: the P-node graph has a cycle carrying d, m and s "
            f"edges and no i-edge{named}; the rewriting of some query "
            "has an unbounded chain"
        ),
        span=span,
        rule=rule,
        hint=(
            "answer via the chase instead, or run rewrite with a strict "
            "budget"
        ),
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Rewriting risk (RL020-RL022)                                           #
# --------------------------------------------------------------------- #


def pass_high_branching(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL020: relations derived by many rules branch the rewriting."""
    for relation, derivers in sorted(ctx.branching().items()):
        if len(derivers) < ctx.branching_threshold:
            continue
        yield Diagnostic(
            code="RL020",
            severity=Severity.WARNING,
            message=(
                f"relation {relation} is derived by {len(derivers)} "
                "rules; every rewriting step on it branches that many "
                "ways"
            ),
            hint=(
                "consider factoring the shared structure into an "
                "intermediate relation"
            ),
            notes=("derived by: " + ", ".join(derivers),),
        )


def _dependency_depth(ctx: LintContext, roots: set[str]) -> int | None:
    """Longest derivation chain from *roots*, or None when cyclic.

    Edges follow "is rewritten into": a relation depends on the body
    relations of every rule deriving it.
    """
    derivers: dict[str, list[TGD]] = {}
    for rule in ctx.rules:
        for atom in rule.head:
            derivers.setdefault(atom.relation, []).append(rule)

    depth_of: dict[str, int | None] = {}
    in_progress: set[str] = set()

    def depth(relation: str) -> int | None:
        if relation in in_progress:
            return None  # cycle
        if relation in depth_of:
            return depth_of[relation]
        in_progress.add(relation)
        best = 0
        for rule in derivers.get(relation, ()):
            for atom in rule.body:
                sub = depth(atom.relation)
                if sub is None:
                    in_progress.discard(relation)
                    return None
                best = max(best, 1 + sub)
        in_progress.discard(relation)
        depth_of[relation] = best
        return best

    total = 0
    for root in sorted(roots):
        d = depth(root)
        if d is None:
            return None
        total = max(total, d)
    return total


def estimate_rewriting_growth(
    ctx: LintContext, query: ConjunctiveQuery
) -> tuple[int, int]:
    """(estimated UCQ size, assumed depth) for rewriting *query*.

    A deliberately crude upper-bound heuristic: each round can rewrite
    each atom with any rule deriving its relation, so one round
    multiplies the frontier by at most ``1 + Σ_α b(rel(α))``; the number
    of effective rounds is the longest derivation chain (or the budget's
    ``max_depth`` / the configured default when the chain is cyclic).
    The estimate is capped at 10^18.
    """
    branching = ctx.branching()
    per_round = 1 + sum(
        len(branching.get(atom.relation, ())) for atom in query.body
    )
    chain = _dependency_depth(
        ctx, {atom.relation for atom in query.body}
    )
    if chain is not None:
        depth = chain
    elif ctx.swr().is_swr or (ctx.wr() is not None and ctx.wr().is_wr):
        # The derivation graph is cyclic but SWR/WR guarantees the
        # rewriting terminates; assuming the budget's full max_depth
        # would flag every FO-rewritable recursive set.
        depth = ctx.default_depth
    else:
        depth = (
            ctx.budget.max_depth
            if ctx.budget.max_depth is not None
            else ctx.default_depth
        )
    estimate = 1
    for _ in range(depth):
        estimate *= per_round
        if estimate > _ESTIMATE_CAP:
            estimate = _ESTIMATE_CAP
            break
    return estimate, depth


def pass_rewriting_blowup(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL021: estimated UCQ growth exceeds the rewriting budget."""
    if ctx.query is None:
        return
    estimate, depth = estimate_rewriting_growth(ctx, ctx.query)
    if estimate <= ctx.budget.max_cqs:
        return
    rendered = ">=10^18" if estimate >= _ESTIMATE_CAP else f"~{estimate}"
    yield Diagnostic(
        code="RL021",
        severity=Severity.WARNING,
        message=(
            f"estimated rewriting size {rendered} (branching over "
            f"{depth} rounds) exceeds the budget's max_cqs="
            f"{ctx.budget.max_cqs}; rewrite may exhaust its budget"
        ),
        span=ctx.query.span,
        rule=f"query {ctx.query.name}",
        hint=(
            "raise the budget, narrow the query, or reduce the number "
            "of rules deriving its relations"
        ),
    )


def pass_no_fo_guarantee(ctx: LintContext) -> Iterator[Diagnostic]:
    """RL022: no implemented sufficient condition covers the program.

    Fires when the set is neither SWR nor WR (or WR is undecided) and
    no FO-rewritable baseline class accepts it either: ``rewrite`` may
    then diverge, so an explicit budget (or the chase) is advised.
    """
    if ctx.swr().is_swr:
        return
    wr = ctx.wr()
    if wr is not None and wr.is_wr:
        return
    from repro.classes.registry import BASELINE_RECOGNIZERS

    accepting = [
        name
        for name, recognizer in BASELINE_RECOGNIZERS
        if recognizer(ctx.rules).member
    ]
    if accepting:
        return
    undecided = " (WR membership undecided)" if wr is None else ""
    yield Diagnostic(
        code="RL022",
        severity=Severity.WARNING,
        message=(
            "no implemented sufficient condition guarantees "
            f"FO-rewritability{undecided}: the set is outside SWR, WR "
            "and every baseline class; rewrite may not terminate"
        ),
        hint=(
            "run rewrite with a strict RewritingBudget, or answer via "
            "the chase"
        ),
    )
