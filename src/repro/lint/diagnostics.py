"""Diagnostic records and reports for the static-analysis layer.

A :class:`Diagnostic` is one finding: a stable code (``RL001``), a
severity, a human-readable message, an optional source span, the label
of the rule it concerns, an optional fix hint and free-form notes
(e.g. the edges of a witness cycle).  A :class:`LintReport` is an
ordered collection with severity gating for CI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lang.spans import Span


class Severity(enum.Enum):
    """Severity of a diagnostic; orderable via :attr:`rank`."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """ERROR=2 > WARNING=1 > INFO=0."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        code: stable identifier (``RL001`` ... ); see ``docs/lint.md``.
        severity: error / warning / info.
        message: one-line human-readable description.
        span: source location (None when the finding is program-wide or
            the input was built programmatically without provenance).
        rule: label of the rule the finding concerns, if any.
        hint: optional suggested fix.
        notes: additional detail lines (witness-cycle edges, conflicting
            use sites, ...), rendered indented under the message.
        file: the file the finding is in, for multi-file runs (the
            audit pipeline); None means "the report's path" and keeps
            single-file lint/check output unchanged.
    """

    code: str
    severity: Severity
    message: str
    span: Span | None = None
    rule: str | None = None
    hint: str | None = None
    notes: tuple[str, ...] = field(default_factory=tuple)
    file: str | None = None

    def sort_key(self) -> tuple[str, int, str, str]:
        """Deterministic report order: file, position, code, text."""
        start = self.span.start if self.span is not None else -1
        return (self.file or "", start, self.code, self.message)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        out: dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = {
                "start": self.span.start,
                "end": self.span.end,
                "line": self.span.line,
                "column": self.span.column,
                "endLine": self.span.end_line,
                "endColumn": self.span.end_column,
            }
        if self.file is not None:
            out["file"] = self.file
        if self.rule is not None:
            out["rule"] = self.rule
        if self.hint is not None:
            out["hint"] = self.hint
        if self.notes:
            out["notes"] = list(self.notes)
        return out


@dataclass(frozen=True)
class LintReport:
    """All diagnostics of one lint run, in deterministic order.

    Attributes:
        diagnostics: the findings, sorted by source position and code.
        path: the program file the run analyzed (``<stdin>``/``<string>``
            for non-file input); used by the renderers.
        source: the program text, when available (lets renderers quote
            the offending line).
    """

    diagnostics: tuple[Diagnostic, ...]
    path: str = "<string>"
    source: str | None = None

    @classmethod
    def of(
        cls,
        diagnostics: Iterable[Diagnostic],
        path: str = "<string>",
        source: str | None = None,
    ) -> "LintReport":
        """Build a report with the canonical ordering applied."""
        ordered = tuple(sorted(diagnostics, key=Diagnostic.sort_key))
        return cls(diagnostics=ordered, path=path, source=source)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """All findings of exactly *severity*."""
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    def counts(self) -> dict[str, int]:
        """``{"error": n, "warning": n, "info": n}``."""
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    def exit_code(self, strict: bool = False) -> int:
        """CI gating: 1 on errors (also on warnings when *strict*)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0
