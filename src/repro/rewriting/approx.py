"""Sound approximation of certain answers for badly-behaved TGD sets.

Section 7 of the paper observes that an arbitrary TGD set ``P`` lands
in one of three situations: (i) ``P`` is WR, (ii) WR membership cannot
be established effectively, (iii) ``P`` is not WR -- and proposes
approximation techniques (via *query patterns*, [11]) for (ii) and
(iii).  This module implements the natural rewriting-based
approximation: depth-capped rewriting is *sound* (each generated
disjunct derives only certain answers), so evaluating deeper and deeper
partial rewritings yields a monotonically growing under-approximation
of ``cert(q, P, D)`` that converges to it in the limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite


@dataclass(frozen=True)
class ApproximationReport:
    """Per-depth record of a converging approximation run.

    Attributes:
        depths: the rewriting depths tried, in order.
        answer_counts: |answers| obtained at each depth.
        ucq_sizes: number of disjuncts of each partial rewriting.
        answers: the final (deepest) answer set.
        exact: True iff the rewriting completed at some depth, making
            the final answers exactly the certain answers.
        converged_at: first depth at which the answer set stopped
            growing, or None if it grew up to the last depth tried.
    """

    depths: tuple[int, ...]
    answer_counts: tuple[int, ...]
    ucq_sizes: tuple[int, ...]
    answers: frozenset[tuple[Term, ...]]
    exact: bool
    converged_at: int | None


def approximate_answers(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    database: Database,
    max_depth: int = 8,
    max_cqs: int = 50_000,
) -> ApproximationReport:
    """Evaluate depth-1..max_depth partial rewritings over *database*.

    Every reported answer is certain (soundness); the report records
    how the answer set grows with depth and whether it stabilised.
    """
    depths: list[int] = []
    counts: list[int] = []
    sizes: list[int] = []
    answers: frozenset[tuple[Term, ...]] = frozenset()
    exact = False
    for depth in range(1, max_depth + 1):
        result = rewrite(
            query, rules, RewritingBudget(max_depth=depth, max_cqs=max_cqs)
        )
        answers = evaluate_ucq(result.ucq, database)
        depths.append(depth)
        counts.append(len(answers))
        sizes.append(len(result.ucq))
        if result.complete:
            exact = True
            break
    converged_at: int | None = None
    for i in range(len(counts)):
        if counts[i:] == [counts[i]] * (len(counts) - i):
            converged_at = depths[i]
            break
    if len(counts) <= 1:
        converged_at = depths[0] if depths else None
    return ApproximationReport(
        depths=tuple(depths),
        answer_counts=tuple(counts),
        ucq_sizes=tuple(sizes),
        answers=answers,
        exact=exact,
        converged_at=converged_at,
    )
