"""End-to-end FO-rewriting query-answering engine.

:class:`FORewritingEngine` packages the pipeline the paper advocates:
given an ontology (a set of TGDs), answer a UCQ over a plain database
by (1) computing the FO-rewriting of the query w.r.t. the TGDs and
(2) evaluating the rewriting over the database alone -- either with the
in-memory evaluator or compiled to SQL on a SQLite backend.  Data
complexity is therefore that of evaluating a fixed FO query (AC0),
which is the whole point of FO-rewritability (Definition 1).

The engine is the compilation tier of the public session API
(:mod:`repro.api`): :class:`~repro.api.Session` owns one engine per
ontology and adds a persistent on-disk tier behind the engine's
in-memory cache.  Calling the engine directly still works but is
deprecated in favour of ``Session.prepare`` / ``PreparedQuery``.
"""

from __future__ import annotations

import threading
import warnings
from typing import NamedTuple, Protocol, Sequence

from repro import obs
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.data.sql import SQLiteBackend, ucq_to_sql
from repro.lang.errors import RewritingBudgetExceeded
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.datalog_target import DatalogRewriting, rewrite_datalog
from repro.rewriting.rewriter import RewritingResult, rewrite

ENGINE_VERSION = "2"
"""Version tag of the rewriting algorithm + cache entry format.

Bumped whenever a change to the rewriter could alter the UCQ produced
for the same (ontology, query, budget) triple.  The persistent cache
of :mod:`repro.api.cache` embeds this tag in every cache key, so a
version bump automatically invalidates all previously compiled
rewritings without any migration logic.
"""

TARGETS = ("ucq", "datalog", "auto")
"""The rewriting targets an engine (or session) can be opened with.

``"ucq"`` is the classical exploded-union rewriting, ``"datalog"`` the
nonrecursive-Datalog program of :mod:`repro.rewriting.datalog_target`,
and ``"auto"`` picks per query: the static blowup estimator
(:func:`repro.checkers.estimator.estimate_disjunct_bound`) is consulted
once per canonical query, and the Datalog target is chosen when the
estimated UCQ disjunct count exceeds :data:`AUTO_DATALOG_THRESHOLD`
(or the budget's ``max_cqs``, whichever is smaller).  The estimate is
a pure function of (query, rules, budget), so ``auto`` resolves to the
same target in every process.
"""

AUTO_DATALOG_THRESHOLD = 512
"""Estimated UCQ disjunct count above which ``target="auto"`` switches
to the nonrecursive-Datalog target."""


class CacheInfo(NamedTuple):
    """Hit/miss statistics of the engine's in-memory rewriting cache.

    ``misses`` counts queries the in-memory tier did not hold -- they
    were served either by the persistent tier (when one is attached;
    see the ``engine.disk_hits`` counter) or by a fresh rewriting run.
    """

    hits: int
    misses: int
    size: int


class PersistentTier(Protocol):
    """Second-level rewriting cache the engine consults on memory miss.

    Implemented by :class:`repro.api.cache.EngineTier`; any object with
    the same two methods works.  Both methods must be safe to call from
    multiple threads and must *never raise* -- a broken persistent tier
    degrades to recomputation, it does not break answering.
    """

    def get(self, ucq: UnionOfConjunctiveQueries) -> RewritingResult | None:
        """The stored rewriting of *ucq*, or None."""
        ...

    def put(self, ucq: UnionOfConjunctiveQueries, result: RewritingResult) -> None:
        """Persist the rewriting of *ucq*."""
        ...

    def get_datalog(
        self, ucq: UnionOfConjunctiveQueries
    ) -> DatalogRewriting | None:
        """The stored Datalog-target rewriting of *ucq*, or None."""
        ...

    def put_datalog(
        self, ucq: UnionOfConjunctiveQueries, result: DatalogRewriting
    ) -> None:
        """Persist the Datalog-target rewriting of *ucq*."""
        ...


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see docs/api.md for "
        "the migration guide)",
        DeprecationWarning,
        stacklevel=3,
    )


class FORewritingEngine:
    """Answers UCQs over a TGD ontology by query rewriting.

    Rewritings are cached per query (keyed by the UCQ's canonical
    form, so alpha-renamed or atom-reordered variants of a query share
    one entry), and answering the same query over many databases pays
    the rewriting cost once -- the usage pattern OBDA is designed
    around.  An optional *persistent* second tier (attached by
    :class:`repro.api.Session` when it has a cache directory) is
    consulted on in-memory miss before any rewriting runs.  Cache
    effectiveness is observable via :meth:`cache_info` and the
    ``engine.cache_hits`` / ``engine.cache_misses`` /
    ``engine.disk_hits`` counters of :mod:`repro.obs`.

    The engine is thread-safe: concurrent lookups of the same query
    are single-flighted (one thread rewrites, the others wait for the
    entry), which keeps both the work and the hit/miss accounting
    exact under the batch worker pool of :meth:`repro.api.Session.answer_many`.
    """

    def __init__(
        self,
        rules: Sequence[TGD],
        budget: RewritingBudget | None = None,
        filter_relevant: bool = True,
        persistent: PersistentTier | None = None,
        preflight_estimate: bool = False,
        minimize_workers: int | None = None,
        minimize_mode: str = "thread",
        target: str = "ucq",
    ):
        if target not in TARGETS:
            raise ValueError(
                f"unknown rewriting target {target!r}; "
                f"expected one of {TARGETS}"
            )
        self._rules = tuple(rules)
        self._budget = budget or RewritingBudget.default()
        self._filter_relevant = filter_relevant
        self._persistent = persistent
        self._preflight_estimate = preflight_estimate
        self._target = target
        # Opt-in parallel final minimization; None keeps the
        # sequential path.  The produced rewriting is identical either
        # way (see repro.rewriting.subsume), so this deliberately does
        # NOT participate in cache keys or ENGINE_VERSION.
        self._minimize_workers = minimize_workers
        self._minimize_mode = minimize_mode
        self._cache: dict[UnionOfConjunctiveQueries, RewritingResult] = {}
        self._datalog_cache: dict[UnionOfConjunctiveQueries, DatalogRewriting] = {}
        self._target_choice: dict[UnionOfConjunctiveQueries, str] = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()
        self._inflight: dict[UnionOfConjunctiveQueries, threading.Event] = {}
        self._datalog_inflight: dict[
            UnionOfConjunctiveQueries, threading.Event
        ] = {}

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The ontology this engine answers queries over."""
        return self._rules

    @property
    def budget(self) -> RewritingBudget:
        """The rewriting budget every compilation runs under."""
        return self._budget

    @property
    def target(self) -> str:
        """The configured rewriting target (``ucq``/``datalog``/``auto``)."""
        return self._target

    def cache_info(self) -> CacheInfo:
        """Hits, misses and current size of the in-memory caches.

        Both targets share the hit/miss accounting; ``size`` counts
        entries of the UCQ and Datalog tiers together.
        """
        with self._lock:
            return CacheInfo(
                self._hits,
                self._misses,
                len(self._cache) + len(self._datalog_cache),
            )

    def cache_sizes(self) -> dict[str, int]:
        """Per-target in-memory cache entry counts."""
        with self._lock:
            return {
                "ucq": len(self._cache),
                "datalog": len(self._datalog_cache),
            }

    def resolve_target(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        target: str | None = None,
    ) -> str:
        """The concrete target (``ucq`` or ``datalog``) for *query*.

        *target* overrides the engine-level default for this query
        (None keeps the engine's).  Explicit targets pass through;
        ``auto`` consults the static blowup estimator once per
        canonical query (memoized) and picks the Datalog target when
        the estimated disjunct count exceeds
        ``min(AUTO_DATALOG_THRESHOLD, budget.max_cqs)``.  The choice is
        deterministic across processes; it is surfaced on the
        ``engine.target_selected.<target>`` counters and the
        ``engine.target_selected`` event.
        """
        if target is None:
            target = self._target
        elif target not in TARGETS:
            raise ValueError(
                f"unknown rewriting target {target!r}; "
                f"expected one of {TARGETS}"
            )
        if target != "auto":
            return target
        ucq = UnionOfConjunctiveQueries.of(query)
        with self._lock:
            cached = self._target_choice.get(ucq)
        if cached is not None:
            return cached
        rules: Sequence[TGD] = self._rules
        if self._filter_relevant:
            from repro.rewriting.relevance import relevant_rules

            rules = relevant_rules(ucq, rules).relevant
        from repro.checkers.estimator import (
            estimate_combination_bound,
            estimate_disjunct_bound,
        )

        # Two complementary static bounds: the round-based one tracks
        # deep derivation chains, the combination one the cross-product
        # blowup of wide conjunctions.  Either exceeding the threshold
        # selects the Datalog target.
        estimate = estimate_disjunct_bound(ucq, rules, budget=self._budget)
        bound = max(estimate.bound, estimate_combination_bound(ucq, rules))
        threshold = min(AUTO_DATALOG_THRESHOLD, self._budget.max_cqs)
        choice = "datalog" if bound > threshold else "ucq"
        with self._lock:
            first = ucq not in self._target_choice
            choice = self._target_choice.setdefault(ucq, choice)
        if first:
            obs.count(f"engine.target_selected.{choice}")
            obs.event(
                "engine.target_selected",
                target=choice,
                bound=bound,
                threshold=threshold,
            )
        return choice

    # ----------------------------------------------------------------- #
    # Compilation (tiered cache)                                          #
    # ----------------------------------------------------------------- #

    def _rewrite(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> RewritingResult:
        """The (cached) rewriting of *query* w.r.t. the engine's rules.

        Lookup order: in-memory cache, persistent tier (if attached),
        fresh rewriting run.  Internal entry point -- the public
        :meth:`rewrite` delegates here after its deprecation notice,
        and :class:`repro.api.PreparedQuery` calls it directly.
        """
        ucq = UnionOfConjunctiveQueries.of(query)
        while True:
            with self._lock:
                result = self._cache.get(ucq)
                if result is not None:
                    self._hits += 1
                    obs.count("engine.cache_hits")
                    return result
                waiter = self._inflight.get(ucq)
                if waiter is None:
                    self._inflight[ucq] = threading.Event()
                    break
            # Another thread is compiling this query; wait for its
            # entry and retry the lookup (counted as a hit: no work).
            waiter.wait()
        result = None
        try:
            result = self._compile(ucq)
        finally:
            with self._lock:
                if result is not None:
                    self._cache[ucq] = result
                self._inflight.pop(ucq).set()
        return result

    def _compile(self, ucq: UnionOfConjunctiveQueries) -> RewritingResult:
        """Persistent-tier lookup, falling back to a rewriting run."""
        with self._lock:
            self._misses += 1
        obs.count("engine.cache_misses")
        if self._persistent is not None:
            stored = self._persistent.get(ucq)
            if stored is not None:
                obs.count("engine.disk_hits")
                return stored
            obs.count("engine.disk_misses")
        with obs.span("engine.rewrite", cached=False) as span:
            rules: Sequence[TGD] = self._rules
            if self._filter_relevant:
                from repro.rewriting.relevance import relevant_rules

                rules = relevant_rules(ucq, rules).relevant
                span.set(relevant_rules=len(rules))
            if self._preflight_estimate:
                self._preflight(ucq, rules)
            result = rewrite(
                ucq,
                rules,
                self._budget,
                minimize_workers=self._minimize_workers,
                minimize_mode=self._minimize_mode,
            )
            span.set(complete=result.complete, size=result.size)
        if self._persistent is not None:
            self._persistent.put(ucq, result)
        return result

    def _rewrite_datalog(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> DatalogRewriting:
        """The (cached) Datalog-target rewriting of *query*.

        Same tiered lookup and single-flighting as :meth:`_rewrite`,
        over a separate cache (the two targets' artifacts never mix).
        """
        ucq = UnionOfConjunctiveQueries.of(query)
        while True:
            with self._lock:
                result = self._datalog_cache.get(ucq)
                if result is not None:
                    self._hits += 1
                    obs.count("engine.cache_hits")
                    return result
                waiter = self._datalog_inflight.get(ucq)
                if waiter is None:
                    self._datalog_inflight[ucq] = threading.Event()
                    break
            waiter.wait()
        result = None
        try:
            result = self._compile_datalog(ucq)
        finally:
            with self._lock:
                if result is not None:
                    self._datalog_cache[ucq] = result
                self._datalog_inflight.pop(ucq).set()
        return result

    def _compile_datalog(
        self, ucq: UnionOfConjunctiveQueries
    ) -> DatalogRewriting:
        """Persistent-tier lookup, falling back to a Datalog rewriting.

        The persistent tier's ``get_datalog``/``put_datalog`` methods
        are looked up dynamically so pre-existing tier implementations
        (the protocol grew) keep working, merely without persistence.
        """
        with self._lock:
            self._misses += 1
        obs.count("engine.cache_misses")
        getter = getattr(self._persistent, "get_datalog", None)
        if getter is not None:
            stored = getter(ucq)
            if stored is not None:
                obs.count("engine.disk_hits")
                return stored
            obs.count("engine.disk_misses")
        with obs.span("engine.rewrite", cached=False, target="datalog") as span:
            rules: Sequence[TGD] = self._rules
            if self._filter_relevant:
                from repro.rewriting.relevance import relevant_rules

                rules = relevant_rules(ucq, rules).relevant
                span.set(relevant_rules=len(rules))
            result = rewrite_datalog(
                ucq,
                rules,
                self._budget,
                minimize_workers=self._minimize_workers,
                minimize_mode=self._minimize_mode,
            )
            span.set(complete=result.complete, size=result.size)
        putter = getattr(self._persistent, "put_datalog", None)
        if putter is not None:
            putter(ucq, result)
        return result

    def _preflight(
        self, ucq: UnionOfConjunctiveQueries, rules: Sequence[TGD]
    ) -> None:
        """Warn before rewriting when the static size estimate blows up.

        The estimate is the AG(P) fan-out bound of
        :func:`repro.checkers.estimator.estimate_disjunct_bound`; it
        costs one pass over the (relevance-filtered) rules, so the
        pre-flight stays cheap relative to the rewriting it guards.
        """
        from repro.checkers.estimator import (
            RewritingBlowupWarning,
            estimate_disjunct_bound,
        )

        estimate = estimate_disjunct_bound(ucq, rules, budget=self._budget)
        obs.event(
            "engine.preflight_estimate",
            bound=estimate.bound,
            per_round=estimate.per_round,
            depth=estimate.depth,
            cyclic=estimate.cyclic,
        )
        if estimate.bound > self._budget.max_cqs:
            chain = " -> ".join(estimate.chain) or "<none>"
            warnings.warn(
                RewritingBlowupWarning(
                    f"estimated rewriting size {estimate.render_bound()} "
                    f"exceeds the budget's max_cqs={self._budget.max_cqs}; "
                    f"offending rule chain: {chain}"
                ),
                stacklevel=2,
            )

    def _answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        database: Database,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers of *query* over (rules, database)."""
        result = self._rewrite(query)
        self._check_complete(result, require_complete)
        with obs.span(
            "engine.answer", backend="memory", complete=result.complete
        ) as span:
            answers = evaluate_ucq(result.ucq, database)
            span.set(answers=len(answers))
        return answers

    def _answer_sql(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        backend: SQLiteBackend,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Like :meth:`_answer` but evaluated as SQL on a SQLite backend."""
        result = self._rewrite(query)
        self._check_complete(result, require_complete)
        with obs.span(
            "engine.answer", backend="sqlite", complete=result.complete
        ) as span:
            answers = backend.execute_ucq(result.ucq)
            span.set(answers=len(answers))
        return answers

    @staticmethod
    def _check_complete(
        result: RewritingResult | DatalogRewriting, require_complete: bool
    ) -> None:
        if require_complete and not result.complete:
            raise RewritingBudgetExceeded(
                "rewriting incomplete within budget; pass "
                "require_complete=False for a sound approximation",
                partial_cqs=result.generated,
                depth_reached=result.depth_reached,
            )

    # ----------------------------------------------------------------- #
    # Deprecated direct entry points                                      #
    # ----------------------------------------------------------------- #

    def rewrite(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> RewritingResult:
        """Deprecated: use ``Session.prepare(query).result`` instead."""
        _deprecated("FORewritingEngine.rewrite", "repro.api.Session.prepare")
        return self._rewrite(query)

    def answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        database: Database,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Deprecated: use ``Session.answer`` / ``PreparedQuery.answer``.

        With ``require_complete=True`` (default) an incomplete rewriting
        (budget exhausted) raises; with False the sound partial answer
        set is returned.
        """
        _deprecated("FORewritingEngine.answer", "repro.api.Session.answer")
        return self._answer(query, database, require_complete)

    def answer_sql(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        backend: SQLiteBackend,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Deprecated: use ``Session.answer(query, backend="sql")``."""
        _deprecated(
            "FORewritingEngine.answer_sql", 'repro.api.Session.answer(backend="sql")'
        )
        return self._answer_sql(query, backend, require_complete)

    def sql_for(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> str:
        """The SQL text of the rewriting (the "equivalent SQL query")."""
        return ucq_to_sql(self._rewrite(query).ucq)
