"""End-to-end FO-rewriting query-answering engine.

:class:`FORewritingEngine` packages the pipeline the paper advocates:
given an ontology (a set of TGDs), answer a UCQ over a plain database
by (1) computing the FO-rewriting of the query w.r.t. the TGDs and
(2) evaluating the rewriting over the database alone -- either with the
in-memory evaluator or compiled to SQL on a SQLite backend.  Data
complexity is therefore that of evaluating a fixed FO query (AC0),
which is the whole point of FO-rewritability (Definition 1).
"""

from __future__ import annotations

from typing import Sequence

from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.data.sql import SQLiteBackend, ucq_to_sql
from repro.lang.errors import RewritingBudgetExceeded
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import RewritingResult, rewrite


class FORewritingEngine:
    """Answers UCQs over a TGD ontology by query rewriting.

    Rewritings are cached per query (keyed by the UCQ's canonical
    form), so answering the same query over many databases pays the
    rewriting cost once -- the usage pattern OBDA is designed around.
    """

    def __init__(
        self,
        rules: Sequence[TGD],
        budget: RewritingBudget | None = None,
        filter_relevant: bool = True,
    ):
        self._rules = tuple(rules)
        self._budget = budget or RewritingBudget.default()
        self._filter_relevant = filter_relevant
        self._cache: dict[UnionOfConjunctiveQueries, RewritingResult] = {}

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The ontology this engine answers queries over."""
        return self._rules

    def rewrite(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> RewritingResult:
        """The (cached) rewriting of *query* w.r.t. the engine's rules."""
        ucq = UnionOfConjunctiveQueries.of(query)
        result = self._cache.get(ucq)
        if result is None:
            rules: Sequence[TGD] = self._rules
            if self._filter_relevant:
                from repro.rewriting.relevance import relevant_rules

                rules = relevant_rules(ucq, rules).relevant
            result = rewrite(ucq, rules, self._budget)
            self._cache[ucq] = result
        return result

    def answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        database: Database,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers of *query* over (rules, database).

        With ``require_complete=True`` (default) an incomplete rewriting
        (budget exhausted) raises; with False the sound partial answer
        set is returned.
        """
        result = self.rewrite(query)
        if require_complete and not result.complete:
            raise RewritingBudgetExceeded(
                "rewriting incomplete within budget; pass "
                "require_complete=False for a sound approximation",
                partial_cqs=result.generated,
                depth_reached=result.depth_reached,
            )
        return evaluate_ucq(result.ucq, database)

    def answer_sql(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        backend: SQLiteBackend,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Like :meth:`answer` but evaluated as SQL on a SQLite backend."""
        result = self.rewrite(query)
        if require_complete and not result.complete:
            raise RewritingBudgetExceeded(
                "rewriting incomplete within budget; pass "
                "require_complete=False for a sound approximation",
                partial_cqs=result.generated,
                depth_reached=result.depth_reached,
            )
        return backend.execute_ucq(result.ucq)

    def sql_for(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> str:
        """The SQL text of the rewriting (the "equivalent SQL query")."""
        return ucq_to_sql(self.rewrite(query).ucq)
