"""End-to-end FO-rewriting query-answering engine.

:class:`FORewritingEngine` packages the pipeline the paper advocates:
given an ontology (a set of TGDs), answer a UCQ over a plain database
by (1) computing the FO-rewriting of the query w.r.t. the TGDs and
(2) evaluating the rewriting over the database alone -- either with the
in-memory evaluator or compiled to SQL on a SQLite backend.  Data
complexity is therefore that of evaluating a fixed FO query (AC0),
which is the whole point of FO-rewritability (Definition 1).
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from repro import obs
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.data.sql import SQLiteBackend, ucq_to_sql
from repro.lang.errors import RewritingBudgetExceeded
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import RewritingResult, rewrite


class CacheInfo(NamedTuple):
    """Hit/miss statistics of the engine's rewriting cache."""

    hits: int
    misses: int
    size: int


class FORewritingEngine:
    """Answers UCQs over a TGD ontology by query rewriting.

    Rewritings are cached per query (keyed by the UCQ's canonical
    form, so alpha-renamed or atom-reordered variants of a query share
    one entry), and answering the same query over many databases pays
    the rewriting cost once -- the usage pattern OBDA is designed
    around.  Cache effectiveness is observable via :meth:`cache_info`
    and the ``engine.cache_hits`` / ``engine.cache_misses`` counters
    of :mod:`repro.obs`.
    """

    def __init__(
        self,
        rules: Sequence[TGD],
        budget: RewritingBudget | None = None,
        filter_relevant: bool = True,
    ):
        self._rules = tuple(rules)
        self._budget = budget or RewritingBudget.default()
        self._filter_relevant = filter_relevant
        self._cache: dict[UnionOfConjunctiveQueries, RewritingResult] = {}
        self._hits = 0
        self._misses = 0

    @property
    def rules(self) -> tuple[TGD, ...]:
        """The ontology this engine answers queries over."""
        return self._rules

    def cache_info(self) -> CacheInfo:
        """Hits, misses and current size of the rewriting cache."""
        return CacheInfo(self._hits, self._misses, len(self._cache))

    def rewrite(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> RewritingResult:
        """The (cached) rewriting of *query* w.r.t. the engine's rules."""
        ucq = UnionOfConjunctiveQueries.of(query)
        result = self._cache.get(ucq)
        if result is None:
            self._misses += 1
            obs.count("engine.cache_misses")
            with obs.span("engine.rewrite", cached=False) as span:
                rules: Sequence[TGD] = self._rules
                if self._filter_relevant:
                    from repro.rewriting.relevance import relevant_rules

                    rules = relevant_rules(ucq, rules).relevant
                    span.set(relevant_rules=len(rules))
                result = rewrite(ucq, rules, self._budget)
                span.set(complete=result.complete, size=result.size)
            self._cache[ucq] = result
        else:
            self._hits += 1
            obs.count("engine.cache_hits")
        return result

    def answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        database: Database,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers of *query* over (rules, database).

        With ``require_complete=True`` (default) an incomplete rewriting
        (budget exhausted) raises; with False the sound partial answer
        set is returned.
        """
        result = self.rewrite(query)
        if require_complete and not result.complete:
            raise RewritingBudgetExceeded(
                "rewriting incomplete within budget; pass "
                "require_complete=False for a sound approximation",
                partial_cqs=result.generated,
                depth_reached=result.depth_reached,
            )
        with obs.span(
            "engine.answer", backend="memory", complete=result.complete
        ) as span:
            answers = evaluate_ucq(result.ucq, database)
            span.set(answers=len(answers))
        return answers

    def answer_sql(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        backend: SQLiteBackend,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Like :meth:`answer` but evaluated as SQL on a SQLite backend."""
        result = self.rewrite(query)
        if require_complete and not result.complete:
            raise RewritingBudgetExceeded(
                "rewriting incomplete within budget; pass "
                "require_complete=False for a sound approximation",
                partial_cqs=result.generated,
                depth_reached=result.depth_reached,
            )
        with obs.span(
            "engine.answer", backend="sqlite", complete=result.complete
        ) as span:
            answers = backend.execute_ucq(result.ucq)
            span.set(answers=len(answers))
        return answers

    def sql_for(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> str:
        """The SQL text of the rewriting (the "equivalent SQL query")."""
        return ucq_to_sql(self.rewrite(query).ucq)
