"""CQ subsumption and minimization.

``q1`` is *subsumed by* ``q2`` (``q1 ⊑ q2``) when every answer of
``q1`` is an answer of ``q2`` over every database.  By the
homomorphism theorem this holds iff there is a homomorphism from the
body of ``q2`` to the body of ``q1`` mapping the answer tuple of
``q2`` position-wise onto the answer tuple of ``q1``.

The check is implemented with the canonical-database ("freezing")
method: the variables of ``q1`` are frozen into private constants, the
frozen body becomes a database, and the evaluator searches for a
homomorphic match of ``q2``'s body.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.data.database import Database
from repro.data.evaluation import all_homomorphisms
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Term, Variable


class _Frozen:
    """Private payload wrapping a frozen variable name.

    Wrapping guarantees frozen constants can never collide with real
    constants appearing in queries.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Frozen) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("_Frozen", self.name))

    def __repr__(self) -> str:
        return f"_Frozen({self.name!r})"

    def __str__(self) -> str:
        return f"«{self.name}»"

    def __lt__(self, other: "_Frozen") -> bool:
        return self.name < other.name


def _freeze_term(term: Term) -> Term:
    if isinstance(term, Variable):
        return Constant(_Frozen(term.name))
    return term


def _freeze_body(body: Sequence[Atom]) -> Database:
    database = Database()
    for atom in body:
        database.add(Atom(atom.relation, [_freeze_term(t) for t in atom.terms]))
    return database


def is_subsumed(subsumee: ConjunctiveQuery, subsumer: ConjunctiveQuery) -> bool:
    """True iff ``subsumee ⊑ subsumer`` (the subsumer is more general).

    Queries of different arity are never comparable.
    """
    if subsumee.arity != subsumer.arity:
        return False
    canonical = _freeze_body(subsumee.body)
    frozen_answers = tuple(_freeze_term(t) for t in subsumee.answer_terms)
    for hom in all_homomorphisms(list(subsumer.body), canonical):
        image = tuple(
            hom[t] if isinstance(t, Variable) else t
            for t in subsumer.answer_terms
        )
        if image == frozen_answers:
            return True
    return False


def equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """True iff the two CQs are logically equivalent (mutual subsumption)."""
    return is_subsumed(first, second) and is_subsumed(second, first)


def remove_subsumed(
    queries: Sequence[ConjunctiveQuery],
) -> tuple[ConjunctiveQuery, ...]:
    """Keep only subsumption-maximal CQs (the minimal equivalent UCQ).

    A query is dropped when another input query strictly subsumes it;
    among mutually equivalent queries the one with the smallest body
    (earliest on ties) survives, so output is deterministic.
    """
    queries = list(queries)
    with obs.span("minimize.remove_subsumed", disjuncts=len(queries)) as span:
        rank = {
            i: (len(query.body), i) for i, query in enumerate(queries)
        }
        # Subsumption checks are tallied locally and emitted once, so
        # the O(n^2) loop stays free of instrumentation calls.
        checks = 0
        kept: list[ConjunctiveQuery] = []
        for i, query in enumerate(queries):
            dominated = False
            for j, other in enumerate(queries):
                if i == j:
                    continue
                checks += 1
                if not is_subsumed(query, other):
                    continue
                checks += 1
                if is_subsumed(other, query):
                    # Equivalent pair: keep the better-ranked one only.
                    if rank[j] < rank[i]:
                        dominated = True
                        break
                else:
                    dominated = True
                    break
            if not dominated:
                kept.append(query)
        span.set(kept=len(kept))
        obs.count("minimize.subsumption_checks", checks)
        obs.count("minimize.disjuncts_removed", len(queries) - len(kept))
        return tuple(kept)


def minimize_cq(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Remove redundant body atoms (compute a core of the query).

    Repeatedly drops an atom when the remaining body still admits a
    homomorphism from the full query fixing the answer tuple -- i.e.
    the shortened query is equivalent to the original.
    """
    body = list(dict.fromkeys(query.body))
    checks = 0
    changed = True
    while changed and len(body) > 1:
        changed = False
        for i in range(len(body)):
            candidate_body = body[:i] + body[i + 1:]
            answer_vars = set(query.answer_variables)
            remaining_vars = {
                v for atom in candidate_body for v in atom.variables()
            }
            if not answer_vars <= remaining_vars:
                continue
            candidate = ConjunctiveQuery(
                query.answer_terms, candidate_body, name=query.name
            )
            checks += 1
            if is_subsumed(candidate, query):
                body = candidate_body
                changed = True
                break
    if checks:
        obs.count("minimize.subsumption_checks", checks)
    dropped = len(query.body) - len(body)
    if dropped:
        obs.count("minimize.atoms_dropped", dropped)
    return ConjunctiveQuery(query.answer_terms, body, name=query.name)
