"""CQ subsumption and minimization.

``q1`` is *subsumed by* ``q2`` (``q1 ⊑ q2``) when every answer of
``q1`` is an answer of ``q2`` over every database.  By the
homomorphism theorem this holds iff there is a homomorphism from the
body of ``q2`` to the body of ``q1`` mapping the answer tuple of
``q2`` position-wise onto the answer tuple of ``q1``.

The check is implemented with the canonical-database ("freezing")
method: the variables of ``q1`` are frozen into private constants, the
frozen body becomes a database, and the evaluator searches for a
homomorphic match of ``q2``'s body.

This module is the stable public API; the heavy lifting -- the
necessary-condition filters, per-CQ profile/freeze cache, bucketed
candidate index and the parallel all-pairs path -- lives in
:mod:`repro.rewriting.subsume`.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.lang.queries import ConjunctiveQuery
from repro.rewriting.subsume import (
    SubsumptionKernel,
    _Frozen,
    freeze_body,
    freeze_term,
    kernel_remove_subsumed,
    parallel_remove_subsumed,
    shared_is_subsumed,
)

__all__ = [
    "equivalent",
    "is_subsumed",
    "minimize_cq",
    "remove_subsumed",
]

# Backwards-compatible aliases for the pre-kernel private helpers.
_freeze_term = freeze_term
_freeze_body = freeze_body
assert _Frozen is not None  # re-exported for existing callers


def is_subsumed(subsumee: ConjunctiveQuery, subsumer: ConjunctiveQuery) -> bool:
    """True iff ``subsumee ⊑ subsumer`` (the subsumer is more general).

    Queries of different arity are never comparable.

    Served by the process-wide shared :class:`SubsumptionKernel`, so a
    caller looping over a fixed subsumee (lint passes, the checkers
    estimator) reuses its cached canonical database instead of
    re-freezing it on every call, and pairs rejected by the
    necessary-condition filters never pay for a homomorphism search.
    """
    return shared_is_subsumed(subsumee, subsumer)


def equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """True iff the two CQs are logically equivalent (mutual subsumption)."""
    return is_subsumed(first, second) and is_subsumed(second, first)


def remove_subsumed(
    queries: Sequence[ConjunctiveQuery],
    *,
    max_workers: int | None = None,
    mode: str = "thread",
    kernel: SubsumptionKernel | None = None,
) -> tuple[ConjunctiveQuery, ...]:
    """Keep only subsumption-maximal CQs (the minimal equivalent UCQ).

    A query is dropped when another input query strictly subsumes it;
    among mutually equivalent queries the one with the smallest body
    (earliest on ties) survives, so output is deterministic.

    ``max_workers`` opts in to parallel minimization for large UCQs
    (``mode`` selects ``"thread"`` or ``"process"``; see
    :func:`repro.rewriting.subsume.parallel_remove_subsumed`).  The
    result is identical in every mode.  Callers that already hold a
    :class:`SubsumptionKernel` (the rewriting loops) pass it via
    *kernel* so the profile/freeze cache carries over; its tallies are
    flushed here.
    """
    queries = list(queries)
    with obs.span("minimize.remove_subsumed", disjuncts=len(queries)) as span:
        kernel = kernel or SubsumptionKernel()
        if max_workers is not None and len(queries) > 1:
            kept = parallel_remove_subsumed(
                queries, max_workers=max_workers, mode=mode, kernel=kernel
            )
        else:
            kept = kernel_remove_subsumed(queries, kernel)
        span.set(kept=len(kept))
        kernel.flush_counters()
        obs.count("minimize.disjuncts_removed", len(queries) - len(kept))
        return kept


def minimize_cq(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Remove redundant body atoms (compute a core of the query).

    Repeatedly drops an atom when the remaining body still admits a
    homomorphism from the full query fixing the answer tuple -- i.e.
    the shortened query is equivalent to the original.
    """
    body = list(dict.fromkeys(query.body))
    kernel = SubsumptionKernel()
    changed = True
    while changed and len(body) > 1:
        changed = False
        for i in range(len(body)):
            candidate_body = body[:i] + body[i + 1:]
            answer_vars = set(query.answer_variables)
            remaining_vars = {
                v for atom in candidate_body for v in atom.variables()
            }
            if not answer_vars <= remaining_vars:
                continue
            candidate = ConjunctiveQuery(
                query.answer_terms, candidate_body, name=query.name
            )
            if kernel.is_subsumed(candidate, query):
                body = candidate_body
                changed = True
                break
    kernel.flush_counters()
    dropped = len(query.body) - len(body)
    if dropped:
        obs.count("minimize.atoms_dropped", dropped)
    return ConjunctiveQuery(query.answer_terms, body, name=query.name)
