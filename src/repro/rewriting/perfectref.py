"""A PerfectRef-style baseline rewriter for linear TGDs.

PerfectRef (Calvanese et al., the DL-Lite rewriting algorithm) is the
classical baseline every rewriting engine is measured against.  This
module implements its natural generalisation to *linear* TGDs
(single-atom bodies): repeatedly

1. **atom rewriting** -- replace one query atom that unifies with a
   rule head (under the usual existential-variable applicability
   conditions) by the rule's body atom, and
2. **reduce** -- unify two query atoms with each other (PerfectRef's
   factorisation step),

until no new CQ (up to canonical form) appears.  Subsumed CQs are
removed from the final result only, as in the original algorithm.

On linear inputs this produces the same UCQ (up to equivalence) as the
general piece engine (:mod:`repro.rewriting.rewriter`) -- asserted by
tests and the comparison bench -- while being considerably simpler;
it exists as the baseline, not as a replacement: it cannot handle
multi-atom bodies or heads.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.lang.atoms import Atom
from repro.lang.errors import NotSupportedError
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Term, Variable
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.minimize import remove_subsumed
from repro.rewriting.pieces import factorizations
from repro.rewriting.subsume import SubsumptionFrontier
from repro.rewriting.rewriter import RewritingResult


def perfectref_rewrite(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    budget: RewritingBudget | None = None,
) -> RewritingResult:
    """PerfectRef-style saturation over linear TGDs.

    Raises :class:`NotSupportedError` on non-linear or multi-head
    rules -- the baseline's scope is exactly the DL-Lite-shaped
    fragment.
    """
    budget = budget or RewritingBudget.default()
    rules = list(rules)
    for rule in rules:
        if len(rule.body) != 1 or len(rule.head) != 1:
            raise NotSupportedError(
                f"PerfectRef baseline requires linear single-head rules; "
                f"got {rule.label or rule}"
            )

    with obs.span("perfectref", rules=len(rules)) as span:
        seen: dict[tuple, ConjunctiveQuery] = {}
        # Incrementally minimal result set: every new CQ is admitted
        # against the current antichain (exact batch remove_subsumed
        # semantics: strictly subsumed CQs are rejected, equivalents
        # keep the smaller-body/earlier one), so the final pass only
        # revisits the survivors.  Exploration still covers every
        # generated CQ, as in the original algorithm.
        minimal = SubsumptionFrontier()
        frontier: list[ConjunctiveQuery] = []
        for cq in UnionOfConjunctiveQueries.of(query):
            cq = cq.dedupe_body()
            key = cq.canonical()
            if key not in seen:
                seen[key] = cq
                minimal.admit(cq)
                frontier.append(cq)

        per_depth = [len(frontier)]
        depth = 0
        explored = 0
        complete = True
        while frontier:
            if budget.max_depth is not None and depth >= budget.max_depth:
                complete = False
                break
            depth += 1
            with obs.span(
                "perfectref.step", depth=depth, frontier=len(frontier)
            ) as step_span:
                next_frontier: list[ConjunctiveQuery] = []
                for cq in frontier:
                    explored += 1
                    candidates = list(_atom_rewritings(cq, rules))
                    candidates.extend(factorizations(cq))
                    for candidate in candidates:
                        candidate = candidate.dedupe_body()
                        key = candidate.canonical()
                        if key in seen:
                            continue
                        seen[key] = candidate
                        minimal.admit(candidate)
                        next_frontier.append(candidate)
                    if len(seen) > budget.max_cqs:
                        complete = False
                        next_frontier = []
                        break
                step_span.set(new=len(next_frontier))
            per_depth.append(len(next_frontier))
            frontier = next_frontier
            if not complete:
                break

        obs.count("perfectref.cqs_generated", len(seen))
        obs.count("perfectref.cqs_explored", explored)
        # The frontier is already an antichain equal to batch
        # remove_subsumed over every generated CQ; the final pass is a
        # cheap safety net over the survivors (and flushes the
        # kernel's counters).
        final = remove_subsumed(minimal.queries(), kernel=minimal.kernel)
        span.set(complete=complete, depth=depth, size=len(final))
        return RewritingResult(
            ucq=UnionOfConjunctiveQueries(list(final)),
            complete=complete,
            depth_reached=depth,
            generated=len(seen),
            explored=explored,
            per_depth=tuple(per_depth),
        )


def _atom_rewritings(cq: ConjunctiveQuery, rules: Sequence[TGD]):
    """All single-atom rewriting steps of *cq* (PerfectRef step 1)."""
    answer_vars = set(cq.answer_variables)
    for index, atom in enumerate(cq.body):
        shared = _shared_variables(cq, index)
        for rule in rules:
            fresh = rule.rename_apart(
                set(cq.body_variables()) | answer_vars
            )
            head = fresh.head[0]
            unifier = _applicable_unifier(
                atom, head, fresh, shared, answer_vars
            )
            if unifier is None:
                continue
            new_body = [
                unifier.apply_atom(a)
                for i, a in enumerate(cq.body)
                if i != index
            ]
            new_body.append(unifier.apply_atom(fresh.body[0]))
            answers = [unifier.apply_term(t) for t in cq.answer_terms]
            yield ConjunctiveQuery(answers, new_body, name=cq.name)


def _shared_variables(cq: ConjunctiveQuery, index: int) -> set[Variable]:
    """Variables of atom *index* occurring elsewhere in the query."""
    mine = set(cq.body[index].variables())
    others: set[Variable] = set()
    for i, atom in enumerate(cq.body):
        if i != index:
            others.update(atom.variables())
    return mine & others


def _applicable_unifier(
    atom: Atom,
    head: Atom,
    rule: TGD,
    shared: set[Variable],
    answer_vars: set[Variable],
) -> Substitution | None:
    """PerfectRef applicability: bound positions need frontier partners."""
    if atom.relation != head.relation or atom.arity != head.arity:
        return None
    existential = set(rule.existential_head_variables())

    parent: dict[Term, Term] = {}

    def find(term: Term) -> Term:
        parent.setdefault(term, term)
        while parent[term] != term:
            parent[term] = parent[parent[term]]
            term = parent[term]
        return term

    for left, right in zip(atom.terms, head.terms):
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[left_root] = right_root

    groups: dict[Term, set[Term]] = {}
    for term in list(parent):
        groups.setdefault(find(term), set()).add(term)

    mapping: dict[Variable, Term] = {}
    for group in groups.values():
        constants = {t for t in group if isinstance(t, Constant)}
        if len(constants) > 1:
            return None
        group_existential = {
            t for t in group if isinstance(t, Variable) and t in existential
        }
        if group_existential:
            if len(group_existential) > 1 or constants:
                return None
            bound = {
                t
                for t in group
                if isinstance(t, Variable)
                and (t in shared or t in answer_vars)
            }
            frontier = {
                t
                for t in group
                if isinstance(t, Variable)
                and t in set(rule.distinguished_variables())
            }
            if bound or frontier:
                return None  # a bound argument cannot become a null
        representative = _representative(group, answer_vars, existential)
        for term in group:
            if isinstance(term, Variable) and term != representative:
                mapping[term] = representative
    return Substitution(mapping)


def _representative(
    group: set[Term], answer_vars: set[Variable], existential: set[Variable]
) -> Term:
    def rank(term: Term) -> tuple:
        if isinstance(term, Constant):
            return (0, str(term))
        assert isinstance(term, Variable)
        if term in answer_vars:
            return (1, term.name)
        if term not in existential:
            return (2, term.name)
        return (3, term.name)

    return min(group, key=rank)
