"""Per-query FO-rewritability probing (the Section 7 scenario).

When a TGD set fails (or cannot be shown to pass) the WR check, a
*specific* query may still be FO-rewritable: the dangerous cycles may
be unreachable from its atoms ([11] attacks exactly this with "query
patterns").  :func:`probe_query_rewritability` runs depth-staged
rewriting and classifies the outcome:

* ``TERMINATES`` -- the saturation completed: this query is
  FO-rewritable over this set and the returned UCQ is its rewriting;
* ``DIVERGING`` -- the join width of the partial rewriting keeps
  strictly growing round after round (the paper's "unbounded chain"
  signature); evidence, not proof, of non-rewritability;
* ``UNKNOWN`` -- the budget ran out without a growth trend.

The probe is deliberately cheap to call before committing to a large
budget, and its ``TERMINATES`` verdict is definitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import RewritingResult, rewrite


class ProbeVerdict(enum.Enum):
    """Outcome classes of a rewritability probe."""

    TERMINATES = "terminates"
    DIVERGING = "diverging"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ProbeReport:
    """Result of probing one query against one TGD set.

    Attributes:
        verdict: see :class:`ProbeVerdict`.
        result: the last (deepest) rewriting result; when the verdict
            is TERMINATES this is the complete rewriting.
        widths: widest-join trajectory across the probed depths (the
            growth evidence behind a DIVERGING verdict).
        depths: the depths probed, aligned with *widths*.
    """

    verdict: ProbeVerdict
    result: RewritingResult
    widths: tuple[int, ...]
    depths: tuple[int, ...]

    @property
    def rewriting(self) -> UnionOfConjunctiveQueries:
        """The (possibly partial) UCQ of the deepest probe."""
        return self.result.ucq


def probe_query_rewritability(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    max_depth: int = 12,
    max_cqs: int = 50_000,
    growth_rounds: int = 4,
    max_seconds_per_depth: float | None = 10.0,
) -> ProbeReport:
    """Stage the rewriting depth and watch for completion or growth.

    A DIVERGING verdict requires the widest join to strictly increase
    over the last *growth_rounds* probed depths -- the signature of an
    unbounded chain; mere size growth of the UCQ (normal for
    hierarchies) does not qualify.
    """
    widths: list[int] = []
    depths: list[int] = []
    last: RewritingResult | None = None
    for depth in range(1, max_depth + 1):
        last = rewrite(
            query,
            rules,
            RewritingBudget(
                max_depth=depth,
                max_cqs=max_cqs,
                max_seconds=max_seconds_per_depth,
            ),
        )
        depths.append(depth)
        widths.append(last.max_body_atoms)
        if last.complete:
            return ProbeReport(
                verdict=ProbeVerdict.TERMINATES,
                result=last,
                widths=tuple(widths),
                depths=tuple(depths),
            )
    assert last is not None
    recent = widths[-growth_rounds:]
    strictly_growing = len(recent) == growth_rounds and all(
        b > a for a, b in zip(recent, recent[1:])
    )
    trend = widths[-2 * growth_rounds:]
    loosely_growing = (
        len(trend) == 2 * growth_rounds
        and trend[-1] > trend[0]
        and all(b >= a for a, b in zip(trend, trend[1:]))
    )
    if strictly_growing or loosely_growing:
        verdict = ProbeVerdict.DIVERGING
    else:
        verdict = ProbeVerdict.UNKNOWN
    return ProbeReport(
        verdict=verdict,
        result=last,
        widths=tuple(widths),
        depths=tuple(depths),
    )
