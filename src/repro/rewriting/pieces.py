"""Piece unification: the rewriting step over existential rules.

A rewriting step resolves a subset of the query atoms (a *piece*)
against the head of a TGD and replaces it with the rule body.  The
piece cannot be chosen freely: a query variable unified with an
*existential head variable* of the rule corresponds to a labeled null
in the canonical model, so it must not be an answer variable, must not
be unified with a constant or with a frontier variable, and every other
atom in which it occurs must belong to the piece as well (otherwise the
step would claim knowledge about a null that the rest of the query
still constrains).  When a shared variable blocks a unification, the
piece is *aggregated*: the blocking atoms are pulled into the piece and
unified against head atoms too, recursively.

This is the classical sound-and-complete rewriting operator for
existential rules; the paper's position graph and P-node graph are
precisely abstractions of the possible sequences of these steps
("every edge from an atom σ to an atom σ' represents the possible
transformation of σ into σ' through a query rewriting step", Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Term, Variable
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class PieceRewriting:
    """One successful rewriting step.

    Attributes:
        query: the rewritten conjunctive query.
        rule: the (renamed-apart) rule instance that was applied.
        piece: indexes of the query body atoms consumed by the step.
    """

    query: ConjunctiveQuery
    rule: TGD
    piece: frozenset[int]


class _UnionFind:
    """Union-find over terms for building unifier classes."""

    def __init__(self):
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent == term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[left_root] = right_root

    def classes(self) -> list[set[Term]]:
        groups: dict[Term, set[Term]] = {}
        for term in list(self._parent):
            groups.setdefault(self.find(term), set()).add(term)
        return list(groups.values())


def piece_rewritings(
    query: ConjunctiveQuery, rule: TGD
) -> Iterator[PieceRewriting]:
    """All piece rewritings of *query* with *rule* (deduplicated).

    The rule is standardized apart from the query first.  Pieces are
    enumerated starting from every single (query atom, head atom) pair
    and closed under the aggregation forced by existential-variable
    sharing; each distinct closed piece yields at most one rewriting
    (the most general unifier of its pairs).
    """
    fresh_rule = rule.rename_apart(
        set(query.body_variables()) | set(query.answer_variables)
    )
    produced: set[frozenset[tuple[int, int]]] = set()
    results: list[PieceRewriting] = []
    for query_index in range(len(query.body)):
        for head_index in range(len(fresh_rule.head)):
            _close(
                frozenset([(query_index, head_index)]),
                query,
                fresh_rule,
                produced,
                results,
            )
    yield from results


def _close(
    pairs: frozenset[tuple[int, int]],
    query: ConjunctiveQuery,
    rule: TGD,
    produced: set[frozenset[tuple[int, int]]],
    results: list[PieceRewriting],
) -> None:
    """Try to complete *pairs* into a valid piece unifier.

    Appends a :class:`PieceRewriting` to *results* when the unifier is
    valid; recurses with aggregated pieces when an existential class
    leaks into atoms outside the piece; gives up silently when the
    unifier is structurally impossible.
    """
    if pairs in produced:
        return
    produced.add(pairs)

    # Position-wise union of each (query atom, head atom) pair.
    union = _UnionFind()
    for query_index, head_index in pairs:
        query_atom = query.body[query_index]
        head_atom = rule.head[head_index]
        if (
            query_atom.relation != head_atom.relation
            or query_atom.arity != head_atom.arity
        ):
            return
        for query_term, head_term in zip(query_atom.terms, head_atom.terms):
            union.union(query_term, head_term)

    existential = set(rule.existential_head_variables())
    frontier = set(rule.distinguished_variables())
    answer_vars = set(query.answer_variables)
    piece = {query_index for query_index, _ in pairs}
    outside_occurrences = _variable_sites(query, piece)

    aggregation_needed: list[int] = []
    for group in union.classes():
        constants = [t for t in group if isinstance(t, Constant)]
        if len(set(constants)) > 1:
            return  # two distinct constants can never be equal (UNA)
        group_existential = [
            t for t in group
            if isinstance(t, Variable) and t in existential
        ]
        if not group_existential:
            continue
        if len(set(group_existential)) > 1:
            return  # two distinct invented nulls are never equal
        if constants:
            return  # a null is never equal to a constant
        if any(
            isinstance(t, Variable) and t in frontier for t in group
        ):
            return  # a null is never equal to a frontier value
        for term in group:
            if not isinstance(term, Variable) or term in existential:
                continue
            if term in answer_vars:
                return  # answers are never nulls
            aggregation_needed.extend(outside_occurrences.get(term, ()))

    if aggregation_needed:
        # The unifier claims some query variable denotes a null, but the
        # variable also occurs outside the piece: pull each outside atom
        # into the piece, trying every head atom as its partner.
        blocking = aggregation_needed[0]
        for head_index in range(len(rule.head)):
            _close(
                pairs | {(blocking, head_index)},
                query,
                rule,
                produced,
                results,
            )
        return

    substitution = _class_substitution(union, answer_vars, existential)
    new_body: list[Atom] = [
        substitution.apply_atom(atom)
        for index, atom in enumerate(query.body)
        if index not in piece
    ]
    new_body.extend(substitution.apply_atom(atom) for atom in rule.body)
    deduped = list(dict.fromkeys(new_body))
    new_answers = [substitution.apply_term(t) for t in query.answer_terms]
    rewritten = ConjunctiveQuery(new_answers, deduped, name=query.name)
    results.append(
        PieceRewriting(query=rewritten, rule=rule, piece=frozenset(piece))
    )


def _variable_sites(
    query: ConjunctiveQuery, piece: set[int]
) -> dict[Variable, tuple[int, ...]]:
    """Map each variable to the body-atom indexes outside *piece* using it."""
    sites: dict[Variable, list[int]] = {}
    for index, atom in enumerate(query.body):
        if index in piece:
            continue
        for var in atom.variables():
            sites.setdefault(var, []).append(index)
    return {var: tuple(indexes) for var, indexes in sites.items()}


def _class_substitution(
    union: _UnionFind,
    answer_vars: set[Variable],
    existential: set[Variable],
) -> Substitution:
    """Build the unifying substitution from the union-find classes.

    Representative preference: the constant if the class has one, then
    answer variables, then other non-existential variables.  Classes
    consisting of an existential head variable plus piece-local query
    variables map onto the existential variable; those variables vanish
    with the piece, so the choice is invisible in the result.
    """
    mapping: dict[Variable, Term] = {}
    for group in union.classes():
        representative = _pick_representative(group, answer_vars, existential)
        for term in group:
            if isinstance(term, Variable) and term != representative:
                mapping[term] = representative
    return Substitution(mapping)


def _pick_representative(
    group: set[Term],
    answer_vars: set[Variable],
    existential: set[Variable],
) -> Term:
    def rank(term: Term) -> tuple:
        if isinstance(term, Constant):
            return (0, str(term))
        assert isinstance(term, Variable)
        if term in answer_vars:
            return (1, term.name)
        if term not in existential:
            return (2, term.name)
        return (3, term.name)

    return min(group, key=rank)


def factorizations(query: ConjunctiveQuery) -> Iterator[ConjunctiveQuery]:
    """All single-step factorizations of *query*.

    A factorization unifies two body atoms of the query, producing a
    more specific query.  Factorized queries are sound (specialisations)
    and are required as *intermediate* rewriting states: a rule head
    with a repeated or shared existential variable may only become
    applicable after two query atoms have been merged.  Unifications
    that would equate two distinct constants are skipped.
    """
    body = query.body
    for i in range(len(body)):
        for j in range(i + 1, len(body)):
            first, second = body[i], body[j]
            if first.relation != second.relation or first.arity != second.arity:
                continue
            unifier = _factor_mgu(first, second, set(query.answer_variables))
            if unifier is None:
                continue
            new_body = list(
                dict.fromkeys(unifier.apply_atom(a) for a in body)
            )
            if len(new_body) >= len(body):
                continue  # nothing merged; the step did no work
            new_answers = [unifier.apply_term(t) for t in query.answer_terms]
            yield ConjunctiveQuery(new_answers, new_body, name=query.name)


def _factor_mgu(
    first: Atom, second: Atom, answer_vars: set[Variable]
) -> Substitution | None:
    """MGU of two query atoms preferring answer variables as survivors."""
    union = _UnionFind()
    for left, right in zip(first.terms, second.terms):
        union.union(left, right)
    mapping: dict[Variable, Term] = {}
    for group in union.classes():
        constants = [t for t in group if isinstance(t, Constant)]
        if len(set(constants)) > 1:
            return None
        representative = _pick_representative(group, answer_vars, set())
        for term in group:
            if isinstance(term, Variable) and term != representative:
                mapping[term] = representative
    return Substitution(mapping)
