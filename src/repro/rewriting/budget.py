"""Budgets for the rewriting engine.

Deciding FO-rewritability of an arbitrary TGD set is undecidable
(Section 2 of the paper, citing Beeri–Vardi), so the rewriter is a
semi-decision procedure: it terminates on well-behaved inputs (SWR, WR
and the classes they subsume) and must be bounded on everything else.
A :class:`RewritingBudget` caps both the resolution depth (number of
breadth-first rewriting rounds) and the total number of generated CQs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RewritingBudget:
    """Resource limits for one rewriting run.

    Attributes:
        max_depth: maximum number of breadth-first rewriting rounds
            (None means unlimited -- use only when termination is
            guaranteed, e.g. after an SWR/WR membership check).
        max_cqs: maximum number of distinct CQs generated in total.
        max_seconds: wall-clock ceiling for the saturation (None means
            unlimited).  The count budgets bound *work items*, not
            time -- a diverging rewriting whose CQs keep growing can
            burn minutes well under ``max_cqs`` -- so time-sensitive
            callers (probes, tests, interactive tools) should set this.
        strict: when True, exceeding a limit raises
            :class:`~repro.lang.errors.RewritingBudgetExceeded`; when
            False the partial (sound but possibly incomplete) rewriting
            is returned with ``complete=False``.
    """

    max_depth: int | None = None
    max_cqs: int = 100_000
    max_seconds: float | None = None
    strict: bool = False

    def __post_init__(self) -> None:
        if self.max_depth is not None and self.max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {self.max_depth}")
        if self.max_cqs < 1:
            raise ValueError(f"max_cqs must be >= 1, got {self.max_cqs}")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError(
                f"max_seconds must be positive, got {self.max_seconds}"
            )

    @classmethod
    def default(cls) -> "RewritingBudget":
        """A budget generous enough for every workload in this repo."""
        return cls(max_depth=None, max_cqs=100_000, strict=False)

    @classmethod
    def shallow(cls, depth: int) -> "RewritingBudget":
        """A depth-capped budget for approximation experiments."""
        return cls(max_depth=depth, max_cqs=100_000, strict=False)
