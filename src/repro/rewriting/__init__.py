"""FO-rewriting of UCQs over TGDs.

The engine follows the piece-unification approach for existential rules
(the algorithmic substrate behind all FO-rewritability classes the paper
discusses): a rewriting step resolves a *piece* of the query against the
head of a TGD and replaces it with the rule body.  Combined with
factorization and subsumption pruning this yields a sound and complete
UCQ rewriting procedure; it terminates exactly on the inputs the paper's
classes are designed to recognise, so every run takes an explicit
:class:`RewritingBudget`.
"""

from repro.rewriting.approx import ApproximationReport, approximate_answers
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.datalog_target import DatalogRewriting, rewrite_datalog
from repro.rewriting.engine import CacheInfo, FORewritingEngine
from repro.rewriting.minimize import (
    is_subsumed,
    minimize_cq,
    remove_subsumed,
)
from repro.rewriting.perfectref import perfectref_rewrite
from repro.rewriting.pieces import PieceRewriting, piece_rewritings
from repro.rewriting.probe import (
    ProbeReport,
    ProbeVerdict,
    probe_query_rewritability,
)
from repro.rewriting.relevance import RelevanceReport, relevant_rules
from repro.rewriting.rewriter import RewritingResult, rewrite
from repro.rewriting.store import (
    RewritingStore,
    StoredRewriting,
    precompile_workload,
)

__all__ = [
    "ApproximationReport",
    "CacheInfo",
    "DatalogRewriting",
    "FORewritingEngine",
    "PieceRewriting",
    "ProbeReport",
    "ProbeVerdict",
    "RelevanceReport",
    "RewritingBudget",
    "RewritingResult",
    "RewritingStore",
    "StoredRewriting",
    "approximate_answers",
    "is_subsumed",
    "minimize_cq",
    "perfectref_rewrite",
    "piece_rewritings",
    "probe_query_rewritability",
    "relevant_rules",
    "remove_subsumed",
    "precompile_workload",
    "rewrite",
    "rewrite_datalog",
]
