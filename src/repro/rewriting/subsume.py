"""The fast CQ-subsumption kernel behind UCQ minimization.

``q1 ⊑ q2`` (``q1`` is subsumed by the more general ``q2``) holds iff
there is a homomorphism from the body of ``q2`` into the *frozen* body
of ``q1`` mapping the answer tuple of ``q2`` position-wise onto the
frozen answer tuple of ``q1`` (the canonical-database method).  The
homomorphism search is the dominant cost of rewriting pipelines --
PerfectRef-style systems owe their practical speed to avoiding it --
so this module wraps it in three layers of avoidance:

* **necessary-condition filters** -- cheap properties any true
  subsumption pair must satisfy; a failing filter rejects the pair in
  O(1) without freezing or searching anything.  Every filter is proved
  *sound* (it never rejects a true pair) in its docstring, and the
  property suite re-checks that claim on random pairs.
* **per-CQ profiles with a freeze cache** -- relation signatures,
  fingerprints and the frozen canonical database are computed once per
  CQ (:class:`CQProfile`, held by a :class:`SubsumptionKernel`), not
  once per pair, so an all-pairs loop over *n* disjuncts freezes *n*
  bodies instead of *n²*.
* **bucketed candidate indexing** -- disjuncts are grouped by relation
  set; a subsumer's relations must be a subset of the subsumee's, so
  the all-pairs loop only visits buckets that can possibly contain a
  subsumer.

The naive reference implementations (:func:`naive_is_subsumed`,
:func:`naive_remove_subsumed`) are kept verbatim for differential
testing and for the speedup benchmarks: the optimized paths must
return exactly the same results.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Sequence

from repro.data.database import Database
from repro.data.evaluation import all_homomorphisms
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Term, Variable


class _Frozen:
    """Private payload wrapping a frozen variable name.

    Wrapping guarantees frozen constants can never collide with real
    constants appearing in queries.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Frozen) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("_Frozen", self.name))

    def __repr__(self) -> str:
        return f"_Frozen({self.name!r})"

    def __str__(self) -> str:
        return f"«{self.name}»"

    def __lt__(self, other: "_Frozen") -> bool:
        return self.name < other.name


def freeze_term(term: Term) -> Term:
    """Map a variable to its private frozen constant; keep constants."""
    if isinstance(term, Variable):
        return Constant(_Frozen(term.name))
    return term


def freeze_body(body: Sequence[Atom]) -> Database:
    """The canonical database of *body* (variables frozen to constants)."""
    database = Database()
    for atom in body:
        database.add(Atom(atom.relation, [freeze_term(t) for t in atom.terms]))
    return database


class CQProfile:
    """Per-CQ data the kernel needs: signatures, fingerprints, freeze.

    Everything here is computed once per CQ.  The canonical database
    and frozen answer tuple are lazy -- pairs rejected by filters never
    pay for freezing at all.
    """

    __slots__ = (
        "query",
        "arity",
        "body_size",
        "relations",
        "relation_counts",
        "relation_arities",
        "constant_sites",
        "answer_pattern",
        "_frozen_answers",
        "_canonical",
    )

    def __init__(self, query: ConjunctiveQuery):
        self.query = query
        self.arity = query.arity
        body = query.body
        self.body_size = len(body)
        counts: dict[str, int] = {}
        arities: set[tuple[str, int]] = set()
        sites: set[tuple[str, int, Constant]] = set()
        for atom in body:
            counts[atom.relation] = counts.get(atom.relation, 0) + 1
            arities.add((atom.relation, atom.arity))
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    sites.add((atom.relation, position, term))
        # The relation *multiset* signature; only its key set is a
        # sound filter (homomorphisms may collapse same-relation
        # atoms), the counts order candidate scans.
        self.relation_counts = counts
        self.relations = frozenset(counts)
        self.relation_arities = frozenset(arities)
        self.constant_sites = frozenset(sites)
        # Equality pattern of the answer tuple: position -> first
        # position carrying the same term.
        terms = query.answer_terms
        self.answer_pattern = tuple(terms.index(t) for t in terms)
        self._frozen_answers: tuple[Term, ...] | None = None
        self._canonical: Database | None = None

    def frozen(self) -> tuple[Database, tuple[Term, ...]]:
        """The (cached) canonical database and frozen answer tuple."""
        if self._canonical is None:
            answers = tuple(freeze_term(t) for t in self.query.answer_terms)
            canonical = freeze_body(self.query.body)
            # Assign the guard field last so a concurrent reader that
            # observes a non-None _canonical also sees the answers.
            self._frozen_answers = answers
            self._canonical = canonical
        assert self._frozen_answers is not None
        return self._canonical, self._frozen_answers


# --------------------------------------------------------------------- #
# Necessary-condition filters                                             #
# --------------------------------------------------------------------- #
#
# Each predicate takes (subsumee, subsumer) profiles and returns True
# when the pair can be rejected WITHOUT a homomorphism search.  All of
# them are necessary conditions for ``subsumee ⊑ subsumer``: a True
# return proves no qualifying homomorphism exists.


def signature_rejects(subsumee: CQProfile, subsumer: CQProfile) -> bool:
    """Relation-signature filter.

    A homomorphism maps every subsumer body atom onto a subsumee fact
    with the *same* relation, so the subsumer's relation set must be a
    subset of the subsumee's.  (Only the set projection of the multiset
    signature is sound: non-injective homomorphisms may collapse two
    same-relation atoms onto one fact.)
    """
    return not subsumer.relations <= subsumee.relations


def size_rejects(subsumee: CQProfile, subsumer: CQProfile) -> bool:
    """Arity/size filter.

    Queries of different answer arity are never comparable, and every
    subsumer atom needs a target fact of the same relation *and* the
    same width -- the (relation, arity) pairs of the subsumer must all
    occur in the subsumee's body.
    """
    if subsumee.arity != subsumer.arity:
        return True
    return not subsumer.relation_arities <= subsumee.relation_arities


def fingerprint_rejects(subsumee: CQProfile, subsumer: CQProfile) -> bool:
    """Constant/answer fingerprint filter.

    Homomorphisms fix constants, so a subsumer atom carrying constant
    ``c`` at position ``p`` of relation ``r`` can only map onto a
    subsumee fact with ``c`` at the same (r, p) site.  On the answer
    tuple: a constant answer term of the subsumer must literally equal
    the subsumee's term at that position (frozen variables are private
    constants, never equal to a real one), and two equal subsumer
    answer terms have equal images, so the subsumee's answer terms at
    those positions must be equal too.

    Assumes :func:`size_rejects` ran first (equal arities).
    """
    if not subsumer.constant_sites <= subsumee.constant_sites:
        return True
    subsumee_answers = subsumee.query.answer_terms
    for position, term in enumerate(subsumer.query.answer_terms):
        if isinstance(term, Constant) and subsumee_answers[position] != term:
            return True
    pattern = subsumee.answer_pattern
    for position, first in enumerate(subsumer.answer_pattern):
        if first != position and pattern[position] != pattern[first]:
            return True
    return False


def filters_reject(subsumee: CQProfile, subsumer: CQProfile) -> bool:
    """All filters, cheapest first; True ⇒ the pair cannot subsume."""
    return (
        size_rejects(subsumee, subsumer)
        or signature_rejects(subsumee, subsumer)
        or fingerprint_rejects(subsumee, subsumer)
    )


# --------------------------------------------------------------------- #
# Naive reference implementations                                         #
# --------------------------------------------------------------------- #


def naive_is_subsumed(
    subsumee: ConjunctiveQuery, subsumer: ConjunctiveQuery
) -> bool:
    """Reference subsumption check: freeze and search, no shortcuts."""
    if subsumee.arity != subsumer.arity:
        return False
    canonical = freeze_body(subsumee.body)
    frozen_answers = tuple(freeze_term(t) for t in subsumee.answer_terms)
    return _hom_exists(subsumer, canonical, frozen_answers)


def _hom_exists(
    subsumer: ConjunctiveQuery,
    canonical: Database,
    frozen_answers: tuple[Term, ...],
) -> bool:
    for hom in all_homomorphisms(list(subsumer.body), canonical):
        image = tuple(
            hom[t] if isinstance(t, Variable) else t
            for t in subsumer.answer_terms
        )
        if image == frozen_answers:
            return True
    return False


def naive_remove_subsumed(
    queries: Sequence[ConjunctiveQuery],
) -> tuple[ConjunctiveQuery, ...]:
    """Reference minimization: the quadratic all-pairs loop, re-freezing
    every pair.  The optimized :func:`kernel_remove_subsumed` must
    return exactly this (same queries, same order)."""
    queries = list(queries)
    rank = {i: (len(query.body), i) for i, query in enumerate(queries)}
    kept: list[ConjunctiveQuery] = []
    for i, query in enumerate(queries):
        dominated = False
        for j, other in enumerate(queries):
            if i == j:
                continue
            if not naive_is_subsumed(query, other):
                continue
            if naive_is_subsumed(other, query):
                if rank[j] < rank[i]:
                    dominated = True
                    break
            else:
                dominated = True
                break
        if not dominated:
            kept.append(query)
    return tuple(kept)


# --------------------------------------------------------------------- #
# The kernel                                                              #
# --------------------------------------------------------------------- #


class SubsumptionKernel:
    """Profile cache + filter pipeline + tallies for subsumption checks.

    One kernel serves one batch of related checks (a minimization call,
    a rewriting run, or the module-level shared kernel behind the
    public ``is_subsumed`` helper).  Tallies are plain integers so the
    hot loop stays free of instrumentation calls; callers emit them
    once via :meth:`flush_counters`.
    """

    __slots__ = (
        "_profiles",
        "_max_profiles",
        "pairs",
        "pairs_skipped",
        "hom_checks",
        "cache_hits",
        "cache_misses",
    )

    def __init__(self, max_profiles: int | None = None):
        self._profiles: dict[ConjunctiveQuery, CQProfile] = {}
        self._max_profiles = max_profiles
        self.pairs = 0
        self.pairs_skipped = 0
        self.hom_checks = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def profile(self, query: ConjunctiveQuery) -> CQProfile:
        """The cached profile of *query* (computed on first sight)."""
        profile = self._profiles.get(query)
        if profile is not None:
            self.cache_hits += 1
            return profile
        self.cache_misses += 1
        if (
            self._max_profiles is not None
            and len(self._profiles) >= self._max_profiles
        ):
            # Bounded mode (the shared kernel): drop the oldest quarter
            # so long-running processes cannot grow without limit.
            for key in list(self._profiles)[: max(1, self._max_profiles // 4)]:
                del self._profiles[key]
        profile = CQProfile(query)
        self._profiles[query] = profile
        return profile

    def is_subsumed(
        self, subsumee: ConjunctiveQuery, subsumer: ConjunctiveQuery
    ) -> bool:
        """Filtered, freeze-cached ``subsumee ⊑ subsumer``."""
        self.pairs += 1
        subsumee_profile = self.profile(subsumee)
        subsumer_profile = self.profile(subsumer)
        if filters_reject(subsumee_profile, subsumer_profile):
            self.pairs_skipped += 1
            return False
        self.hom_checks += 1
        canonical, frozen_answers = subsumee_profile.frozen()
        return _hom_exists(subsumer, canonical, frozen_answers)

    def skip_bucket(self, count: int) -> None:
        """Record *count* pairs rejected wholesale by the bucket index.

        Skipping a whole bucket is the signature filter applied to all
        its members at once; tallying the pairs keeps
        ``minimize.subsumption_checks`` meaning "pairs considered"
        regardless of which layer rejected them.
        """
        self.pairs += count
        self.pairs_skipped += count

    def flush_counters(self) -> None:
        """Emit the tallies as ``minimize.*`` counters and reset them."""
        from repro import obs

        if self.pairs:
            obs.count("minimize.subsumption_checks", self.pairs)
        if self.pairs_skipped:
            obs.count("minimize.pairs_skipped", self.pairs_skipped)
        if self.hom_checks:
            obs.count("minimize.hom_checks", self.hom_checks)
        if self.cache_hits:
            obs.count("minimize.freeze_cache_hits", self.cache_hits)
        if self.cache_misses:
            obs.count("minimize.freeze_cache_misses", self.cache_misses)
        self.pairs = 0
        self.pairs_skipped = 0
        self.hom_checks = 0
        self.cache_hits = 0
        self.cache_misses = 0

    def absorb(
        self, tallies: tuple[int, int, int, int, int]
    ) -> None:
        """Fold a worker's tally tuple into this kernel's counters."""
        pairs, skipped, homs, hits, misses = tallies
        self.pairs += pairs
        self.pairs_skipped += skipped
        self.hom_checks += homs
        self.cache_hits += hits
        self.cache_misses += misses

    def tallies(self) -> tuple[int, int, int, int, int]:
        return (
            self.pairs,
            self.pairs_skipped,
            self.hom_checks,
            self.cache_hits,
            self.cache_misses,
        )


# The shared kernel behind the public ``is_subsumed`` helper: external
# callers that loop over a fixed subsumee (lint passes, the checkers
# estimator) hit the bounded profile cache instead of re-freezing the
# same canonical database on every call.
_SHARED_PROFILE_LIMIT = 4096
_shared_kernel = SubsumptionKernel(max_profiles=_SHARED_PROFILE_LIMIT)
_shared_lock = threading.Lock()


def shared_is_subsumed(
    subsumee: ConjunctiveQuery, subsumer: ConjunctiveQuery
) -> bool:
    """Kernel-backed check through the process-wide shared cache."""
    with _shared_lock:
        return _shared_kernel.is_subsumed(subsumee, subsumer)


def shared_kernel_info() -> dict[str, int]:
    """Cache statistics of the shared kernel (for tests/diagnostics)."""
    with _shared_lock:
        return {
            "profiles": len(_shared_kernel._profiles),
            "cache_hits": _shared_kernel.cache_hits,
            "cache_misses": _shared_kernel.cache_misses,
            "pairs_skipped": _shared_kernel.pairs_skipped,
            "hom_checks": _shared_kernel.hom_checks,
        }


# --------------------------------------------------------------------- #
# Bucketed all-pairs minimization                                         #
# --------------------------------------------------------------------- #


def _build_index(
    profiles: Sequence[CQProfile],
) -> tuple[dict[frozenset, list[int]], list[tuple[int, int]]]:
    """Bucket query indices by relation set; rank = (body size, index)."""
    rank = [(profile.body_size, i) for i, profile in enumerate(profiles)]
    buckets: dict[frozenset, list[int]] = {}
    for i, profile in enumerate(profiles):
        buckets.setdefault(profile.relations, []).append(i)
    # Likely dominators first: small bodies tend to be more general
    # and are cheaper to search.  Candidate order cannot change the
    # result (domination is an existential), only how fast it's found.
    for ids in buckets.values():
        ids.sort(key=lambda i: rank[i])
    return buckets, rank


def _dominated(
    i: int,
    queries: Sequence[ConjunctiveQuery],
    profiles: Sequence[CQProfile],
    rank: Sequence[tuple[int, int]],
    buckets: dict[frozenset, list[int]],
    kernel: SubsumptionKernel,
) -> bool:
    """True iff some other input query dominates ``queries[i]``.

    Exactly the predicate of the naive loop: strictly subsumed, or
    equivalent to a better-ranked (smaller-body, earlier) query.  Only
    buckets whose relation set is a subset of query *i*'s are visited
    -- by :func:`signature_rejects` no other bucket can hold a
    subsumer.
    """
    query = queries[i]
    relations = profiles[i].relations
    for key, ids in buckets.items():
        if not key <= relations:
            kernel.skip_bucket(len(ids))
            continue
        for j in ids:
            if j == i:
                continue
            if not kernel.is_subsumed(query, queries[j]):
                continue
            if not kernel.is_subsumed(queries[j], query):
                return True
            if rank[j] < rank[i]:
                return True
    return False


def kernel_remove_subsumed(
    queries: Sequence[ConjunctiveQuery],
    kernel: SubsumptionKernel | None = None,
) -> tuple[ConjunctiveQuery, ...]:
    """Bucketed, freeze-cached equivalent of :func:`naive_remove_subsumed`.

    Returns exactly the same tuple (same survivors, same input order);
    the regression suite pins this.
    """
    queries = list(queries)
    kernel = kernel or SubsumptionKernel()
    profiles = [kernel.profile(query) for query in queries]
    buckets, rank = _build_index(profiles)
    return tuple(
        query
        for i, query in enumerate(queries)
        if not _dominated(i, queries, profiles, rank, buckets, kernel)
    )


# --------------------------------------------------------------------- #
# Parallel minimization                                                   #
# --------------------------------------------------------------------- #
#
# Dominance of each disjunct is independent of every other dominance
# decision, so the flag vector partitions freely.  Thread mode shares
# one kernel (profiles are computed once, the lazy freeze is a benign
# idempotent race); process mode mirrors repro.api.pool: spawn-based
# workers rebuild the index from the pickled query list once in an
# initializer, then score index chunks.

_WORKER_STATE: tuple | None = None


def _init_minimize_worker(queries: list[ConjunctiveQuery]) -> None:
    global _WORKER_STATE
    kernel = SubsumptionKernel()
    profiles = [kernel.profile(query) for query in queries]
    buckets, rank = _build_index(profiles)
    _WORKER_STATE = (queries, profiles, rank, buckets, kernel)


def _minimize_chunk(
    indices: list[int],
) -> tuple[list[tuple[int, bool]], tuple[int, int, int, int, int]]:
    assert _WORKER_STATE is not None
    queries, profiles, rank, buckets, kernel = _WORKER_STATE
    flags = [
        (i, _dominated(i, queries, profiles, rank, buckets, kernel))
        for i in indices
    ]
    tallies = kernel.tallies()
    kernel.pairs = kernel.pairs_skipped = kernel.hom_checks = 0
    kernel.cache_hits = kernel.cache_misses = 0
    return flags, tallies


def parallel_remove_subsumed(
    queries: Sequence[ConjunctiveQuery],
    max_workers: int | None = None,
    mode: str = "thread",
    kernel: SubsumptionKernel | None = None,
) -> tuple[ConjunctiveQuery, ...]:
    """:func:`kernel_remove_subsumed` with the flag vector parallelised.

    ``mode="thread"`` shares the calling kernel across a thread pool
    (profiles and frozen databases are computed once and shared);
    ``mode="process"`` fans out over spawn-based worker processes for
    multi-core wins on very large UCQs.  Results are identical to the
    sequential path in either mode.
    """
    from repro.lang.errors import ReproError

    if mode not in ("thread", "process"):
        raise ReproError(
            f"unknown minimize mode {mode!r}; expected 'thread' or 'process'"
        )
    queries = list(queries)
    kernel = kernel or SubsumptionKernel()
    if len(queries) < 2:
        return tuple(queries)

    from repro.api.pool import resolve_workers  # lazy: avoids import cycle

    # 0 means "auto": one worker per CPU (resolve_workers' None case).
    workers = resolve_workers(
        None if max_workers == 0 else max_workers, len(queries)
    )
    if workers <= 1:
        return kernel_remove_subsumed(queries, kernel)
    chunks = [list(range(i, len(queries), workers)) for i in range(workers)]
    chunks = [chunk for chunk in chunks if chunk]

    flags = [False] * len(queries)
    if mode == "thread":
        from concurrent.futures import ThreadPoolExecutor

        profiles = [kernel.profile(query) for query in queries]
        buckets, rank = _build_index(profiles)

        def score(chunk: list[int]) -> list[tuple[int, bool]]:
            return [
                (i, _dominated(i, queries, profiles, rank, buckets, kernel))
                for i in chunk
            ]

        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-minimize"
        ) as executor:
            for result in executor.map(score, chunks):
                for i, dominated in result:
                    flags[i] = dominated
    else:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_minimize_worker,
            initargs=(queries,),
        ) as executor:
            for result, tallies in executor.map(_minimize_chunk, chunks):
                kernel.absorb(tallies)
                for i, dominated in result:
                    flags[i] = dominated
    return tuple(
        query for i, query in enumerate(queries) if not flags[i]
    )


# --------------------------------------------------------------------- #
# Incremental frontier                                                    #
# --------------------------------------------------------------------- #


class SubsumptionFrontier:
    """A bucketed, incrementally minimal set of CQs (an antichain).

    The rewriting loops use it to check newly generated CQs against the
    already-minimal frontier instead of re-minimizing the whole
    generated set each round:

    * :meth:`covers` -- is the new CQ subsumed by a member? (the prune
      test);
    * :meth:`add` -- insert a non-covered CQ, evicting members it
      strictly subsumes (the rewriter discipline: equivalents never
      reach ``add`` because ``covers`` already holds for them);
    * :meth:`admit` -- rank-aware insertion implementing the exact
      batch ``remove_subsumed`` semantics (strictly subsumed CQs are
      rejected, equivalent CQs keep the smaller-body/earlier one) --
      the PerfectRef discipline, where equivalent factorization
      products may legitimately replace their larger parents.

    Members iterate in insertion order, so downstream output stays
    deterministic.
    """

    def __init__(self, kernel: SubsumptionKernel | None = None):
        self.kernel = kernel or SubsumptionKernel()
        self._members: dict[int, ConjunctiveQuery] = {}
        self._ranks: dict[int, tuple[int, int]] = {}
        self._buckets: dict[frozenset, list[int]] = {}
        self._arrivals = 0

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._members.values())

    def queries(self) -> list[ConjunctiveQuery]:
        """The members, oldest first."""
        return list(self._members.values())

    def covers(self, query: ConjunctiveQuery) -> bool:
        """True iff some member subsumes *query* (``query ⊑ member``)."""
        profile = self.kernel.profile(query)
        kernel = self.kernel
        members = self._members
        for key, ids in self._buckets.items():
            if not key <= profile.relations:
                kernel.skip_bucket(len(ids))
                continue
            for member_id in ids:
                if kernel.is_subsumed(query, members[member_id]):
                    return True
        return False

    def add(self, query: ConjunctiveQuery) -> None:
        """Insert *query*; evict members it strictly subsumes.

        Caller contract: *query* is not covered (or the caller accepts
        equivalent members coexisting until a final batch pass).
        """
        profile = self.kernel.profile(query)
        self._evict_dominated(query, profile, None)
        self._insert(query, profile, (profile.body_size, self._arrivals))

    def admit(self, query: ConjunctiveQuery) -> bool:
        """Rank-aware insertion (batch ``remove_subsumed`` semantics).

        Returns False -- and leaves the frontier unchanged -- when an
        existing member dominates *query*: strictly subsumes it, or is
        equivalent with a better (smaller-body, earlier) rank.
        Otherwise inserts *query*, evicts every member it dominates,
        and returns True.
        """
        profile = self.kernel.profile(query)
        rank = (profile.body_size, self._arrivals)
        kernel = self.kernel
        members = self._members
        for key, ids in self._buckets.items():
            if not key <= profile.relations:
                kernel.skip_bucket(len(ids))
                continue
            for member_id in ids:
                member = members[member_id]
                if not kernel.is_subsumed(query, member):
                    continue
                if not kernel.is_subsumed(member, query):
                    return False  # strictly subsumed
                if self._ranks[member_id] < rank:
                    return False  # equivalent, member ranks better
        self._evict_dominated(query, profile, rank)
        self._insert(query, profile, rank)
        return True

    def _evict_dominated(
        self,
        query: ConjunctiveQuery,
        profile: CQProfile,
        rank: tuple[int, int] | None,
    ) -> None:
        """Remove members dominated by *query*.

        With ``rank=None`` only strict subsumption evicts (the ``add``
        discipline); with a rank, equivalence is settled by it (the
        ``admit`` discipline).
        """
        kernel = self.kernel
        doomed: list[tuple[frozenset, int]] = []
        for key, ids in self._buckets.items():
            if not profile.relations <= key:
                kernel.skip_bucket(len(ids))
                continue
            for member_id in ids:
                member = self._members[member_id]
                if not kernel.is_subsumed(member, query):
                    continue
                if not kernel.is_subsumed(query, member):
                    doomed.append((key, member_id))
                elif rank is not None and rank < self._ranks[member_id]:
                    doomed.append((key, member_id))
        for key, member_id in doomed:
            self._buckets[key].remove(member_id)
            if not self._buckets[key]:
                del self._buckets[key]
            del self._members[member_id]
            del self._ranks[member_id]

    def _insert(
        self,
        query: ConjunctiveQuery,
        profile: CQProfile,
        rank: tuple[int, int],
    ) -> None:
        member_id = self._arrivals
        self._arrivals += 1
        self._members[member_id] = query
        self._ranks[member_id] = rank
        self._buckets.setdefault(profile.relations, []).append(member_id)


def profile_pairs(
    queries: Iterable[ConjunctiveQuery],
    kernel: SubsumptionKernel | None = None,
) -> list[CQProfile]:
    """Profiles for a batch of queries (helper for tests/benches)."""
    kernel = kernel or SubsumptionKernel()
    return [kernel.profile(query) for query in queries]
