"""Rule-relevance filtering: shrink the rule set before rewriting.

A rewriting step can only apply a rule whose head relation occurs in
the current query -- and the bodies that step introduces determine
which relations can occur later.  The *relevant* rules for a query are
therefore the backward-reachable ones:

1. start from the query's relations;
2. a rule is relevant when some head atom's relation is reachable;
3. its body relations become reachable; repeat to fixpoint.

Filtering is sound and completeness-preserving (irrelevant rules can
never participate in any rewriting step of the query), and matters in
practice: real ontologies bundle many modules, and the position/P-node
graph costs and the per-round rule loop all shrink with the rule set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class RelevanceReport:
    """Outcome of relevance filtering.

    Attributes:
        relevant: the retained rules, in input order.
        dropped: the discarded rules, in input order.
        reachable_relations: the backward-reachable relation symbols.
    """

    relevant: tuple[TGD, ...]
    dropped: tuple[TGD, ...]
    reachable_relations: frozenset[str]


def relevant_rules(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
) -> RelevanceReport:
    """Backward-reachability filtering of *rules* for *query*."""
    rules = tuple(rules)
    reachable: set[str] = set()
    for cq in UnionOfConjunctiveQueries.of(query):
        reachable.update(atom.relation for atom in cq.body)

    selected: set[int] = set()
    changed = True
    while changed:
        changed = False
        for index, rule in enumerate(rules):
            if index in selected:
                continue
            if any(atom.relation in reachable for atom in rule.head):
                selected.add(index)
                body_relations = {atom.relation for atom in rule.body}
                if not body_relations <= reachable:
                    reachable |= body_relations
                changed = True

    relevant = tuple(rules[i] for i in sorted(selected))
    dropped = tuple(
        rule for i, rule in enumerate(rules) if i not in selected
    )
    return RelevanceReport(
        relevant=relevant,
        dropped=dropped,
        reachable_relations=frozenset(reachable),
    )
