"""Persistence of compiled rewritings.

OBDA deployments answer a fixed query workload over ever-changing
data; the expensive step (computing the rewriting) is per-query, not
per-database.  :class:`RewritingStore` persists a workload's
rewritings to a plain-text file so a deployment can precompile them
once and load them at startup.

File format (self-describing, diff-friendly)::

    # repro rewriting store v1
    ## query
    q(X) :- faculty(X)
    ## rewriting complete=True
    q(X) :- faculty(X).
    q(X) :- professor(X).
    ...

Queries and disjuncts use the library's standard concrete syntax, so
stored files are also valid inputs for manual inspection or editing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro import obs
from repro.lang.errors import ReproError
from repro.lang.parser import parse_query, parse_ucq
from repro.lang.printer import format_ucq
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries

_HEADER = "# repro rewriting store v1"


# --------------------------------------------------------------------- #
# Canonical digests                                                      #
# --------------------------------------------------------------------- #
#
# The persistent cache of :mod:`repro.api.cache` keys compiled
# rewritings by *content*, not identity: a query digest that is stable
# under variable renaming and body reordering (it hashes the canonical
# form of each disjunct), and an ontology digest that is stable under
# rule reordering.  Both are hex SHA-256 strings, safe to embed in file
# names and SQLite keys and comparable across processes.


def _sha256(parts: Iterable[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def query_digest(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
) -> str:
    """A renaming/reordering-insensitive content hash of a (U)CQ.

    Two queries that the engine's in-memory cache would treat as the
    same entry (equal canonical forms) receive the same digest; the
    digest is deterministic across processes and runs.
    """
    ucq = UnionOfConjunctiveQueries.of(query)
    return _sha256(sorted(repr(cq.canonical()) for cq in ucq))


def ontology_digest(rules) -> str:
    """A rule-order-insensitive content hash of a TGD program.

    Any textual change to any rule (including its label) changes the
    digest, which is exactly the conservative invalidation the
    persistent rewriting cache needs: edited ontology => recompile.
    """
    return _sha256(sorted(str(rule) for rule in rules))


def budget_digest(budget) -> str:
    """A content hash of the rewriting budget's limit fields.

    ``strict`` is excluded: it changes how budget exhaustion is
    *reported*, never which UCQ a completed run produces.
    """
    return _sha256(
        [
            f"max_depth={budget.max_depth}",
            f"max_cqs={budget.max_cqs}",
            f"max_seconds={budget.max_seconds}",
        ]
    )


@dataclass(frozen=True)
class StoredRewriting:
    """One persisted (query, rewriting) pair."""

    query: ConjunctiveQuery
    rewriting: UnionOfConjunctiveQueries
    complete: bool


class RewritingStore:
    """An in-memory map of compiled rewritings with file persistence."""

    def __init__(self):
        self._entries: dict[tuple, StoredRewriting] = {}

    def put(
        self,
        query: ConjunctiveQuery,
        rewriting: UnionOfConjunctiveQueries,
        complete: bool = True,
    ) -> None:
        """Insert or replace the rewriting stored for *query*."""
        self._entries[query.canonical()] = StoredRewriting(
            query=query, rewriting=rewriting, complete=complete
        )

    def get(self, query: ConjunctiveQuery) -> StoredRewriting | None:
        """The stored rewriting for *query* (up to renaming), or None."""
        entry = self._entries.get(query.canonical())
        obs.count("store.hits" if entry is not None else "store.misses")
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoredRewriting]:
        return iter(self._entries.values())

    def as_mapping(self) -> Mapping[tuple, StoredRewriting]:
        """Read-only view keyed by canonical query form."""
        return dict(self._entries)

    # ----------------------------------------------------------------- #
    # Persistence                                                         #
    # ----------------------------------------------------------------- #

    def save(self, path: str | Path) -> Path:
        """Write every entry to *path*; returns the path."""
        path = Path(path)
        obs.count("store.entries_saved", len(self._entries))
        blocks = [_HEADER]
        for entry in sorted(
            self._entries.values(), key=lambda e: str(e.query)
        ):
            blocks.append("## query")
            blocks.append(str(entry.query))
            blocks.append(f"## rewriting complete={entry.complete}")
            blocks.append(format_ucq(entry.rewriting))
        path.write_text("\n".join(blocks) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RewritingStore":
        """Read a store written by :meth:`save`."""
        path = Path(path)
        lines = path.read_text().splitlines()
        if not lines or lines[0].strip() != _HEADER:
            raise ReproError(f"{path} is not a repro rewriting store")
        store = cls()
        index = 1
        while index < len(lines):
            line = lines[index].strip()
            if not line:
                index += 1
                continue
            if line != "## query":
                raise ReproError(
                    f"{path}:{index + 1}: expected '## query', got {line!r}"
                )
            query = parse_query(lines[index + 1])
            marker = lines[index + 2].strip()
            if not marker.startswith("## rewriting complete="):
                raise ReproError(
                    f"{path}:{index + 3}: expected rewriting marker"
                )
            complete = marker.endswith("True")
            index += 3
            body: list[str] = []
            while index < len(lines) and not lines[index].startswith("## "):
                if lines[index].strip():
                    body.append(lines[index])
                index += 1
            rewriting = parse_ucq("\n".join(body))
            store.put(query, rewriting, complete=complete)
        obs.count("store.entries_loaded", len(store))
        return store


def precompile_workload(
    queries,
    rules,
    budget=None,
) -> RewritingStore:
    """Rewrite every query of a workload into a fresh store."""
    from repro.rewriting.rewriter import rewrite

    store = RewritingStore()
    for query in queries:
        result = rewrite(query, rules, budget)
        store.put(query, result.ucq, complete=result.complete)
    return store
