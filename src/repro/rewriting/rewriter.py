"""The UCQ rewriting engine.

Breadth-first saturation of the input UCQ under two operations:

* **piece rewriting** (:mod:`repro.rewriting.pieces`): resolve a piece
  of a CQ against a rule head and replace it with the rule body;
* **factorization**: merge unifiable atoms of a CQ, enabling rule heads
  with repeated/shared existential variables.

Newly generated CQs are minimized (core computation), deduplicated by
canonical form and -- except for factorizations, which must be kept as
intermediates for completeness -- pruned when subsumed by an already
known CQ.  The final result additionally removes subsumed disjuncts, so
the returned UCQ is a minimal sound-and-complete FO-rewriting whenever
the run completes.

On inputs that are not FO-rewritable the saturation does not terminate;
budgets turn it into an anytime procedure whose partial output is still
*sound* (every disjunct only produces certain answers).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.lang.errors import RewritingBudgetExceeded
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.minimize import minimize_cq, remove_subsumed
from repro.rewriting.pieces import factorizations, piece_rewritings
from repro.rewriting.subsume import SubsumptionFrontier


@dataclass(frozen=True)
class RewritingResult:
    """Outcome of one rewriting run.

    Attributes:
        ucq: the final (subsumption-minimized) UCQ rewriting.
        complete: True iff saturation finished within budget; when
            False the UCQ is a sound under-approximation.
        depth_reached: number of breadth-first rounds performed.
        generated: number of distinct CQs generated (after dedup).
        explored: number of CQs whose rewritings were expanded.
        per_depth: number of *new* CQs discovered at each round
            (index 0 counts the input disjuncts); this is the growth
            series used to exhibit the paper's "unbounded chain" of
            Example 2.
        lineage: canonical-key -> (parent canonical-key or None, step
            description) for every generated CQ; the provenance record
            behind :meth:`derivation_of`.
    """

    ucq: UnionOfConjunctiveQueries
    complete: bool
    depth_reached: int
    generated: int
    explored: int
    per_depth: tuple[int, ...] = field(default_factory=tuple)
    lineage: dict = field(default_factory=dict, repr=False)

    @property
    def size(self) -> int:
        """Number of disjuncts of the final rewriting."""
        return len(self.ucq)

    @property
    def max_body_atoms(self) -> int:
        """Largest disjunct body size (join width) in the rewriting."""
        return max(len(cq.body) for cq in self.ucq)

    def derivation_of(self, cq: ConjunctiveQuery) -> tuple[str, ...]:
        """The rule-application chain that produced *cq*.

        Returns step descriptions from the original query to *cq*
        (oldest first); the empty tuple for an input disjunct.  Raises
        ``KeyError`` for CQs this run never generated.
        """
        key = cq.canonical()
        if key not in self.lineage:
            raise KeyError(f"no derivation recorded for {cq}")
        steps: list[str] = []
        while True:
            parent, step = self.lineage[key]
            if parent is None:
                break
            steps.append(step)
            key = parent
        return tuple(reversed(steps))


def _parser_safe_names(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    """Rename internal ``~``-suffixed variables to clean fresh names.

    Standardizing rules apart introduces names like ``Y1~2`` that the
    concrete syntax deliberately reserves; the final rewriting is a
    user-facing artifact (printed, stored, re-parsed), so it must use
    only parser-legal names.
    """
    from repro.lang.substitution import Substitution
    from repro.lang.terms import Variable

    dirty = [v for v in cq.body_variables() if "~" in v.name or "#" in v.name]
    if not dirty:
        return cq
    taken = {v.name for v in cq.body_variables()}
    mapping: dict[Variable, Variable] = {}
    counter = 0
    for var in dirty:
        while True:
            counter += 1
            candidate = f"W{counter}"
            if candidate not in taken:
                break
        taken.add(candidate)
        mapping[var] = Variable(candidate)
    return cq.apply(Substitution(mapping))


def rewrite(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    budget: RewritingBudget | None = None,
    prune_subsumed: bool = True,
    factorize: bool = True,
    minimize: bool = True,
    minimize_workers: int | None = None,
    minimize_mode: str = "thread",
) -> RewritingResult:
    """Compute the UCQ rewriting of *query* with respect to *rules*.

    Raises :class:`RewritingBudgetExceeded` only when ``budget.strict``;
    otherwise budget exhaustion is reported via ``complete=False``.

    *minimize_workers* opts the final minimization pass into the
    parallel path (*minimize_mode* picks ``"thread"`` or
    ``"process"``); the result is identical either way.

    The ablation switches exist for the ablation benches and should
    stay at their defaults in normal use.  Redundancy elimination
    (*minimize* + *prune_subsumed*) is what makes saturation terminate
    on sets with harmless recursion: with both disabled, ever-longer
    subsumed CQs keep appearing even on the paper's SWR Example 1.
    *factorize* adds explicit atom-merging steps; the piece unifier's
    forced aggregation already covers the known factorization cases
    (the A2 ablation bench documents this redundancy), so the step is
    kept as a safety net at negligible cost.
    """
    budget = budget or RewritingBudget.default()
    deadline = (
        _time.monotonic() + budget.max_seconds
        if budget.max_seconds is not None
        else None
    )
    rules = list(rules)

    def normalize(cq: ConjunctiveQuery) -> ConjunctiveQuery:
        cq = cq.dedupe_body()
        return minimize_cq(cq) if minimize else cq

    with obs.span("rewrite", rules=len(rules)) as span:
        initial = [
            normalize(cq) for cq in UnionOfConjunctiveQueries.of(query)
        ]
        span.set(disjuncts=len(initial))

        seen: dict[tuple, ConjunctiveQuery] = {}
        lineage: dict[tuple, tuple] = {}
        # The incrementally minimal set of subsumption representatives:
        # new CQs are checked against it (covers) and evict members
        # they strictly subsume (add), so the final pass starts from an
        # already-near-minimal antichain instead of every kept CQ.
        kept = SubsumptionFrontier()
        frontier: list[ConjunctiveQuery] = []
        for cq in initial:
            key = cq.canonical()
            if key not in seen:
                seen[key] = cq
                lineage[key] = (None, "input")
                kept.add(cq)
                frontier.append(cq)


        per_depth = [len(frontier)]
        depth = 0
        explored = 0
        complete = True
        tallies = {"explored": 0, "candidates": 0, "duplicates": 0, "pruned": 0}

        while frontier:
            if budget.max_depth is not None and depth >= budget.max_depth:
                complete = False
                break
            depth += 1
            with obs.span(
                "rewrite.round", depth=depth, frontier=len(frontier)
            ) as round_span:
                next_frontier, overflow = _expand_round(
                    frontier, rules, budget, deadline, normalize,
                    factorize, prune_subsumed, seen, lineage, kept, tallies,
                )
                round_span.set(new=len(next_frontier))
            per_depth.append(len(next_frontier))
            frontier = next_frontier
            if overflow:
                complete = False
                break

        explored = tallies["explored"]
        obs.count("rewrite.candidates", tallies["candidates"])
        obs.count("rewrite.duplicates", tallies["duplicates"])
        obs.count("rewrite.subsumption_pruned", tallies["pruned"])
        obs.count("rewrite.cqs_generated", len(seen))
        obs.count("rewrite.cqs_explored", explored)
        span.set(complete=complete, depth=depth, generated=len(seen))

        if not complete and budget.strict:
            raise RewritingBudgetExceeded(
                f"rewriting exceeded budget (depth={depth}, cqs={len(seen)})",
                partial_cqs=len(seen),
                depth_reached=depth,
            )

        with obs.span("rewrite.finalize", kept=len(kept)) as fin:
            final = [
                _parser_safe_names(cq)
                for cq in remove_subsumed(
                    kept.queries(),
                    max_workers=minimize_workers,
                    mode=minimize_mode,
                    kernel=kept.kernel,
                )
            ]
            fin.set(size=len(final))
        span.set(size=len(final))
        return RewritingResult(
            ucq=UnionOfConjunctiveQueries(list(final)),
            complete=complete,
            depth_reached=depth,
            generated=len(seen),
            explored=explored,
            per_depth=tuple(per_depth),
            lineage=lineage,
        )


def _expand_round(
    frontier: list[ConjunctiveQuery],
    rules: Sequence[TGD],
    budget: RewritingBudget,
    deadline: float | None,
    normalize,
    factorize: bool,
    prune_subsumed: bool,
    seen: dict,
    lineage: dict,
    kept: SubsumptionFrontier,
    tallies: dict[str, int],
) -> tuple[list[ConjunctiveQuery], bool]:
    """One breadth-first saturation round: expand every frontier CQ.

    Mutates *seen*, *lineage*, *kept* and *tallies* in place; returns
    ``(next_frontier, overflow)`` where *overflow* signals a tripped
    time or CQ-count budget.
    """
    next_frontier: list[ConjunctiveQuery] = []
    overflow = False
    for cq in frontier:
        if deadline is not None and _time.monotonic() > deadline:
            overflow = True
            break
        tallies["explored"] += 1
        parent_key = cq.canonical()
        candidates: list[tuple[ConjunctiveQuery, bool, str]] = []
        for rule in rules:
            for step in piece_rewritings(cq, rule):
                label = rule.label or str(rule)
                candidates.append((step.query, False, f"apply {label}"))
        if factorize:
            for factored in factorizations(cq):
                candidates.append((factored, True, "factorize"))
        tallies["candidates"] += len(candidates)
        for candidate, is_factorization, step_name in candidates:
            if deadline is not None and _time.monotonic() > deadline:
                overflow = True
                break
            candidate = normalize(candidate)
            key = candidate.canonical()
            if key in seen:
                tallies["duplicates"] += 1
                continue
            if prune_subsumed and not is_factorization and kept.covers(
                candidate
            ):
                # Subsumed by an explored (or to-be-explored) more
                # general CQ; its rewritings are covered.
                tallies["pruned"] += 1
                seen[key] = candidate
                lineage[key] = (parent_key, step_name)
                continue
            seen[key] = candidate
            lineage[key] = (parent_key, step_name)
            if not is_factorization:
                kept.add(candidate)
            next_frontier.append(candidate)
            if len(seen) > budget.max_cqs:
                overflow = True
                break
        if overflow:
            break
    return next_frontier, overflow
