"""The nonrecursive-Datalog rewriting target.

The UCQ rewriting of a query w.r.t. a TGD set is worst-case exponential
because saturation multiplies the rewriting choices of every body atom
into explicit disjuncts.  Gottlob & Schwentick ("Rewriting Ontological
Queries into Small Nonrecursive Datalog Programs") observe that the
same certain answers admit a polynomial-size *nonrecursive Datalog*
presentation: give every atom's rewriting its own intermediate
predicate once, and join the intermediates instead of distributing the
union over the conjunction.

This module implements that target on top of the existing UCQ rewriter:

* every body atom of an input disjunct is abstracted to a *pattern*
  (relation, which argument places carry exported variables, local
  existentials or constants); renaming-equivalent atoms across all
  disjuncts share one pattern;
* each pattern gets an auxiliary predicate ``aux<i>`` defined by the
  (complete) UCQ rewriting of its *atomic* projection query -- one rule
  per rewritten disjunct;
* each input disjunct becomes a single *goal rule* joining its atoms'
  auxiliary predicates on the shared answer variables.

The per-atom factorization is sound **and** complete exactly when the
disjunct has no NLE variables (existential variables joining two
distinct atoms): atom-local existentials let the certain-answer
condition distribute over the conjunction, ``chase |= ∃ē ⋀ᵢ αᵢ[ā]  iff
⋀ᵢ chase |= ∃ēᵢ αᵢ[ā]``.  Disjuncts *with* NLE variables fall back to
their full UCQ rewriting, emitted as direct goal rules, so the target
is sound and complete on every input and polynomial precisely on the
blowup families (per-atom cartesian products) the estimator flags.

The emitted program is stratified by construction (goal rules read
auxiliary predicates, auxiliary rules read only base relations), so
:class:`repro.data.datalog.DatalogProgram` evaluates it bottom-up and
:func:`repro.data.sql.datalog_to_sql` compiles it to a ``WITH`` query
(one CTE per auxiliary predicate, ``UNION ALL`` over the goal rules).

Determinism: auxiliary predicates are numbered in sorted pattern
order, every rule body is put into the canonical atom order of
:meth:`~repro.lang.queries.ConjunctiveQuery.canonical_order` with
variables renamed ``V0, V1, ...``, and rules are sorted by their
printed text -- the same program bytes come out regardless of hash
seed, rule order or disjunct order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro import obs
from repro.data.database import Database
from repro.data.datalog import DatalogProgram
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.substitution import Substitution
from repro.lang.terms import Term, Variable
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite

#: A pattern cell: ("out", i) for the i-th exported slot, ("ex", j) for
#: the j-th atom-local existential, ("const", term) for a constant.
Cell = Union[Tuple[str, int], Tuple[str, Term]]

#: A pattern: (relation, cells) -- the renaming-equivalence class of an
#: atom relative to the answer variables of its disjunct.
Pattern = Tuple[str, Tuple[Cell, ...]]


@dataclass(frozen=True)
class DatalogRewriting:
    """A stratified nonrecursive-Datalog rewriting of one (U)CQ.

    Attributes:
        goal: the goal predicate; its derived facts are the answers.
        arity: the query arity (the goal predicate's arity).
        aux_rules: definitions of the shared auxiliary predicates, one
            full TGD per rewritten disjunct of an atomic pattern query.
        goal_rules: rules deriving the goal predicate -- joins of
            auxiliary predicates for factorized disjuncts, direct
            rewritten bodies for NLE-fallback disjuncts.
        complete: True iff every sub-rewriting finished within budget;
            when False the program computes a sound subset of the
            certain answers.
        depth_reached: maximum breadth-first depth over sub-rewritings.
        generated: total CQs generated across all sub-rewritings.
        fallback_disjuncts: input disjuncts that needed the full-UCQ
            fallback (had NLE variables).
    """

    goal: str
    arity: int
    aux_rules: Tuple[TGD, ...]
    goal_rules: Tuple[TGD, ...]
    complete: bool
    depth_reached: int
    generated: int
    fallback_disjuncts: int = 0

    @property
    def rules(self) -> Tuple[TGD, ...]:
        """The full program, auxiliary definitions first."""
        return self.aux_rules + self.goal_rules

    @property
    def size(self) -> int:
        """Total rule count (the Datalog analogue of UCQ disjuncts)."""
        return len(self.aux_rules) + len(self.goal_rules)

    @property
    def max_body_atoms(self) -> int:
        """Largest rule body (join width) in the program."""
        return max(len(rule.body) for rule in self.rules)

    @property
    def predicates(self) -> Tuple[str, ...]:
        """The auxiliary predicate names, in definition order."""
        seen: Dict[str, None] = {}
        for rule in self.aux_rules:
            seen.setdefault(rule.head[0].relation)
        return tuple(seen)

    def base_atoms(self) -> Tuple[Atom, ...]:
        """Every body atom over a *base* (non-intermediate) relation.

        These are the relations a SQL backend must have tables for
        before executing :meth:`to_sql` (the auxiliary and goal
        predicates are CTEs, not tables).
        """
        intermediates = set(self.predicates)
        intermediates.add(self.goal)
        seen: Dict[Atom, None] = {}
        for rule in self.rules:
            for atom in rule.body:
                if atom.relation not in intermediates:
                    seen.setdefault(atom)
        return tuple(seen)

    def program(self) -> DatalogProgram:
        """The program as an evaluable :class:`DatalogProgram`."""
        return DatalogProgram(self.rules)

    def answer(self, database: Database) -> frozenset[Tuple[Term, ...]]:
        """Certain answers over *database* via bottom-up evaluation.

        The auxiliary/goal names are fresh w.r.t. the ontology and the
        query, so the fixpoint's goal facts are exactly the derived
        answer tuples.
        """
        with obs.span(
            "datalog_target.answer", rules=self.size, goal=self.goal
        ) as span:
            result = self.program().materialize(database)
            answers = frozenset(result.instance.rows(self.goal))
            span.set(answers=len(answers), rounds=result.rounds)
        return answers

    def to_sql(self) -> str:
        """The SQL ``WITH`` (CTE) query this program compiles to."""
        from repro.data.sql import datalog_to_sql

        return datalog_to_sql(self)

    def __str__(self) -> str:
        from repro.lang.printer import format_program

        return format_program(self.rules)


def _atom_pattern(
    atom: Atom, answer_vars: frozenset[Variable]
) -> Tuple[Pattern, Tuple[Variable, ...]]:
    """The pattern of *atom* and its exported variables (slot order).

    Exported slots are numbered by first occurrence of each distinct
    answer variable, local existentials likewise; constants are kept
    verbatim.  Two atoms with equal patterns are renamings of each
    other and can share one auxiliary predicate.
    """
    out_index: Dict[Variable, int] = {}
    ex_index: Dict[Variable, int] = {}
    cells: List[Cell] = []
    for term in atom.terms:
        if isinstance(term, Variable) and term in answer_vars:
            cells.append(("out", out_index.setdefault(term, len(out_index))))
        elif isinstance(term, Variable):
            cells.append(("ex", ex_index.setdefault(term, len(ex_index))))
        else:
            cells.append(("const", term))
    return (atom.relation, tuple(cells)), tuple(out_index)


def _pattern_sort_key(pattern: Pattern) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """A total, type-stable ordering key for patterns."""
    relation, cells = pattern
    rendered = tuple(
        (kind, f"{payload:06d}" if isinstance(payload, int)
         else f"{type(payload).__name__}:{payload}")
        for kind, payload in cells
    )
    return (relation, rendered)


def _pattern_query(pattern: Pattern, name: str) -> ConjunctiveQuery:
    """The atomic projection query an auxiliary predicate rewrites.

    Exported slots become answer variables ``X0, X1, ...``, local
    existentials ``E0, E1, ...``, constants stay inline.
    """
    relation, cells = pattern
    terms: List[Term] = []
    out_count = 0
    for kind, payload in cells:
        if kind == "out":
            assert isinstance(payload, int)
            terms.append(Variable(f"X{payload}"))
            out_count = max(out_count, payload + 1)
        elif kind == "ex":
            assert isinstance(payload, int)
            terms.append(Variable(f"E{payload}"))
        else:
            assert not isinstance(payload, int)
            terms.append(payload)
    answers = [Variable(f"X{i}") for i in range(out_count)]
    return ConjunctiveQuery(answers, [Atom(relation, terms)], name=name)


def _normal_form(cq: ConjunctiveQuery, name: str) -> ConjunctiveQuery:
    """*cq* with canonical atom order and variables renamed ``V0..Vn``.

    Two CQs with equal canonical keys map to the *same* normal form,
    which is what makes the emitted program (and its SQL) byte-stable
    under hash-seed variation and input permutation.
    """
    ordered = cq.canonical_order()
    mapping: Dict[Variable, Variable] = {}

    def note(term: Term) -> None:
        if isinstance(term, Variable) and term not in mapping:
            mapping[term] = Variable(f"V{len(mapping)}")

    for term in cq.answer_terms:
        note(term)
    for atom in ordered:
        for term in atom.terms:
            note(term)
    substitution = Substitution(mapping)
    return ConjunctiveQuery(
        [substitution.apply_term(t) for t in cq.answer_terms],
        substitution.apply_atoms(ordered),
        name=name,
    )


def _fresh_prefix(
    rules: Sequence[TGD], ucq: UnionOfConjunctiveQueries
) -> str:
    """A predicate-name prefix colliding with no existing relation."""
    taken = set()
    for rule in rules:
        for atom in rule.body + rule.head:
            taken.add(atom.relation)
    for cq in ucq:
        for atom in cq.body:
            taken.add(atom.relation)
    prefix = "aux"
    while any(name.startswith(prefix) for name in taken):
        prefix += "x"
    return prefix


def rewrite_datalog(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    budget: RewritingBudget | None = None,
    *,
    minimize_workers: int | None = None,
    minimize_mode: str = "thread",
) -> DatalogRewriting:
    """Compute the nonrecursive-Datalog rewriting of *query*.

    Auxiliary predicates are shared across disjuncts by pattern, so a
    conjunction of ``n`` atoms with ``b`` rewriting choices each costs
    ``O(n * b)`` rules where the UCQ target pays ``O(b^n)`` disjuncts.
    Budget exhaustion in any sub-rewriting degrades ``complete`` to
    False; the program then computes a sound subset of the certain
    answers (each auxiliary predicate under-approximates its atom).
    """
    ucq = UnionOfConjunctiveQueries.of(query)
    budget = budget or RewritingBudget.default()
    rules = tuple(rules)
    prefix = _fresh_prefix(rules, ucq)
    goal = f"{prefix}_ans"

    with obs.span(
        "rewrite_datalog", rules=len(rules), disjuncts=len(ucq)
    ) as span:
        patterns: Dict[Pattern, None] = {}
        factorized: List[Tuple[ConjunctiveQuery, List[Tuple[Pattern, Tuple[Variable, ...]]]]] = []
        fallback: List[ConjunctiveQuery] = []
        for cq in ucq:
            cq = cq.dedupe_body()
            if cq.nle_variables():
                fallback.append(cq)
                continue
            answer_vars = frozenset(cq.answer_variables)
            entries: List[Tuple[Pattern, Tuple[Variable, ...]]] = []
            for atom in cq.body:
                pattern, outs = _atom_pattern(atom, answer_vars)
                patterns.setdefault(pattern)
                entries.append((pattern, outs))
            factorized.append((cq, entries))

        complete = True
        depth_reached = 0
        generated = 0

        # One auxiliary predicate per pattern, numbered in sorted
        # pattern order (independent of input disjunct/rule order).
        ordered_patterns = sorted(patterns, key=_pattern_sort_key)
        aux_name = {
            pattern: f"{prefix}{index}"
            for index, pattern in enumerate(ordered_patterns)
        }
        aux_rules: List[TGD] = []
        for pattern in ordered_patterns:
            name = aux_name[pattern]
            atomic = _pattern_query(pattern, name)
            sub = rewrite(
                atomic,
                rules,
                budget,
                minimize_workers=minimize_workers,
                minimize_mode=minimize_mode,
            )
            complete = complete and sub.complete
            depth_reached = max(depth_reached, sub.depth_reached)
            generated += sub.generated
            definitions = sorted(
                (_normal_form(cq, name) for cq in sub.ucq), key=str
            )
            aux_rules.extend(
                TGD(cq.body, [Atom(name, cq.answer_terms)])
                for cq in definitions
            )

        goal_bodies: List[ConjunctiveQuery] = []
        for cq, entries in factorized:
            body: List[Atom] = []
            for pattern, outs in entries:
                atom = Atom(aux_name[pattern], outs)
                if atom not in body:
                    body.append(atom)
            goal_bodies.append(
                ConjunctiveQuery(cq.answer_terms, body, name=goal)
            )
        for cq in fallback:
            sub = rewrite(
                cq,
                rules,
                budget,
                minimize_workers=minimize_workers,
                minimize_mode=minimize_mode,
            )
            complete = complete and sub.complete
            depth_reached = max(depth_reached, sub.depth_reached)
            generated += sub.generated
            goal_bodies.extend(
                ConjunctiveQuery(d.answer_terms, d.body, name=goal)
                for d in sub.ucq
            )
        normalized: Dict[str, ConjunctiveQuery] = {}
        for cq in goal_bodies:
            normal = _normal_form(cq, goal)
            normalized.setdefault(str(normal), normal)
        goal_rules = tuple(
            TGD(normalized[key].body, [Atom(goal, normalized[key].answer_terms)])
            for key in sorted(normalized)
        )

        result = DatalogRewriting(
            goal=goal,
            arity=ucq.arity,
            aux_rules=tuple(aux_rules),
            goal_rules=goal_rules,
            complete=complete,
            depth_reached=depth_reached,
            generated=generated,
            fallback_disjuncts=len(fallback),
        )
        span.set(
            rules_emitted=result.size,
            aux_predicates=len(ordered_patterns),
            fallback=len(fallback),
            complete=complete,
        )
        obs.count("datalog_target.rules_emitted", result.size)
        return result
