"""The P-node graph (Definitions 6–8): reconstruction.

The paper *defines* P-atoms (Definition 6) and P-nodes (Definition 7)
but explicitly omits the full graph construction ("For space reasons,
we do not give the detail of the definition of P-atom graph here"),
citing an unpublished manuscript [12].  This module reconstructs the
construction from the constraints the paper does give:

* nodes are P-nodes ``〈σ, Σ〉``: a canonical *P-atom* σ plus its
  *context* Σ, "the set of atoms that appear together with such atoms
  as a result of the application of a TGD" (Section 6);
* the special variable ``z`` "mark[s] the introduction of an
  existential variable in a step of the rewriting" and is "used in the
  same way in which positions of the form r[i] were used in the
  position graph";
* the compatibility condition "requires to check the context of a
  P-atom in order to establish whether such P-atom can unify with the
  head of a rule";
* edges carry four labels: ``s`` (splitting), ``m`` (missing), ``d``
  (decreasing bounded arguments), ``i`` (isolated body atom);
* Definition 8: P is WR iff no cycle contains a ``d``-edge, an
  ``m``-edge and an ``s``-edge while containing no ``i``-edge.

Reconstruction choices (each validated against the paper's examples in
the test suite and EXPERIMENTS.md):

1. **Roots.**  One generic node per head atom: ``σ = r(x1,...,xn)``
   with all-distinct canonical variables and context ``{σ}`` -- the
   refinement of the position graph's root ``r[ ]``.
2. **Compatibility.**  σ unifies position-wise with a head atom α.
   The induced term classes must satisfy: no two distinct constants;
   a class containing ``z`` contains no constant and no existential
   head variable (the trace must continue through the frontier, as
   Definition 3(ii) required ``α[i]`` distinguished); a class
   containing an existential head variable contains no constant, no
   frontier variable and no second existential variable; and -- the
   context check -- if it contains a σ-variable *shared* with other
   context atoms, each such context atom must itself be unifiable with
   some head atom of the rule (otherwise the rewriting step is
   inapplicable: aggregation of the piece is impossible).  This last
   clause is what blocks the "only apparent" recursion of Example 3.
3. **Targets.**  For each body atom β of the rule: a *generic*
   successor (no trace), one successor per existential body variable
   occurring in β (a freshly introduced unknown, marked ``z``), and --
   when σ carries ``z`` -- a *trace-continuation* successor marking
   with ``z`` the β-occurrences of the frontier variables unified with
   ``z``.  Contexts are the whole rule body under the same renaming.
4. **Labels.**  Per body atom β: ``m`` iff some frontier variable of
   the rule is missing from β (as in Definition 4, point 1d); ``d``
   iff β contains an existential body variable (the step strictly
   decreases the number of bounded arguments: a fresh unknown appears
   at an argument position); ``i`` iff β shares no variable with the
   head or the other body atoms (an isolated component).  Per
   expansion, as in Definition 4 points 2–3: ``s`` iff some
   existential body variable occurs in two or more body atoms, or the
   class of frontier variables unified with ``z`` occurs in two or
   more body atoms -- the latter is exactly the repeated-variable
   splitting that the position graph cannot see (Example 2).

Deviation from Definition 6: the canonical pool is allowed to grow to
``{z, x1, ..., xn}`` with *n* the number of distinct variables of a
node (a rule body may hold more distinct variables than the maximum
arity); the construction stays finite since every node is the
canonical image of a rule body under finitely many unifier outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.cycles import LabeledEdge, LabeledGraph
from repro.lang.atoms import Atom
from repro.lang.errors import ReproError
from repro.lang.terms import Constant, Term, Variable
from repro.lang.tgd import TGD

MISSING = "m"
SPLITTING = "s"
DECREASING = "d"
ISOLATED = "i"

#: The special trace variable of Definition 6.
Z = Variable("z")

DEFAULT_MAX_NODES = 20_000


class PNodeGraphBudgetExceeded(ReproError):
    """Raised when P-node graph construction exceeds its node budget.

    WR membership is conjectured PSPACE-complete (Section 6); the node
    space is exponential in the worst case, so construction is bounded.
    """


@dataclass(frozen=True)
class PNode:
    """A P-node ``〈σ, Σ〉`` (Definition 7), in canonical form.

    ``atom`` is σ; ``context`` is Σ (which contains σ).  Variables are
    canonically named ``x1, x2, ...`` in order of first occurrence in
    σ and then in the remaining (sorted) context atoms; the trace
    variable ``z`` is preserved.
    """

    atom: Atom
    context: frozenset[Atom]

    def __post_init__(self) -> None:
        if self.atom not in self.context:
            raise ValueError(f"σ {self.atom} must belong to its context")

    def shared_variables(self) -> frozenset[Variable]:
        """Variables of σ also occurring in another context atom."""
        shared: set[Variable] = set()
        mine = set(self.atom.variables())
        for other in self.context:
            if other == self.atom:
                continue
            shared.update(mine & set(other.variables()))
        return frozenset(shared)

    def traced(self) -> bool:
        """True iff σ carries the trace variable ``z``."""
        return Z in self.atom.variables()

    def sort_key(self) -> tuple:
        return (
            self.atom.sort_key(),
            tuple(sorted(a.sort_key() for a in self.context)),
        )

    def __str__(self) -> str:
        if len(self.context) == 1:
            return str(self.atom)
        others = ", ".join(
            str(a) for a in sorted(self.context - {self.atom})
        )
        return f"⟨{self.atom} | {others}⟩"


@dataclass(frozen=True)
class PNodeGraph:
    """The computed P-node graph together with its input rules."""

    rules: tuple[TGD, ...]
    graph: LabeledGraph

    @property
    def pnodes(self) -> tuple[PNode, ...]:
        """All nodes, in construction order."""
        return tuple(self.graph.nodes)  # type: ignore[return-value]

    @property
    def edges(self) -> tuple[LabeledEdge, ...]:
        """All labeled edges, in construction order."""
        return self.graph.edges

    def dangerous_cycle(self) -> tuple[LabeledEdge, ...] | None:
        """A cycle with ``d``, ``m`` and ``s`` edges and no ``i``-edge.

        Definition 8 forbids exactly these cycles.
        """
        return self.graph.find_labeled_cycle(
            (DECREASING, MISSING, SPLITTING), forbidden=(ISOLATED,)
        )

    def summary(self) -> str:
        """Human-readable node/edge listing (stable order)."""
        lines = [f"nodes ({len(self.graph)}):"]
        lines.extend(
            f"  {node}"
            for node in sorted(self.pnodes, key=lambda n: n.sort_key())
        )
        lines.append(f"edges ({len(self.edges)}):")
        lines.extend(
            f"  {edge}"
            for edge in sorted(
                self.edges,
                key=lambda e: (e.source.sort_key(), e.target.sort_key()),
            )
        )
        return "\n".join(lines)


def build_pnode_graph(
    rules: Sequence[TGD],
    max_nodes: int = DEFAULT_MAX_NODES,
    context_check: bool = True,
) -> PNodeGraph:
    """Construct the P-node graph of *rules* (worklist closure).

    *context_check* enables the "involved" compatibility condition of
    Section 6 (a σ-variable unified with an invented null must have
    all its context atoms consumable by the same step).  Disabling it
    exists only for the ablation bench: without the check the graph
    over-approximates rewriting steps that can never fire, and the
    paper's Example 3 is wrongly rejected.
    """
    rules = tuple(rules)
    graph = LabeledGraph()
    worklist: list[PNode] = []

    def discover(node: PNode) -> None:
        if graph.add_node(node):
            if len(graph) > max_nodes:
                raise PNodeGraphBudgetExceeded(
                    f"P-node graph exceeded {max_nodes} nodes"
                )
            worklist.append(node)

    for rule in rules:
        head_context = [
            Atom(a.relation, [Variable(f"h{i}_{j}") for j in range(a.arity)])
            for i, a in enumerate(rule.head)
        ]
        for root_atom in head_context:
            discover(_canonical_node(root_atom, head_context))

    while worklist:
        node = worklist.pop(0)
        for rule in rules:
            for head_index in range(len(rule.head)):
                _expand(node, rule, head_index, graph, discover, context_check)

    return PNodeGraph(rules=rules, graph=graph)


# --------------------------------------------------------------------- #
# Canonicalization                                                       #
# --------------------------------------------------------------------- #


def _canonical_node(sigma: Atom, context: Sequence[Atom]) -> PNode:
    """Rename (σ, Σ) to canonical variables ``x1, x2, ...`` keeping z."""
    order: dict[Variable, Variable] = {}

    def rename(term: Term) -> Term:
        if not isinstance(term, Variable) or term == Z:
            return term
        fresh = order.get(term)
        if fresh is None:
            fresh = Variable(f"x{len(order) + 1}")
            order[term] = fresh
        return fresh

    new_sigma = Atom(sigma.relation, [rename(t) for t in sigma.terms])

    def shape_key(atom: Atom) -> tuple:
        # Rename-insensitive ordering so logically equal nodes reach
        # the same canonical form regardless of pre-canonical names.
        first_seen: dict[Variable, int] = {}
        cells: list[tuple] = []
        for term in atom.terms:
            if isinstance(term, Variable) and term != Z:
                first_seen.setdefault(term, len(first_seen))
                cells.append(("v", first_seen[term]))
            elif term == Z:
                cells.append(("z",))
            else:
                cells.append(("c", str(term)))
        return (atom.relation, tuple(cells), atom.sort_key())

    rest = sorted((a for a in context if a is not sigma), key=shape_key)
    new_context = [new_sigma]
    for atom in rest:
        new_context.append(Atom(atom.relation, [rename(t) for t in atom.terms]))
    return PNode(atom=new_sigma, context=frozenset(new_context))


# --------------------------------------------------------------------- #
# Expansion                                                              #
# --------------------------------------------------------------------- #


class _Classes:
    """Union-find over the terms of σ and one head atom."""

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent == term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[left_root] = right_root

    def groups(self) -> list[set[Term]]:
        out: dict[Term, set[Term]] = {}
        for term in list(self._parent):
            out.setdefault(self.find(term), set()).add(term)
        return list(out.values())


def _expand(
    node: PNode,
    rule: TGD,
    head_index: int,
    graph,
    discover,
    context_check: bool = True,
) -> None:
    """Add the successors of *node* via one head atom of *rule*."""
    fresh = rule.rename_apart(
        set(node.atom.variables())
        | {v for a in node.context for v in a.variables()}
        | {Z}
    )
    head = fresh.head[head_index]
    sigma = node.atom
    if sigma.relation != head.relation or sigma.arity != head.arity:
        return

    classes = _Classes()
    for sigma_term, head_term in zip(sigma.terms, head.terms):
        classes.union(sigma_term, head_term)

    existential_head = set(fresh.existential_head_variables())
    frontier = set(fresh.distinguished_variables())
    shared = node.shared_variables()
    head_atoms = fresh.head

    traced_frontier: set[Variable] = set()
    for group in classes.groups():
        constants = {t for t in group if isinstance(t, Constant)}
        if len(constants) > 1:
            return
        has_z = Z in group
        group_existential = {
            t for t in group
            if isinstance(t, Variable) and t in existential_head
        }
        group_frontier = {
            t for t in group
            if isinstance(t, Variable) and t in frontier
        }
        if has_z:
            # The trace must continue through the frontier
            # (Definition 3(ii) lifted to atoms).
            if constants or group_existential:
                return
            traced_frontier |= group_frontier
        if group_existential:
            if len(group_existential) > 1:
                return  # two distinct invented nulls are never equal
            if constants or group_frontier:
                return  # a null is never a constant / frontier value
            # Context check: σ-variables unified with an invented null
            # must be consumable by the same rewriting step, i.e. every
            # context atom they appear in must unify with some head atom.
            for term in group:
                if (
                    isinstance(term, Variable)
                    and term != Z
                    and term in shared
                    and context_check
                    and not _context_consumable(node, term, head_atoms)
                ):
                    return

    # Build the frontier renaming: one canonical value per class.
    substitution: dict[Variable, Term] = {}
    for group in classes.groups():
        representative = _group_representative(group)
        for term in group:
            if isinstance(term, Variable) and term != representative:
                substitution[term] = representative

    def image(term: Term) -> Term:
        while isinstance(term, Variable) and term in substitution:
            term = substitution[term]
        return term

    existential_body = set(fresh.existential_body_variables())

    # Expansion-wide s-label (Definition 4, points 2-3, lifted).
    split = any(
        _occurrence_atoms(fresh, var) >= 2 for var in existential_body
    )
    if traced_frontier:
        trace_atoms = sum(
            1
            for beta in fresh.body
            if traced_frontier & set(beta.variables())
        )
        if trace_atoms >= 2:
            split = True

    edges: list[tuple[PNode, set[str]]] = []
    for beta in fresh.body:
        beta_vars = set(beta.variables())
        labels: set[str] = set()
        if not frontier <= beta_vars:
            labels.add(MISSING)
        if beta_vars & existential_body:
            labels.add(DECREASING)
        if _is_isolated(beta, fresh):
            labels.add(ISOLATED)

        context_atoms = [
            Atom(b.relation, [image(t) for t in b.terms]) for b in fresh.body
        ]
        beta_position = list(fresh.body).index(beta)

        # (a) generic successor: no trace.
        edges.append(
            (_target_node(context_atoms, beta_position, trace=None), labels)
        )

        # (b) one traced successor per existential body variable in β.
        for var in beta.variables():
            if var in existential_body:
                edges.append(
                    (
                        _target_node(
                            context_atoms, beta_position, trace={var}
                        ),
                        labels,
                    )
                )

        # (c) trace continuation through the frontier: mark (the images
        # of) the frontier variables that were unified with z.
        if traced_frontier:
            traced_images = {
                img
                for img in (image(v) for v in traced_frontier)
                if isinstance(img, Variable)
            }
            beta_image = context_atoms[beta_position]
            traced_here = traced_images & set(beta_image.variables())
            if traced_here:
                edges.append(
                    (
                        _target_node(
                            context_atoms, beta_position, trace=traced_here
                        ),
                        labels,
                    )
                )

    provenance = (rule.label or str(rule),)
    for target, labels in edges:
        if split:
            labels = labels | {SPLITTING}
        discover(target)
        graph.add_edge(node, target, labels, rules=provenance)


def _target_node(
    context_atoms: Sequence[Atom],
    beta_position: int,
    trace: set[Variable] | None,
) -> PNode:
    """Canonical successor node, optionally marking *trace* vars as z.

    *trace* is expressed over the variables actually occurring in
    *context_atoms* (post-substitution images): existential body
    variables are untouched by the head unification, and trace
    continuations pass the image of each traced frontier variable.
    """
    if trace:
        traced_names = {v.name for v in trace}

        def mark(term: Term) -> Term:
            if isinstance(term, Variable) and term.name in traced_names:
                return Z
            return term

        marked = [
            Atom(a.relation, [mark(t) for t in a.terms])
            for a in context_atoms
        ]
    else:
        marked = list(context_atoms)
    return _canonical_node(marked[beta_position], marked)


def _group_representative(group: set[Term]) -> Term:
    """Deterministic representative: constant, then z, then min name."""

    def rank(term: Term) -> tuple:
        if isinstance(term, Constant):
            return (0, str(term))
        assert isinstance(term, Variable)
        if term == Z:
            # z must never be the representative: generic successors
            # drop the trace, so traced positions must rename to a
            # plain variable; (c)-successors re-mark them explicitly.
            return (2, term.name)
        return (1, term.name)

    return min(group, key=rank)


def _context_consumable(
    node: PNode, variable: Variable, head_atoms: Sequence[Atom]
) -> bool:
    """Can every context atom holding *variable* join the piece?

    A context atom can join only if some head atom shares its relation
    and arity (a necessary condition for unification); otherwise the
    rewriting step that this edge would represent is inapplicable.
    """
    for atom in node.context:
        if atom == node.atom or variable not in atom.variables():
            continue
        if not any(
            h.relation == atom.relation and h.arity == atom.arity
            for h in head_atoms
        ):
            return False
    return True


def _is_isolated(beta: Atom, rule: TGD) -> bool:
    """True iff β shares no variable with the head or other body atoms."""
    mine = set(beta.variables())
    if not mine:
        return True
    others: set[Variable] = set()
    for atom in rule.body:
        if atom is not beta:
            others.update(atom.variables())
    for atom in rule.head:
        others.update(atom.variables())
    return not (mine & others)


def _occurrence_atoms(rule: TGD, var: Variable) -> int:
    """Number of body atoms of the rule in which *var* occurs."""
    return sum(1 for atom in rule.body if var in atom.variables())
