"""Graphviz DOT rendering of the position graph and P-node graph.

The benches regenerate the paper's Figures 1–3 both as text listings
and as DOT files; any Graphviz installation renders the latter with
``dot -Tpng``.  Edge labels show the accumulated label set
(``m``, ``s``, ``d``, ``i``); dangerous-cycle edges can be highlighted.
"""

from __future__ import annotations

from typing import Iterable

from repro.graphs.cycles import LabeledEdge
from repro.graphs.pnode_graph import PNodeGraph
from repro.graphs.position_graph import PositionGraph


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _render(
    name: str,
    nodes: Iterable[object],
    edges: Iterable[LabeledEdge],
    highlight: Iterable[LabeledEdge] = (),
) -> str:
    # Sort nodes and edges so the output is byte-identical regardless of
    # build/iteration order (the committed figure goldens diff cleanly).
    highlighted = {(e.source, e.target) for e in highlight}
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [shape=ellipse];']
    index: dict[object, str] = {}
    for i, node in enumerate(sorted(nodes, key=str)):
        index[node] = f"n{i}"
        lines.append(f'  n{i} [label="{_escape(str(node))}"];')
    for edge in sorted(
        edges,
        key=lambda e: (str(e.source), str(e.target), tuple(sorted(e.labels))),
    ):
        label = ",".join(sorted(edge.labels))
        attrs = [f'label="{_escape(label)}"'] if label else []
        if (edge.source, edge.target) in highlighted:
            attrs.append("color=red")
            attrs.append("penwidth=2")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(
            f"  {index[edge.source]} -> {index[edge.target]}{attr_text};"
        )
    lines.append("}")
    return "\n".join(lines)


def position_graph_to_dot(
    graph: PositionGraph, name: str = "AG", highlight_dangerous: bool = True
) -> str:
    """DOT source for a position graph (Figures 1 and 2)."""
    highlight: tuple[LabeledEdge, ...] = ()
    if highlight_dangerous:
        witness = graph.dangerous_cycle()
        if witness:
            highlight = witness
    return _render(name, graph.positions, graph.edges, highlight)


def pnode_graph_to_dot(
    graph: PNodeGraph, name: str = "PG", highlight_dangerous: bool = True
) -> str:
    """DOT source for a P-node graph (Figure 3)."""
    highlight: tuple[LabeledEdge, ...] = ()
    if highlight_dangerous:
        witness = graph.dangerous_cycle()
        if witness:
            highlight = witness
    return _render(name, graph.pnodes, graph.edges, highlight)
