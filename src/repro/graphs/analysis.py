"""Structural analysis of the paper's graphs.

A compact census used by the CLI (``graph --stats``) and by anyone
inspecting why a TGD set passed or failed an acyclicity condition:
node/edge counts, per-label edge counts, SCC structure, and which
label combinations occur *inside* cycles (the data the SWR/WR
conditions actually read).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.graphs.cycles import LabeledGraph


@dataclass(frozen=True)
class GraphCensus:
    """Structural summary of a labeled graph.

    Attributes:
        nodes: node count.
        edges: edge count.
        label_counts: label -> number of edges carrying it.
        scc_count: number of strongly connected components.
        cyclic_scc_count: SCCs containing at least one internal edge
            (i.e. participating in some cycle).
        cycle_label_sets: the distinct label-combination sets realised
            by cyclic SCCs (each is the union of labels over the SCC's
            internal edges) -- a dangerous combination appears here iff
            a dangerous cycle exists.
    """

    nodes: int
    edges: int
    label_counts: Mapping[str, int]
    scc_count: int
    cyclic_scc_count: int
    cycle_label_sets: tuple[frozenset[str], ...]

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"nodes: {self.nodes}",
            f"edges: {self.edges}",
        ]
        for label in sorted(self.label_counts):
            lines.append(f"  {label}-edges: {self.label_counts[label]}")
        lines.append(
            f"SCCs: {self.scc_count} ({self.cyclic_scc_count} cyclic)"
        )
        if self.cycle_label_sets:
            rendered = sorted(
                "{" + ",".join(sorted(labels)) + "}"
                for labels in self.cycle_label_sets
            )
            lines.append(f"labels realised on cycles: {', '.join(rendered)}")
        else:
            lines.append("labels realised on cycles: (acyclic)")
        return "\n".join(lines)


def reachable(
    graph: LabeledGraph, roots: Iterable[Hashable]
) -> frozenset[Hashable]:
    """Nodes reachable from *roots* by directed edges (roots included).

    Roots absent from the graph are kept in the result (reachability
    from a node is reflexive) but contribute no edges.  Used by
    ``repro check``'s dead-rule analysis: positions reachable in
    ``AG(P)`` from the workload's query positions are exactly the ones
    a rewriting step can ever visit.
    """
    seen: set[Hashable] = set()
    queue: deque[Hashable] = deque()
    for root in roots:
        if root not in seen:
            seen.add(root)
            queue.append(root)
    while queue:
        node = queue.popleft()
        if node not in graph:
            continue
        for successor in graph.successors(node):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return frozenset(seen)


def census(graph: LabeledGraph) -> GraphCensus:
    """Compute the :class:`GraphCensus` of *graph*."""
    label_counts: dict[str, int] = {}
    for edge in graph.edges:
        for label in edge.labels:
            label_counts[label] = label_counts.get(label, 0) + 1

    nxg = graph.to_networkx()
    cyclic_label_sets: list[frozenset[str]] = []
    scc_count = 0
    cyclic = 0
    for component in nx.strongly_connected_components(nxg):
        scc_count += 1
        internal = [
            nxg[s][t]["labels"]
            for s, t in nxg.edges(component)
            if t in component
        ]
        if internal:
            cyclic += 1
            cyclic_label_sets.append(frozenset().union(*internal))

    return GraphCensus(
        nodes=len(graph),
        edges=len(graph.edges),
        label_counts=label_counts,
        scc_count=scc_count,
        cyclic_scc_count=cyclic,
        cycle_label_sets=tuple(sorted(cyclic_label_sets, key=sorted)),
    )
