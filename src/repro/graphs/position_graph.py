"""The position graph ``AG(P)`` (Definitions 2–4 of the paper).

Nodes are positions ``r[ ]`` (generic) and ``r[i]`` (specific); an edge
``σ -> σ'`` abstracts one query-rewriting step transforming an atom
whose shape is described by ``σ`` into a body atom described by ``σ'``.
Labels record dangerous behaviours of the step:

* ``m`` ("missing"): some distinguished variable of the applied TGD is
  missing from the body atom, so the rewriting step *loses* a binding;
* ``s`` ("splitting"): the traced existential variable occurs in two or
  more body atoms, so the rewriting step *splits* an unknown into a
  join.

The construction follows Definition 4 literally.  It is specified for
*simple* TGDs; on non-simple input (repeated variables or constants)
the same induction still runs -- ``Pos(x, β)`` simply returns every
position of ``x`` -- which is exactly how the paper's Example 2 uses
the position graph "nonetheless" to exhibit its failure mode.
Multi-atom heads are outside the definition and rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.cycles import LabeledEdge, LabeledGraph
from repro.lang.atoms import Atom, Position
from repro.lang.errors import NotSupportedError
from repro.lang.terms import Variable
from repro.lang.tgd import TGD

MISSING = "m"
SPLITTING = "s"


@dataclass(frozen=True)
class PositionGraph:
    """The computed position graph together with its input rules."""

    rules: tuple[TGD, ...]
    graph: LabeledGraph

    @property
    def positions(self) -> tuple[Position, ...]:
        """All nodes (positions), in construction order."""
        return tuple(self.graph.nodes)  # type: ignore[return-value]

    @property
    def edges(self) -> tuple[LabeledEdge, ...]:
        """All labeled edges, in construction order."""
        return self.graph.edges

    def m_edges(self) -> tuple[LabeledEdge, ...]:
        """Edges labeled ``m``."""
        return self.graph.edges_with_label(MISSING)

    def s_edges(self) -> tuple[LabeledEdge, ...]:
        """Edges labeled ``s``."""
        return self.graph.edges_with_label(SPLITTING)

    def dangerous_cycle(self) -> tuple[LabeledEdge, ...] | None:
        """A cycle with both an ``m``-edge and an ``s``-edge, or None.

        Definition 5 forbids exactly these cycles.
        """
        return self.graph.find_labeled_cycle((MISSING, SPLITTING))

    def summary(self) -> str:
        """Human-readable node/edge listing (stable order)."""
        lines = [f"nodes ({len(self.graph)}):"]
        lines.extend(f"  {node}" for node in sorted(
            self.positions, key=lambda p: p.sort_key()
        ))
        lines.append(f"edges ({len(self.edges)}):")
        lines.extend(
            f"  {edge}"
            for edge in sorted(
                self.edges,
                key=lambda e: (e.source.sort_key(), e.target.sort_key()),
            )
        )
        return "\n".join(lines)


def r_compatible(head: Atom, position: Position) -> bool:
    """R-compatibility (Definition 3) of a rule head with a position.

    ``r[ ]`` requires only matching relation; ``r[i]`` additionally
    requires the head's *i*-th argument to be a distinguished variable
    of the rule -- checked by the caller, which knows the rule.  This
    helper checks the structural part (relation and position range).
    """
    if head.relation != position.relation:
        return False
    if position.index is None:
        return True
    return 1 <= position.index <= head.arity


def build_position_graph(rules: Sequence[TGD]) -> PositionGraph:
    """Construct ``AG(P)`` per Definition 4 (worklist closure)."""
    rules = tuple(rules)
    for rule in rules:
        if len(rule.head) != 1:
            raise NotSupportedError(
                f"position graph requires single-atom heads; {rule} has "
                f"{len(rule.head)}"
            )
    graph = LabeledGraph()
    worklist: list[Position] = []

    def discover(position: Position) -> None:
        if graph.add_node(position):
            worklist.append(position)

    # Base case: one generic node per rule-head relation.
    for rule in rules:
        discover(Position(rule.single_head().relation))

    # Inductive case: expand each node against every compatible rule.
    while worklist:
        sigma = worklist.pop(0)
        for rule in rules:
            _expand(sigma, rule, graph, discover)

    return PositionGraph(rules=rules, graph=graph)


def _expand(sigma: Position, rule: TGD, graph: LabeledGraph, discover) -> None:
    """Apply Definition 4 points 1–3 for one (node, rule) pair."""
    head = rule.single_head()
    if not r_compatible(head, sigma):
        return
    distinguished = set(rule.distinguished_variables())
    traced: Variable | None = None
    if sigma.index is not None:
        term = head[sigma.index]
        # Definition 3(ii): α[i] must be a distinguished variable.
        if not isinstance(term, Variable) or term not in distinguished:
            return
        traced = term

    existential_body = set(rule.existential_body_variables())
    edges_added: list[tuple[Position, Position]] = []

    for beta in rule.body:
        edges_for_beta: list[tuple[Position, Position]] = []

        # (1a) generic edge to the body atom's relation.
        target = Position(beta.relation)
        edges_for_beta.append((sigma, target))

        # (1b) one edge per position of each existential body variable.
        for var in beta.variables():
            if var in existential_body:
                for index in beta.positions_of(var):
                    edges_for_beta.append(
                        (sigma, Position(beta.relation, index))
                    )

        # (1c) trace the distinguished variable at σ's position into β.
        if traced is not None:
            for index in beta.positions_of(traced):
                edges_for_beta.append((sigma, Position(beta.relation, index)))

        # (1d) m-label when β misses a distinguished variable of R.
        beta_vars = set(beta.variables())
        missing = not distinguished <= beta_vars
        provenance = (rule.label or str(rule),)
        for source, dest in edges_for_beta:
            discover(dest)
            graph.add_edge(
                source, dest, (MISSING,) if missing else (), rules=provenance
            )
        edges_added.extend(edges_for_beta)

    # (2) s-label everywhere when an existential body variable occurs
    #     in two or more body atoms.
    split = any(
        _occurrence_atoms(rule, var) >= 2 for var in existential_body
    )
    # (3) s-label everywhere when the traced variable occurs in two or
    #     more body atoms.
    if traced is not None and _occurrence_atoms(rule, traced) >= 2:
        split = True
    if split:
        for source, dest in edges_added:
            graph.add_labels(source, dest, (SPLITTING,))


def _occurrence_atoms(rule: TGD, var: Variable) -> int:
    """Number of *body atoms* of the rule in which *var* occurs."""
    return sum(1 for atom in rule.body if var in atom.variables())
