"""Graph encodings of TGD sets: the paper's core contribution.

Two structures (Section 4):

* the **position graph** ``AG(P)`` (Definitions 2–4), whose nodes are
  positions ``r[i]`` / ``r[ ]`` and whose ``m``/``s`` edge labels track
  "missing" distinguished variables and "splitting" existential
  variables along query-rewriting steps; and
* the **P-node graph** (Definitions 6–7; full definition reconstructed,
  see :mod:`repro.graphs.pnode_graph`), whose nodes pair a canonical
  *P-atom* with its generating context and whose edges carry the four
  labels ``s``, ``m``, ``d``, ``i``.

Both support the labeled-cycle analysis (:mod:`repro.graphs.cycles`)
that underlies the SWR (Definition 5) and WR (Definition 8) acyclicity
conditions, and can be rendered to Graphviz DOT
(:mod:`repro.graphs.dot`).
"""

from repro.graphs.analysis import GraphCensus, census, reachable
from repro.graphs.cycles import LabeledEdge, LabeledGraph
from repro.graphs.dot import pnode_graph_to_dot, position_graph_to_dot
from repro.graphs.pnode_graph import PNode, PNodeGraph, build_pnode_graph
from repro.graphs.position_graph import PositionGraph, build_position_graph

__all__ = [
    "GraphCensus",
    "LabeledEdge",
    "LabeledGraph",
    "PNode",
    "PNodeGraph",
    "PositionGraph",
    "build_pnode_graph",
    "census",
    "reachable",
    "build_position_graph",
    "pnode_graph_to_dot",
    "position_graph_to_dot",
]
