"""Labeled directed graphs and dangerous-cycle detection.

Both the position graph and the P-node graph reduce FO-rewritability to
the *absence of cycles carrying certain label combinations* (a cycle
with both an ``m``-edge and an ``s``-edge for SWR; a cycle with ``d``,
``m`` and ``s`` edges and no ``i``-edge for WR).  A cycle here is a
closed walk; since any two edges inside one strongly connected
component lie on a common closed walk, the existence question reduces
to: *is there an SCC (of the graph with forbidden-labeled edges
removed) whose internal edges jointly cover all required labels?*

:class:`LabeledGraph` stores label sets per edge (labels accumulate
when an edge is derived several ways, matching ``L : E -> 2^{m,s}`` of
Definition 4) and implements the SCC-based check together with witness
extraction (an explicit closed walk through one edge per required
label).

Witness extraction is deterministic: SCCs and their internal edges are
visited in sorted order (by node/edge string keys, never by hash order)
and the stitched closed walk is normalised to its lexicographically
smallest rotation, so the same graph always yields the same witness —
regardless of ``PYTHONHASHSEED``.  Rendered artifacts built on top of
the witness (``examples/figure3_pnode_graph.dot``) are therefore
byte-stable across regenerations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

import networkx as nx


def _edge_sort_key(
    edge: tuple[Hashable, Hashable, frozenset[str]],
) -> tuple[str, str, tuple[str, ...]]:
    """A hash-seed-independent total order on (source, target, labels)."""
    source, target, labels = edge
    return (str(source), str(target), tuple(sorted(labels)))


def _sorted_components(
    graph: nx.DiGraph,
) -> list[set[Hashable]]:
    """Cycle-capable SCCs ordered by their smallest member's string key.

    Singleton components without a self-loop cannot contain a closed
    walk, so they are dropped before the (string-keyed) sort -- on
    acyclic graphs this skips the sort entirely.
    """
    candidates = [
        component
        for component in nx.strongly_connected_components(graph)
        if len(component) > 1
        or graph.has_edge(next(iter(component)), next(iter(component)))
    ]
    return sorted(
        candidates,
        key=lambda component: min(str(node) for node in component),
    )


def _tarjan_components(
    nodes: Iterable[Hashable],
    edges: dict[tuple[Hashable, Hashable], set[str]],
) -> list[set[Hashable]]:
    """Strongly connected components, no networkx.

    An iterative Tarjan over plain dicts: for the tiny graphs of the
    acyclicity checks, skipping the networkx graph construction and
    dispatch overhead is a measurable win.  Deterministic given the
    (insertion-ordered) node and edge dicts.
    """
    successors: dict[Hashable, list[Hashable]] = {
        node: [] for node in nodes
    }
    for source, target in edges:
        successors[source].append(target)

    index: dict[Hashable, int] = {}
    low: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    components: list[set[Hashable]] = []
    counter = 0

    for root in successors:
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work: list[tuple[Hashable, Iterator[Hashable]]] = [
            (root, iter(successors[root]))
        ]
        while work:
            node, remaining = work[-1]
            pushed = False
            for successor in remaining:
                if successor not in index:
                    index[successor] = low[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(successors[successor])))
                    pushed = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if pushed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: set[Hashable] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _internal_edges(
    graph: nx.DiGraph, component: set[Hashable]
) -> list[tuple[Hashable, Hashable, frozenset[str]]]:
    """Edges with both endpoints in *component*, deterministically sorted."""
    internal = [
        (s, t, graph[s][t]["labels"])
        for s, t in graph.edges(component)
        if t in component
    ]
    internal.sort(key=_edge_sort_key)
    return internal


def _smallest_rotation(
    walk: tuple["LabeledEdge", ...],
) -> tuple["LabeledEdge", ...]:
    """Rotate a closed walk to its lexicographically smallest form.

    A closed walk has no distinguished start; pinning the rotation makes
    the witness a canonical representative of its cycle.
    """
    if len(walk) <= 1:
        return walk

    def key(rotated: tuple[LabeledEdge, ...]) -> tuple:
        return tuple(
            _edge_sort_key((e.source, e.target, e.labels)) for e in rotated
        )

    rotations = (
        walk[i:] + walk[:i] for i in range(len(walk))
    )
    return min(rotations, key=key)


@dataclass(frozen=True)
class LabeledEdge:
    """One directed edge with its accumulated label set."""

    source: Hashable
    target: Hashable
    labels: frozenset[str]

    def __str__(self) -> str:
        labels = ",".join(sorted(self.labels)) if self.labels else "∅"
        return f"{self.source} -[{labels}]-> {self.target}"


class LabeledGraph:
    """A directed graph whose edges carry sets of string labels.

    Each edge additionally accumulates *rule provenance*: the labels of
    the rules whose expansion produced it.  Provenance lives in a side
    table so :class:`LabeledEdge` equality stays purely structural;
    query it with :meth:`rules_of`.
    """

    def __init__(self) -> None:
        self._nodes: dict[Hashable, None] = {}
        self._edges: dict[tuple[Hashable, Hashable], set[str]] = {}
        self._edge_rules: dict[tuple[Hashable, Hashable], set[str]] = {}
        self._nx_cache: nx.DiGraph | None = None

    # ----------------------------------------------------------------- #
    # Construction                                                       #
    # ----------------------------------------------------------------- #

    def add_node(self, node: Hashable) -> bool:
        """Insert *node*; return True iff it was new."""
        if node in self._nodes:
            return False
        self._nodes[node] = None
        return True

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        labels: Iterable[str] = (),
        rules: Iterable[str] = (),
    ) -> None:
        """Insert the edge, accumulating *labels* onto any existing ones.

        *rules* names the rule(s) whose expansion produced this edge;
        they accumulate the same way labels do.
        """
        self.add_node(source)
        self.add_node(target)
        self._edges.setdefault((source, target), set()).update(labels)
        if rules:
            self._edge_rules.setdefault((source, target), set()).update(rules)
        self._nx_cache = None

    def add_labels(
        self, source: Hashable, target: Hashable, labels: Iterable[str]
    ) -> None:
        """Add labels to an existing edge (error if absent)."""
        key = (source, target)
        if key not in self._edges:
            raise KeyError(f"no edge {source} -> {target}")
        self._edges[key].update(labels)
        self._nx_cache = None

    # ----------------------------------------------------------------- #
    # Inspection                                                         #
    # ----------------------------------------------------------------- #

    @property
    def nodes(self) -> tuple[Hashable, ...]:
        """All nodes, in insertion order."""
        return tuple(self._nodes)

    @property
    def edges(self) -> tuple[LabeledEdge, ...]:
        """All edges with their label sets, in insertion order."""
        return tuple(
            LabeledEdge(source, target, frozenset(labels))
            for (source, target), labels in self._edges.items()
        )

    def labels(self, source: Hashable, target: Hashable) -> frozenset[str]:
        """Label set of an edge (empty frozenset when absent)."""
        return frozenset(self._edges.get((source, target), ()))

    def rules_of(self, source: Hashable, target: Hashable) -> frozenset[str]:
        """Rule provenance of an edge (empty frozenset when unknown)."""
        return frozenset(self._edge_rules.get((source, target), ()))

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        """True iff the directed edge is present."""
        return (source, target) in self._edges

    def successors(self, node: Hashable) -> tuple[Hashable, ...]:
        """Targets of edges out of *node*, in insertion order."""
        return tuple(t for (s, t) in self._edges if s == node)

    def edges_with_label(self, label: str) -> tuple[LabeledEdge, ...]:
        """All edges whose label set contains *label*."""
        return tuple(e for e in self.edges if label in e.labels)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def to_networkx(self) -> nx.DiGraph:
        """Export to a networkx DiGraph with a ``labels`` edge attribute."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._nodes)
        for (source, target), labels in self._edges.items():
            graph.add_edge(source, target, labels=frozenset(labels))
        return graph

    def _full_view(self) -> nx.DiGraph:
        """A cached networkx view of the whole graph.

        Rebuilt lazily after mutation; shared by every cycle query
        without a *forbidden* filter, which is the hot path of the
        acyclicity checks.
        """
        if self._nx_cache is None:
            self._nx_cache = self.to_networkx()
        return self._nx_cache

    # ----------------------------------------------------------------- #
    # Dangerous-cycle analysis                                           #
    # ----------------------------------------------------------------- #

    def find_labeled_cycle(
        self,
        required: Iterable[str],
        forbidden: Iterable[str] = (),
    ) -> tuple[LabeledEdge, ...] | None:
        """A closed walk covering every *required* label, or None.

        Edges carrying any *forbidden* label are excluded entirely
        (walking them would place a forbidden label on the cycle).
        The witness is returned as the edge sequence of a closed walk;
        ``None`` means no such cycle exists.
        """
        required = list(dict.fromkeys(required))
        forbidden_set = set(forbidden)
        if forbidden_set:
            edges = {
                key: labels
                for key, labels in self._edges.items()
                if not labels & forbidden_set
            }
        else:
            edges = self._edges

        # A covering cycle needs every required label on some allowed
        # edge; a label present nowhere rules the cycle out before any
        # component analysis (datalog programs have no special edges).
        for label in required:
            if not any(label in labels for labels in edges.values()):
                return None

        # Components and covering edges come from a pure-dict Tarjan
        # pass; the (comparatively expensive) networkx view is built
        # only when a witness actually needs stitching.  On acyclic
        # graphs -- the hot path of the acyclicity checks -- no
        # networkx graph is materialised at all.
        components = [
            component
            for component in _tarjan_components(self._nodes, edges)
            if len(component) > 1
            or (next(iter(component)),) * 2 in edges
        ]
        components.sort(
            key=lambda component: min(str(node) for node in component)
        )
        for component in components:
            internal = [
                (source, target, frozenset(labels))
                for (source, target), labels in edges.items()
                if source in component and target in component
            ]
            internal.sort(key=_edge_sort_key)
            if not internal:
                continue
            covering: list[tuple[Hashable, Hashable, frozenset[str]]] = []
            satisfied = True
            for label in required:
                edge = next(
                    (e for e in internal if label in e[2]), None
                )
                if edge is None:
                    satisfied = False
                    break
                covering.append(edge)
            if not required:
                covering = [internal[0]]
            if satisfied:
                if not forbidden_set:
                    allowed = self._full_view()
                else:
                    allowed = nx.DiGraph()
                    allowed.add_nodes_from(self._nodes)
                    for (source, target), labels in edges.items():
                        allowed.add_edge(
                            source, target, labels=frozenset(labels)
                        )
                return self._stitch_walk(allowed, covering)
        return None

    def has_labeled_cycle(
        self, required: Iterable[str], forbidden: Iterable[str] = ()
    ) -> bool:
        """True iff :meth:`find_labeled_cycle` would return a witness."""
        return self.find_labeled_cycle(required, forbidden) is not None

    def find_minimal_labeled_cycle(
        self,
        required: Iterable[str],
        forbidden: Iterable[str] = (),
        max_candidates_per_label: int = 8,
        max_combinations: int = 64,
    ) -> tuple[LabeledEdge, ...] | None:
        """The shortest witness cycle found, or None.

        :meth:`find_labeled_cycle` returns the *first* witness it can
        stitch; diagnostics want the *smallest* one so the offending
        rules stand out.  This variant enumerates (a bounded number of)
        covering-edge choices across every satisfying SCC and keeps the
        shortest stitched closed walk.  The bound makes it a best-effort
        minimization: the result is always a valid witness, and is never
        longer than the default one.
        """
        required = list(dict.fromkeys(required))
        forbidden_set = set(forbidden)
        if not forbidden_set:
            allowed = self._full_view()
        else:
            allowed = nx.DiGraph()
            allowed.add_nodes_from(self._nodes)
            for (source, target), labels in self._edges.items():
                if labels & forbidden_set:
                    continue
                allowed.add_edge(source, target, labels=frozenset(labels))

        import itertools

        best: tuple[LabeledEdge, ...] | None = None
        best_key: tuple | None = None
        for component in _sorted_components(allowed):
            internal = _internal_edges(allowed, component)
            if not internal:
                continue
            per_label: list[list[tuple[Hashable, Hashable, frozenset[str]]]] = []
            satisfied = True
            for label in required:
                candidates = [e for e in internal if label in e[2]]
                if not candidates:
                    satisfied = False
                    break
                per_label.append(candidates[:max_candidates_per_label])
            if not satisfied:
                continue
            if not required:
                per_label = [[internal[0]]]
            combos = itertools.islice(
                itertools.product(*per_label), max_combinations
            )
            for covering in combos:
                try:
                    walk = self._stitch_walk(allowed, list(covering))
                except nx.NetworkXNoPath:  # pragma: no cover - same SCC
                    continue
                walk_key = (
                    len(walk),
                    tuple(
                        _edge_sort_key((e.source, e.target, e.labels))
                        for e in walk
                    ),
                )
                if best_key is None or walk_key < best_key:
                    best = walk
                    best_key = walk_key
        return best

    def _stitch_walk(
        self,
        graph: nx.DiGraph,
        covering: Sequence[tuple[Hashable, Hashable, frozenset[str]]],
    ) -> tuple[LabeledEdge, ...]:
        """Join the covering edges into one closed walk via SCC paths."""
        walk: list[LabeledEdge] = []
        distinct: list[tuple[Hashable, Hashable, frozenset[str]]] = []
        for edge in covering:
            if edge not in distinct:
                distinct.append(edge)
        for i, (source, target, labels) in enumerate(distinct):
            walk.append(LabeledEdge(source, target, labels))
            next_source = distinct[(i + 1) % len(distinct)][0]
            path = nx.shortest_path(graph, target, next_source)
            for a, b in zip(path, path[1:]):
                walk.append(LabeledEdge(a, b, graph[a][b]["labels"]))
        return _smallest_rotation(tuple(walk))
