"""Bounded-queue request admission with graceful shedding.

The server executes queries on a pool of ``workers`` threads; up to
``queue_depth`` further requests may wait their turn.  Anything beyond
``workers + queue_depth`` concurrent requests is *shed* immediately
with 429 + ``Retry-After`` rather than queued unboundedly -- under
overload a bounded system degrades to fast, honest rejections instead
of building a latency cliff every client times out inside anyway.

One :class:`AdmissionController` guards one server.  It is written
against threads, not the event loop: tickets are released from
``concurrent.futures`` done-callbacks (executor threads), so all state
lives under a lock.  Every transition is counted on the ``serve.*``
counters (see ``docs/serving.md`` for the catalogue):

* ``serve.admitted`` / ``serve.shed`` -- admission decisions;
* ``serve.completed`` / ``serve.errors`` -- terminal outcomes;
* ``serve.deadline_exceeded`` -- requests that hit their deadline
  (the worker still finishes and releases its slot; the client got
  504 early);
* ``serve.inflight`` -- gauge (histogram observations) of concurrent
  admitted requests.
"""

from __future__ import annotations

import threading
import time

from repro import obs


class AdmissionTicket:
    """One admitted request's slot; release exactly once."""

    __slots__ = ("_controller", "_released", "_started")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False
        self._started = time.perf_counter()

    def release(self, *, error: bool = False) -> None:
        """Give the slot back (idempotent); *error* marks a failed run."""
        if self._released:
            return
        self._released = True
        elapsed = time.perf_counter() - self._started
        self._controller._release(elapsed, error=error)


class AdmissionController:
    """Thread-safe admit/shed gate with ``workers + queue_depth`` capacity."""

    def __init__(self, workers: int, queue_depth: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.workers = workers
        self.queue_depth = queue_depth
        self.capacity = workers + queue_depth
        self._lock = threading.Lock()
        self._inflight = 0
        self._admitted = 0
        self._shed = 0
        self._completed = 0
        self._errors = 0
        self._deadline_exceeded = 0
        # EWMA of request service time, seeding Retry-After with how
        # long a queue slot actually takes to free up.
        self._ewma_seconds = 0.05

    def try_admit(self) -> AdmissionTicket | None:
        """A ticket when a slot is free, else None (request is shed)."""
        with self._lock:
            if self._inflight >= self.capacity:
                self._shed += 1
                obs.count("serve.shed")
                return None
            self._inflight += 1
            self._admitted += 1
            obs.count("serve.admitted")
            obs.observe("serve.inflight", self._inflight)
            return AdmissionTicket(self)

    def _release(self, elapsed: float, *, error: bool) -> None:
        with self._lock:
            self._inflight -= 1
            if error:
                self._errors += 1
                obs.count("serve.errors")
            else:
                self._completed += 1
                obs.count("serve.completed")
            self._ewma_seconds += 0.2 * (elapsed - self._ewma_seconds)
            obs.observe("serve.inflight", self._inflight)

    def record_deadline_exceeded(self) -> None:
        """Count a request that outran its deadline (slot still held)."""
        with self._lock:
            self._deadline_exceeded += 1
        obs.count("serve.deadline_exceeded")

    def retry_after_seconds(self) -> int:
        """The ``Retry-After`` hint for shed requests (whole seconds).

        A full queue drains one slot per completed request, so the
        expected wait is roughly one smoothed service time; rounded up
        to at least 1 second, which is the resolution HTTP gives us.
        """
        with self._lock:
            return max(1, int(self._ewma_seconds + 0.999))

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def stats(self) -> dict[str, int]:
        """A point-in-time snapshot of all admission counters."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "workers": self.workers,
                "queue_depth": self.queue_depth,
                "inflight": self._inflight,
                "admitted": self._admitted,
                "shed": self._shed,
                "completed": self._completed,
                "errors": self._errors,
                "deadline_exceeded": self._deadline_exceeded,
            }
