"""Async query-serving layer: the ``repro serve`` HTTP/JSON front end.

The paper's architecture compiles a query once and pushes evaluation
down to a DBMS; this package is the layer that makes that story hold
under real concurrent traffic.  It wires four pieces over the
:class:`~repro.api.Session` machinery:

* :mod:`repro.serve.http` -- a minimal asyncio HTTP/1.1 codec (no
  external dependencies; stdlib only);
* :mod:`repro.serve.admission` -- bounded-queue request admission with
  graceful shedding (429 + ``Retry-After``) and the ``serve.*``
  counters;
* :mod:`repro.serve.tenants` -- per-tenant ontology isolation: one
  session (engine + caches + backend) per tenant, LRU-bounded, with
  persistent-cache eviction on tenant removal;
* :mod:`repro.serve.server` -- the :class:`ReproServer` event loop
  tying them together, plus :class:`BackgroundServer` for tests and
  the load harness.

Compilation stays single-flight process-wide: concurrent cold requests
for one (query, target) collapse onto the one compilation the engine's
inflight locking already provides, and a restarted server warms its
in-memory tier from the persistent SQLite cache before accepting
traffic (:meth:`repro.api.Session.warm_up`).  ``docs/serving.md`` has
the deployment guide and counter catalogue.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionController, AdmissionTicket
from repro.serve.server import BackgroundServer, ReproServer, ServeConfig
from repro.serve.tenants import TenantRegistry

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "BackgroundServer",
    "ReproServer",
    "ServeConfig",
    "TenantRegistry",
]
