"""The asyncio HTTP server tying admission, tenants and sessions together.

Request lifecycle of ``POST /v1/query``::

    admit ──> executor thread ──> Session.prepare (single-flight) ──> answer
      │                │
      │ full           │ deadline passed
      ▼                ▼
    429 + Retry-After  504 (worker finishes; slot released at completion)

Design points worth naming:

* **Admission before execution.**  The executor has ``workers``
  threads; the admission controller caps concurrent requests at
  ``workers + queue_depth``, so at most ``queue_depth`` requests are
  ever parked in the executor's internal queue and everything beyond
  that is shed immediately with an honest ``Retry-After``.
* **Deadlines do not free slots early.**  A request that outruns
  ``deadline_seconds`` gets its 504 immediately (``asyncio.wait_for``),
  but the worker thread cannot be interrupted mid-rewriting -- the
  ticket is released from the ``concurrent.futures`` done-callback
  when the thread actually finishes, keeping the capacity accounting
  truthful under overload.
* **One budget per server, not per request.**  The server deadline is
  mapped onto the rewriting budget *once* at boot
  (:meth:`EngineOptions.with_deadline`); per-request budgets would
  fragment the persistent cache key space (the budget digest is part
  of every key) and defeat warm serving.
* **Compilation is single-flight process-wide** via the engine's
  inflight locking; the server adds nothing and relies on the pinned
  contract (see ``tests/api/test_single_flight_stress.py``).

:class:`BackgroundServer` runs the event loop on a daemon thread for
tests and the closed-loop load harness in
``benchmarks/bench_serving_load.py``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.api.options import EngineOptions
from repro.api.session import Session
from repro.lang.errors import ReproError
from repro.serve.admission import AdmissionController
from repro.serve.http import (
    HttpError,
    Request,
    encode_response,
    read_request,
)
from repro.serve.tenants import TenantRegistry

_QUERY_BACKENDS = ("memory", "sql")


def _maintenance_summary(maintained: Any) -> dict[str, Any]:
    """JSON shape of a :class:`~repro.hybrid.MaintenanceResult`.

    ``{"maintained": false}`` when no hybrid core is materialized for
    the tenant (the mutation still updated the virtual ABox and the
    SQL backend).
    """
    if maintained is None:
        return {"maintained": False}
    return {
        "maintained": True,
        "added": len(maintained.added),
        "removed": len(maintained.removed),
        "full_rechase": maintained.full_rechase,
        "rounds": maintained.rounds,
        "firings": maintained.firings,
    }


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` configures, in one value."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 4
    queue_depth: int = 16
    deadline_seconds: float | None = None
    max_tenants: int = 8
    options: EngineOptions = field(default_factory=EngineOptions)

    def effective_options(self) -> EngineOptions:
        """Engine options with the server deadline folded into the budget."""
        return self.options.with_deadline(self.deadline_seconds)


class ReproServer:
    """The serving front end over a :class:`TenantRegistry`."""

    def __init__(self, registry: TenantRegistry, config: ServeConfig) -> None:
        self.registry = registry
        self.config = config
        self.admission = AdmissionController(
            config.workers, config.queue_depth
        )
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.base_events.Server | None = None
        self.port: int | None = None
        # Test/bench hook: runs inside the worker thread before the
        # query executes -- lets the harness hold slots deterministically.
        self._before_execute: Callable[[], None] | None = None

    # ----------------------------------------------------------------- #
    # Lifecycle                                                           #
    # ----------------------------------------------------------------- #

    async def start(self) -> None:
        """Bind and start accepting; sets :attr:`port` (actual port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        obs.event(
            "serve.started",
            host=self.config.host,
            port=self.port,
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True)
        self.registry.close()
        obs.event("serve.stopped")

    # ----------------------------------------------------------------- #
    # Connection handling                                                 #
    # ----------------------------------------------------------------- #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    writer.write(
                        encode_response(
                            error.status,
                            {"error": error.message},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> bytes:
        obs.count("serve.requests")
        try:
            if request.method == "GET" and request.path == "/healthz":
                return self._healthz(request)
            if request.method == "GET" and request.path == "/v1/stats":
                return self._stats(request)
            if request.method == "POST" and request.path == "/v1/query":
                return await self._query(request)
            if request.method == "POST" and request.path == "/v1/mutate":
                return await self._mutate(request)
            if request.method == "POST" and request.path == "/v1/tenants":
                return self._register_tenant(request)
            if request.method == "DELETE" and request.path.startswith(
                "/v1/tenants/"
            ):
                return self._remove_tenant(request)
            return encode_response(
                404,
                {"error": f"no route for {request.method} {request.path}"},
                keep_alive=request.keep_alive,
            )
        except HttpError as error:
            return encode_response(
                error.status,
                {"error": error.message},
                keep_alive=request.keep_alive,
            )
        except ReproError as error:
            return encode_response(
                400, {"error": str(error)}, keep_alive=request.keep_alive
            )
        except Exception as error:  # noqa: BLE001 - a request never kills the server
            obs.count("serve.errors")
            obs.event("serve.internal_error", error=str(error))
            return encode_response(
                500,
                {"error": f"internal error: {error}"},
                keep_alive=request.keep_alive,
            )

    # ----------------------------------------------------------------- #
    # Routes                                                              #
    # ----------------------------------------------------------------- #

    def _healthz(self, request: Request) -> bytes:
        return encode_response(
            200,
            {"status": "ok", "tenants": list(self.registry.names())},
            keep_alive=request.keep_alive,
        )

    def _stats(self, request: Request) -> bytes:
        tenants: dict[str, Any] = {}
        for name in self.registry.names():
            session = self.registry.session(name)
            tenants[name] = {
                "ontology_digest": session.ontology_digest,
                "cache": session.cache_stats(),
            }
        return encode_response(
            200,
            {"admission": self.admission.stats(), "tenants": tenants},
            keep_alive=request.keep_alive,
        )

    def _register_tenant(self, request: Request) -> bytes:
        from repro.data.database import Database
        from repro.lang.parser import parse_database, parse_program
        from repro.obda.mappings import parse_mappings

        payload = request.json()
        if not isinstance(payload, dict) or "name" not in payload:
            raise HttpError(400, "expected {name, program, data?, mappings?}")
        if "program" not in payload:
            raise HttpError(400, "tenant registration requires a program")
        name = str(payload["name"])
        rules = parse_program(str(payload["program"]))
        data = None
        if payload.get("data"):
            data = Database(parse_database(str(payload["data"])))
        mappings = None
        if payload.get("mappings"):
            mappings = parse_mappings(str(payload["mappings"]))
        digest = self.registry.register(name, rules, data, mappings)
        warmed = 0
        if self.registry.cache_dir is not None:
            warmed = self.registry.session(name).warm_up()
        return encode_response(
            201,
            {"tenant": name, "ontology_digest": digest, "warmed": warmed},
            keep_alive=request.keep_alive,
        )

    def _remove_tenant(self, request: Request) -> bytes:
        name = request.path[len("/v1/tenants/"):]
        if not name:
            raise HttpError(404, "missing tenant name")
        evicted = self.registry.remove(name)
        return encode_response(
            200,
            {"tenant": name, "evicted_entries": evicted},
            keep_alive=request.keep_alive,
        )

    async def _query(self, request: Request) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict) or "query" not in payload:
            raise HttpError(400, "expected {tenant?, query, backend?, target?}")
        tenant = str(payload.get("tenant", "default"))
        query_text = str(payload["query"])
        backend = str(payload.get("backend", "memory"))
        if backend not in _QUERY_BACKENDS:
            raise HttpError(
                400,
                f"unknown backend {backend!r}; "
                f"expected one of {_QUERY_BACKENDS}",
            )
        target = payload.get("target")
        if target is not None:
            target = str(target)

        ticket = self.admission.try_admit()
        if ticket is None:
            return encode_response(
                429,
                {
                    "error": "server at capacity; retry later",
                    "inflight": self.admission.capacity,
                },
                headers={
                    "Retry-After": str(self.admission.retry_after_seconds())
                },
                keep_alive=request.keep_alive,
            )

        loop = asyncio.get_running_loop()
        future = self._executor.submit(
            self._execute_query, tenant, query_text, backend, target
        )
        # The slot is freed when the *thread* finishes, never earlier:
        # a deadline-exceeded request still occupies its worker until
        # the rewriting/evaluation actually returns.  A request whose
        # deadline fires while it is still *queued* gets cancelled by
        # wait_for before it ever runs -- .exception() on a cancelled
        # future raises, so check .cancelled() first or the callback
        # dies and the slot leaks forever.
        future.add_done_callback(
            lambda f: ticket.release(
                error=f.cancelled() or f.exception() is not None
            )
        )
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(future, loop=loop),
                timeout=self.config.deadline_seconds,
            )
        except asyncio.TimeoutError:
            self.admission.record_deadline_exceeded()
            return encode_response(
                504,
                {
                    "error": "deadline exceeded",
                    "deadline_seconds": self.config.deadline_seconds,
                },
                keep_alive=request.keep_alive,
            )
        except ReproError as error:
            return encode_response(
                400, {"error": str(error)}, keep_alive=request.keep_alive
            )
        return encode_response(
            200, result, keep_alive=request.keep_alive
        )

    async def _mutate(self, request: Request) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict) or (
            "insert" not in payload and "delete" not in payload
        ):
            raise HttpError(400, "expected {tenant?, insert?, delete?}")
        tenant = str(payload.get("tenant", "default"))
        insert_text = str(payload["insert"]) if "insert" in payload else None
        delete_text = str(payload["delete"]) if "delete" in payload else None

        # Mutations go through the same admission gate as queries: a
        # re-chase fallback can be as expensive as any rewriting, and
        # sharing the gate keeps the capacity accounting truthful.
        ticket = self.admission.try_admit()
        if ticket is None:
            return encode_response(
                429,
                {
                    "error": "server at capacity; retry later",
                    "inflight": self.admission.capacity,
                },
                headers={
                    "Retry-After": str(self.admission.retry_after_seconds())
                },
                keep_alive=request.keep_alive,
            )

        loop = asyncio.get_running_loop()
        future = self._executor.submit(
            self._execute_mutate, tenant, insert_text, delete_text
        )
        future.add_done_callback(
            lambda f: ticket.release(
                error=f.cancelled() or f.exception() is not None
            )
        )
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(future, loop=loop),
                timeout=self.config.deadline_seconds,
            )
        except asyncio.TimeoutError:
            self.admission.record_deadline_exceeded()
            return encode_response(
                504,
                {
                    "error": "deadline exceeded",
                    "deadline_seconds": self.config.deadline_seconds,
                },
                keep_alive=request.keep_alive,
            )
        except ReproError as error:
            return encode_response(
                400, {"error": str(error)}, keep_alive=request.keep_alive
            )
        return encode_response(200, result, keep_alive=request.keep_alive)

    # Runs on an executor thread.
    def _execute_mutate(
        self,
        tenant: str,
        insert_text: str | None,
        delete_text: str | None,
    ) -> dict[str, Any]:
        started = time.perf_counter()
        session: Session = self.registry.session(tenant)
        obs.count("serve.mutations")
        summary: dict[str, Any] = {"tenant": tenant}
        with obs.span("serve.mutate", tenant=tenant):
            if insert_text is not None:
                maintained = session.insert(insert_text)
                summary["insert"] = _maintenance_summary(maintained)
            if delete_text is not None:
                maintained = session.delete(delete_text)
                summary["delete"] = _maintenance_summary(maintained)
        summary["data_size"] = len(session.abox())
        summary["seconds"] = round(time.perf_counter() - started, 6)
        return summary

    # Runs on an executor thread.
    def _execute_query(
        self,
        tenant: str,
        query_text: str,
        backend: str,
        target: str | None,
    ) -> dict[str, Any]:
        if self._before_execute is not None:
            self._before_execute()
        started = time.perf_counter()
        session: Session = self.registry.session(tenant)
        with obs.span("serve.query", tenant=tenant, backend=backend) as span:
            prepared = session.prepare(query_text, target=target)
            answers = prepared.answer(backend=backend, require_complete=False)
            span.set(answers=len(answers), complete=prepared.complete)
        return {
            "tenant": tenant,
            "query": query_text,
            "target": prepared.target_selected,
            "complete": prepared.complete,
            "answers": sorted(
                [str(term) for term in row] for row in answers
            ),
            "seconds": round(time.perf_counter() - started, 6),
        }


class BackgroundServer:
    """Run a :class:`ReproServer` on a daemon thread (tests/benchmarks).

    ::

        server = ReproServer(registry, config)
        with BackgroundServer(server) as (host, port):
            ... drive HTTP traffic ...
    """

    def __init__(self, server: ReproServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._boot_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._boot_error is not None:
            # The loop thread already closed its loop and is exiting;
            # join it so no half-dead thread outlives the failed start.
            self._thread.join(timeout=30)
            raise RuntimeError(
                f"server failed to start: {self._boot_error}"
            ) from self._boot_error
        assert self.server.port is not None
        return self.server.config.host, self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            # start_server() already accepts connections once bound; the
            # loop just needs to keep running (no serve_forever task, so
            # shutdown cannot race the runner's own completion callback).
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as error:  # noqa: BLE001 - report to start()
                self._boot_error = error
                return
            finally:
                self._started.set()
            loop.run_forever()
        finally:
            loop.close()
            self._loop = None

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(), loop).result(
            timeout=30
        )
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
