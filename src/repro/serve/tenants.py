"""Per-tenant ontology isolation for the serving layer.

One server process serves many tenants; each tenant is an ontology
(plus optional data and mappings) with its own
:class:`~repro.api.Session` -- engine, in-memory caches and evaluation
backend.  Isolation comes for free from the cache architecture: the
persistent tier keys every entry by ontology digest, so all tenants
share one cache *file* while never sharing an *entry*.

The registry keeps at most ``max_live`` sessions open (LRU).  An
evicted session is only *closed* -- its definition stays registered
and the next request lazily reopens it, warm from the shared
persistent cache.  Removing a tenant, by contrast, is permanent: the
session is closed, the definition dropped, and the persistent tier's
entries for that ontology reclaimed via
:meth:`~repro.api.RewritingCache.evict_ontologies` (unless another
registered tenant still uses the same ontology).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.api.cache import RewritingCache
from repro.api.options import EngineOptions
from repro.api.session import Session
from repro.data.database import Database
from repro.lang.errors import ReproError
from repro.lang.tgd import TGD
from repro.obda.mappings import MappingAssertion


class _TenantDef:
    __slots__ = ("ontology", "data", "mappings")

    def __init__(
        self,
        ontology: tuple[TGD, ...],
        data: Database | None,
        mappings: tuple[MappingAssertion, ...] | None,
    ) -> None:
        self.ontology = ontology
        self.data = data
        self.mappings = mappings


class TenantRegistry:
    """Named tenants -> live sessions, LRU-bounded, eviction-aware."""

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        options: EngineOptions | None = None,
        backend_factory: str = "sqlite",
        max_live: int = 8,
    ) -> None:
        if max_live < 1:
            raise ValueError(f"max_live must be >= 1, got {max_live}")
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._options = options if options is not None else EngineOptions()
        self._backend_factory = backend_factory
        self._max_live = max_live
        self._lock = threading.RLock()
        self._defs: dict[str, _TenantDef] = {}
        # Insertion order is the LRU order: oldest first.
        self._live: dict[str, Session] = {}

    @property
    def options(self) -> EngineOptions:
        """The engine options every tenant session is opened with."""
        return self._options

    @property
    def cache_dir(self) -> Path | None:
        return self._cache_dir

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._defs))

    def register(
        self,
        name: str,
        ontology: Sequence[TGD],
        data: Database | None = None,
        mappings: Sequence[MappingAssertion] | None = None,
    ) -> str:
        """Add (or replace) a tenant; returns its ontology digest."""
        definition = _TenantDef(
            tuple(ontology),
            data,
            tuple(mappings) if mappings is not None else None,
        )
        with self._lock:
            previous = self._live.pop(name, None)
            self._defs[name] = definition
        if previous is not None:
            previous.close()
        obs.event("serve.tenant.registered", tenant=name)
        return self.session(name).ontology_digest

    def session(self, name: str) -> Session:
        """The tenant's live session, opening (or reopening) it lazily."""
        with self._lock:
            definition = self._defs.get(name)
            if definition is None:
                raise ReproError(f"unknown tenant {name!r}")
            session = self._live.pop(name, None)
            if session is not None:
                # Re-insert at the tail: most recently used.
                self._live[name] = session
                return session
            session = Session(
                definition.ontology,
                definition.data,
                mappings=definition.mappings,
                cache_dir=self._cache_dir,
                options=self._options,
                backend_factory=self._backend_factory,
            )
            self._live[name] = session
            obs.count("serve.tenant.opened")
            evicted = []
            while len(self._live) > self._max_live:
                victim_name = next(iter(self._live))
                evicted.append(self._live.pop(victim_name))
                obs.count("serve.tenant.lru_closed")
        for victim in evicted:
            victim.close()
        return session

    def warm_all(self) -> int:
        """Warm every registered tenant from the persistent tier.

        The server's boot path: re-prepares every stored rewriting of
        every tenant's ontology so first requests hit a hot in-memory
        cache (zero fresh rewrites).  Returns total entries warmed.
        """
        if self._cache_dir is None:
            return 0
        warmed = 0
        for name in self.names():
            warmed += self.session(name).warm_up()
        obs.event("serve.warmup", entries=warmed)
        return warmed

    def remove(self, name: str) -> int:
        """Drop a tenant and reclaim its persistent-cache entries.

        Returns the number of cache rows evicted (0 when the ontology
        is still used by another tenant, or without a cache dir).
        """
        with self._lock:
            definition = self._defs.pop(name, None)
            if definition is None:
                raise ReproError(f"unknown tenant {name!r}")
            session = self._live.pop(name, None)
            remaining = {_digest(d.ontology) for d in self._defs.values()}
        if session is not None:
            session.close()
        evicted = 0
        if self._cache_dir is not None:
            # A transient handle: live sessions keep their own handles
            # to the same file, and SQLite's locking arbitrates.
            with RewritingCache(self._cache_dir) as cache:
                evicted = cache.evict_ontologies(keep=remaining)
        obs.event("serve.tenant.removed", tenant=name, evicted=evicted)
        return evicted

    def close(self) -> None:
        """Close every live session (definitions are kept)."""
        with self._lock:
            sessions = list(self._live.values())
            self._live.clear()
        for session in sessions:
            session.close()

    def __enter__(self) -> "TenantRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _digest(ontology: tuple[TGD, ...]) -> str:
    from repro.rewriting.store import ontology_digest

    return ontology_digest(ontology)
