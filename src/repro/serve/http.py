"""A minimal HTTP/1.1 codec over asyncio streams.

The serving layer deliberately depends on nothing outside the standard
library, so this module hand-rolls the small slice of HTTP the API
needs: request-line + header parsing, ``Content-Length`` bodies, JSON
responses and keep-alive.  It is not a general-purpose HTTP server --
no chunked encoding, no multipart, no TLS -- which is exactly the
point: the surface is small enough to audit and to test directly.

Limits (header block and body size) are enforced while reading, so a
misbehaving client cannot balloon server memory; violations raise
:class:`HttpError`, which the server maps to a 4xx response.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level problem with a definite status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request (headers lower-cased)."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        # HTTP/1.1 default is persistent; only an explicit close opts out.
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON (400 on syntax errors)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"invalid JSON body: {error}") from error


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Read one request from *reader*; None on a clean EOF.

    Raises :class:`HttpError` on malformed input or exceeded limits and
    ``asyncio.IncompleteReadError`` when the peer dies mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as error:  # noqa: BLE001 - stream errors map below
        # asyncio raises LimitOverrunError for oversized header blocks
        # and IncompleteReadError at EOF; an empty partial read is a
        # clean close between requests.
        partial = getattr(error, "partial", b"")
        if not partial:
            return None
        if len(partial) >= MAX_HEADER_BYTES:
            raise HttpError(413, "header block too large") from error
        raise HttpError(400, "truncated request") from error
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "header block too large")
    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0].split(" ")
    if len(request_line) != 3 or not request_line[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, _version = request_line
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as error:
            raise HttpError(400, "invalid Content-Length") from error
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "body too large")
        if length:
            body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def encode_response(
    status: int,
    payload: Any = None,
    *,
    headers: Mapping[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise a JSON response (or a bare status) to wire bytes."""
    body = b""
    content_type = ""
    if payload is not None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        content_type = "application/json"
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if content_type:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
