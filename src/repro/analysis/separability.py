"""Separability: partition a TGD set into a chase-safe core + residual.

Following the separability idea of Calì/Console/Frosini ("Deep
Separability of Ontological Constraints"), a non-terminating TGD set
can often be split into a *core* ``S`` whose chase terminates and a
*residual* ``R`` handled by rewriting, such that

    cert(q, S ∪ R, D)  =  cert(q, R, chase_S(D))        (*)

The partition computed here guarantees (*) by *stratification*: no
relation derived by a residual rule occurs in the body of any core
rule.  Then core firings never depend on residual facts, so the chase
factorises as ``chase(S ∪ R, D) = chase_R(chase_S(D))`` and the
residual consequences can equivalently be compiled into the query by
FO rewriting.

The partition is found iteratively: start with everything in the core;
while the core's termination certificate fails, evict the rules
implicated in the most general failing criterion's witness cycle, then
close under stratification (any core rule reading a residual-derived
relation follows it into the residual).  Each partition carries static
cost estimates from the rewriting-size estimator so callers (and the
RL2xx diagnostics) can see what the split buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.analysis.depgraph import rules_by_name
from repro.analysis.termination import (
    TerminationCertificate,
    termination_certificate,
)
from repro.lang.queries import ConjunctiveQuery
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget


@dataclass(frozen=True)
class SeparabilityReport:
    """A stratified partition of one TGD set.

    Attributes:
        rules: the full input rule set.
        core: the chase-safe separable core ``S`` (possibly empty).
        residual: the rewriting fragment ``R`` (empty iff the whole
            set already terminates).
        core_certificate: termination certificate of the core.
        full_certificate: certificate of the full set, for reference.
        residual_bound: max static disjunct bound of the workload
            queries rewritten over the residual only (None without a
            workload or when the estimator cannot bound it).
        full_bound: the same bound over the full rule set.
    """

    rules: tuple[TGD, ...]
    core: tuple[TGD, ...]
    residual: tuple[TGD, ...]
    core_certificate: TerminationCertificate
    full_certificate: TerminationCertificate
    residual_bound: int | None = None
    full_bound: int | None = None

    @property
    def separable(self) -> bool:
        """True iff the core is chase-safe (trivially so when total)."""
        return bool(self.core) and self.core_certificate.terminating

    @property
    def proper(self) -> bool:
        """True iff the split is non-trivial: both sides non-empty."""
        return self.separable and bool(self.residual)

    def to_dict(self) -> dict[str, object]:
        return {
            "separable": self.separable,
            "proper": self.proper,
            "core": [str(rule) for rule in self.core],
            "residual": [str(rule) for rule in self.residual],
            "core_level": (
                self.core_certificate.level.value
                if self.core_certificate.level
                else None
            ),
            "residual_bound": self.residual_bound,
            "full_bound": self.full_bound,
        }


def _head_relations(rules: Sequence[TGD]) -> frozenset[str]:
    return frozenset(
        atom.relation for rule in rules for atom in rule.head
    )


def _stratify(
    core: list[TGD], residual: list[TGD]
) -> tuple[list[TGD], list[TGD]]:
    """Move core rules reading residual-derived relations downstream."""
    changed = True
    while changed:
        changed = False
        blocked = _head_relations(residual)
        for rule in list(core):
            if any(atom.relation in blocked for atom in rule.body):
                core.remove(rule)
                residual.append(rule)
                changed = True
    return core, residual


def _estimate(
    queries: Sequence[ConjunctiveQuery],
    rules: Sequence[TGD],
    budget: RewritingBudget,
    default_depth: int,
) -> int | None:
    if not queries:
        return None
    # Local import: repro.checkers imports repro.analysis for the
    # RL2xx passes, so the estimator must be pulled in lazily.
    from repro.checkers.estimator import estimate_disjunct_bound

    bounds = [
        estimate_disjunct_bound(
            query, rules, budget=budget, default_depth=default_depth
        ).bound
        for query in queries
    ]
    return max(bounds) if bounds else None


def separate(
    rules: Sequence[TGD],
    queries: Sequence[ConjunctiveQuery] = (),
    budget: RewritingBudget | None = None,
    default_depth: int = 10,
    certificate: TerminationCertificate | None = None,
) -> SeparabilityReport:
    """Partition *rules* into a chase-safe core and a residual.

    The residual is empty when the full set already terminates; the
    core is empty when no chase-safe stratified core exists (the set
    is inseparable as far as this analysis can tell).  Callers that
    already hold the full set's :func:`termination_certificate` can
    pass it as *certificate* to skip the (digest-keyed) lookup.
    """
    rules = tuple(rules)
    budget = budget or RewritingBudget.default()
    full_certificate = certificate or termination_certificate(rules)
    core: list[TGD] = list(rules)
    residual: list[TGD] = []
    with obs.span("analysis.separate", rules=len(rules)):
        # The first iteration's certificate IS the full set's, so the
        # loop recomputes only after an actual eviction.
        core_certificate = full_certificate
        while core and not core_certificate.terminating:
            by_name = rules_by_name(core)
            implicated = [
                by_name[name]
                for name in core_certificate.implicated_rules
                if name in by_name
            ]
            if not implicated:
                # No witness to act on: declare the set inseparable.
                residual.extend(core)
                core = []
            else:
                for rule in implicated:
                    core.remove(rule)
                    residual.append(rule)
                core, residual = _stratify(core, residual)
            core_certificate = termination_certificate(tuple(core))
    report = SeparabilityReport(
        rules=rules,
        core=tuple(core),
        residual=tuple(residual),
        core_certificate=core_certificate,
        full_certificate=full_certificate,
        residual_bound=_estimate(queries, tuple(residual), budget, default_depth),
        full_bound=_estimate(queries, rules, budget, default_depth),
    )
    obs.count("analysis.separations")
    if report.proper:
        obs.count("analysis.proper_separations")
    return report
