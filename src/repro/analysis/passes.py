"""The constraint-interaction check passes (RL2xx) of ``repro check``.

These passes surface the whole-ruleset analyzer -- the termination
lattice of :mod:`repro.analysis.termination` and the separability
partition of :mod:`repro.analysis.separability` -- through the shared
lint diagnostic stack, as a fourth ``interaction`` stage next to the
RL1xx workload/coverage/estimate stages:

* **RL200** (info): the set is *not* weakly acyclic but a higher
  lattice member certifies chase termination; the weak-acyclicity
  witness cycle is attached so the user sees why the classical test
  fails.  (Weakly-acyclic sets emit nothing: that is the quiet,
  expected case.)
* **RL201** (warning): no lattice member certifies termination; the
  witness of the most general criterion (SWA) is attached, each edge
  with rule provenance.
* **RL202** (info): the non-terminating set admits a proper stratified
  partition into a chase-safe core and a rewriting residual, with the
  static rewriting-size bounds of the residual vs the full set.
* **RL203** (warning): the non-terminating set admits no chase-safe
  core at all -- every strategy beyond approximation is off the table.

Certificates and partitions are digest-cached, so the four passes
share one computation per rule set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.depgraph import rules_by_name
from repro.analysis.separability import SeparabilityReport, separate
from repro.analysis.termination import (
    TerminationCertificate,
    TerminationCriterion,
    termination_certificate,
)
from repro.lang.spans import Span
from repro.lang.tgd import TGD
from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # imported lazily to avoid a package cycle
    from repro.checkers.passes import CheckContext


def _anchor(
    certificate: TerminationCertificate, rules: tuple[TGD, ...]
) -> tuple[Span | None, str | None]:
    """Span and label of the first rule implicated in the witness."""
    implicated = set(certificate.implicated_rules)
    for name, rule in rules_by_name(rules).items():
        if name in implicated:
            return rule.span, name
    return None, None


def _verdict_lines(certificate: TerminationCertificate) -> tuple[str, ...]:
    lines = []
    for verdict in certificate.verdicts:
        if verdict.holds:
            how = (
                f"implied by {verdict.implied_by.value}"
                if verdict.implied_by
                else "holds"
            )
        else:
            how = "fails"
        lines.append(f"{verdict.criterion.value}: {how}")
    return tuple(lines)


def _project_separability(ctx: CheckContext) -> SeparabilityReport:
    rules = tuple(ctx.project.rules)
    return separate(
        rules,
        queries=ctx.project.queries,
        budget=ctx.budget,
        default_depth=ctx.default_depth,
        certificate=termination_certificate(rules),
    )


def pass_lattice_admitted(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL200: terminating, but only above weak acyclicity."""
    rules = tuple(ctx.project.rules)
    if not rules:
        return
    certificate = termination_certificate(rules)
    wa = certificate.verdict(TerminationCriterion.WEAK_ACYCLICITY)
    if not certificate.terminating or wa.holds:
        return
    level = certificate.level
    assert level is not None
    span, label = _anchor(certificate, rules)
    yield Diagnostic(
        code="RL200",
        severity=Severity.INFO,
        message=(
            "ontology is not weakly acyclic but its chase still "
            f"terminates: certified by {level.value}"
        ),
        span=span,
        rule=label,
        notes=_verdict_lines(certificate)
        + tuple(f"weak-acyclicity witness: {line}" for line in wa.witness),
        hint=(
            "nothing to fix: the chase strategy remains available; "
            "this records why the classical test rejects the set"
        ),
    )


def pass_non_terminating(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL201: no lattice member certifies chase termination."""
    rules = tuple(ctx.project.rules)
    if not rules:
        return
    certificate = termination_certificate(rules)
    if certificate.terminating:
        return
    span, label = _anchor(certificate, rules)
    yield Diagnostic(
        code="RL201",
        severity=Severity.WARNING,
        message=(
            "no termination criterion (weak, joint or super-weak "
            "acyclicity) certifies that the chase terminates"
        ),
        span=span,
        rule=label,
        notes=_verdict_lines(certificate)
        + tuple(f"witness: {line}" for line in certificate.witness),
        hint=(
            "break the value-inventing cycle, or rely on rewriting / "
            "approximation for the affected queries"
        ),
    )


def pass_separable_core(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL202: the non-terminating set has a chase-safe core."""
    rules = tuple(ctx.project.rules)
    if not rules or termination_certificate(rules).terminating:
        return
    report = _project_separability(ctx)
    if not report.proper:
        return
    core_level = report.core_certificate.level
    assert core_level is not None
    bounds = ""
    if report.residual_bound is not None and report.full_bound is not None:
        bounds = (
            f"; workload disjunct bound {report.residual_bound} on the "
            f"residual vs {report.full_bound} on the full set"
        )
    names = {
        id(rule): name for name, rule in rules_by_name(rules).items()
    }
    yield Diagnostic(
        code="RL202",
        severity=Severity.INFO,
        message=(
            f"non-terminating set is separable: a chase-safe core of "
            f"{len(report.core)} rule(s) ({core_level.value}) and a "
            f"rewriting residual of {len(report.residual)} rule(s)"
        ),
        notes=(
            "core: "
            + ", ".join(names.get(id(rule), "?") for rule in report.core),
            "residual: "
            + ", ".join(names.get(id(rule), "?") for rule in report.residual)
            + bounds,
        ),
        hint=(
            "the SPLIT strategy can chase the core once and rewrite "
            "queries over the residual only"
        ),
    )


def pass_inseparable(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL203: non-terminating and no chase-safe core exists."""
    rules = tuple(ctx.project.rules)
    if not rules:
        return
    certificate = termination_certificate(rules)
    if certificate.terminating:
        return
    report = _project_separability(ctx)
    if report.proper:
        return
    span, label = _anchor(certificate, rules)
    yield Diagnostic(
        code="RL203",
        severity=Severity.WARNING,
        message=(
            "non-terminating set is inseparable: no stratified "
            "chase-safe core found"
        ),
        span=span,
        rule=label,
        notes=(
            "every rule is entangled with a value-inventing cycle or "
            "reads a relation derived by one",
        ),
        hint=(
            "answers for affected queries fall back to depth-bounded "
            "approximation; consider restructuring the recursion"
        ),
    )
