"""The shared, digest-cached position dependency graph.

Every termination criterion in :mod:`repro.analysis.termination` (and
:func:`repro.chase.termination.is_weakly_acyclic`, which now delegates
here) reads the same position dependency graph.  Building it is linear
in the program size but the Section-7 decision procedure consults it on
*every* query, so the graph is built once per rule set and cached under
the rule-order-insensitive ontology digest of
:mod:`repro.rewriting.store`.

The graph is a :class:`~repro.graphs.cycles.LabeledGraph` rather than a
raw ``networkx`` multigraph so that every edge carries rule provenance
and the label machinery can extract deterministic witness cycles: a
weak-acyclicity violation is exactly a cycle through a
``special``-labeled edge, and :meth:`LabeledGraph.find_labeled_cycle`
returns it ready for diagnostics.

Cache hits and misses are observable as ``analysis.graph_cache_hits`` /
``analysis.graph_cache_misses`` counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.graphs.cycles import LabeledEdge, LabeledGraph
from repro.lang.atoms import Position
from repro.lang.terms import Variable
from repro.lang.tgd import TGD
from repro.rewriting.store import ontology_digest

#: Edge label marking value invention (an existential head position).
SPECIAL = "special"

#: Maximum number of dependency graphs kept alive (LRU).
_CACHE_LIMIT = 64


def rule_name(rule: TGD, index: int) -> str:
    """Stable provenance key for *rule*: its label or ``#<index>``.

    The positional fallback is relative to the rule tuple the graph was
    built from, so unlabeled rules should be passed in a stable order.
    """
    return rule.label or f"#{index}"


def rules_by_name(rules: Sequence[TGD]) -> dict[str, TGD]:
    """provenance key -> rule, using the same enumeration as the graph."""
    return {
        rule_name(rule, index): rule
        for index, rule in enumerate(rules, start=1)
    }


@dataclass(frozen=True)
class DependencyGraph:
    """The position dependency graph of one TGD set.

    Attributes:
        digest: the ontology digest the graph is cached under.
        rules: the rule tuple the graph was built from.
        graph: nodes are :class:`Position` objects; an edge carries the
            ``special`` label iff it tracks value invention, and the
            provenance keys of every rule that contributed it.
    """

    digest: str
    rules: tuple[TGD, ...]
    graph: LabeledGraph

    def weak_acyclicity_witness(self) -> tuple[LabeledEdge, ...] | None:
        """A cycle through a special edge, or None when weakly acyclic."""
        return self.graph.find_labeled_cycle((SPECIAL,))

    @property
    def weakly_acyclic(self) -> bool:
        return self.weak_acyclicity_witness() is None


def _build(rules: tuple[TGD, ...]) -> LabeledGraph:
    graph = LabeledGraph()
    for index, rule in enumerate(rules, start=1):
        name = rule_name(rule, index)
        frontier = set(rule.distinguished_variables())
        existential = set(rule.existential_head_variables())
        head_sites: dict[Variable, list[Position]] = {}
        existential_sites: list[Position] = []
        for atom in rule.head:
            for position, term in enumerate(atom.terms, start=1):
                if isinstance(term, Variable):
                    site = Position(atom.relation, position)
                    if term in existential:
                        existential_sites.append(site)
                    else:
                        head_sites.setdefault(term, []).append(site)
        for atom in rule.body:
            for position, term in enumerate(atom.terms, start=1):
                if not isinstance(term, Variable) or term not in frontier:
                    continue
                source = Position(atom.relation, position)
                for target in head_sites.get(term, ()):
                    graph.add_edge(source, target, rules=(name,))
                for target in existential_sites:
                    graph.add_edge(
                        source, target, labels=(SPECIAL,), rules=(name,)
                    )
    return graph


_cache: OrderedDict[str, DependencyGraph] = OrderedDict()


def dependency_graph(rules: Sequence[TGD]) -> DependencyGraph:
    """The (cached) position dependency graph of *rules*."""
    rules = tuple(rules)
    digest = ontology_digest(rules)
    cached = _cache.get(digest)
    if cached is not None:
        _cache.move_to_end(digest)
        obs.count("analysis.graph_cache_hits")
        return cached
    obs.count("analysis.graph_cache_misses")
    with obs.span("analysis.depgraph.build", rules=len(rules)):
        built = DependencyGraph(
            digest=digest, rules=rules, graph=_build(rules)
        )
    _cache[digest] = built
    while len(_cache) > _CACHE_LIMIT:
        _cache.popitem(last=False)
    return built


def clear_graph_cache() -> None:
    """Drop every cached dependency graph (tests and benchmarks)."""
    _cache.clear()


def graph_cache_size() -> int:
    """Number of dependency graphs currently cached."""
    return len(_cache)
