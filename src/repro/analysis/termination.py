"""The chase-termination lattice: WA ⊊ JA ⊊ SWA, with certificates.

:func:`repro.chase.termination.is_weakly_acyclic` answers a yes/no
question; the Section-7 decision procedure needs more.  This module
arranges three acyclicity criteria of increasing generality into a
lattice and reports, for a given TGD set, the *weakest* criterion that
certifies chase termination -- together with a machine-readable
witness (the offending cycle, each edge carrying rule provenance) for
every criterion that fails:

* **Weak acyclicity** (Fagin et al., data exchange): no cycle through
  a special edge of the position dependency graph.
* **Joint acyclicity** (Krötzsch & Rudolph): per existential variable
  ``y``, the *movement* ``Mov(y)`` closes the positions its nulls can
  reach (a frontier variable propagates only when *all* of its body
  positions are covered); ``y -> y'`` when the rule of ``y'`` can fire
  on moved values.  Termination iff the dependency graph over
  existential variables is acyclic.
* **Super-weak acyclicity** (in the spirit of Marnette): the same
  movement computed at *place* granularity (one node per atom
  occurrence, not per position) and filtered by atom unification, so
  constants and repeated variables can block propagation that the
  position-level analysis over-approximates.

Each criterion soundly certifies termination of the Skolem chase (and
hence of the restricted chase this library runs).  Containment holds
by construction: the SWA movement projects into the JA movement, whose
cycles project into position-graph cycles, so every set accepted by a
weaker criterion is accepted by the stronger ones.  The certificate is
computed once per rule set and cached under the ontology digest.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import obs
from repro.analysis.depgraph import (
    DependencyGraph,
    dependency_graph,
    rule_name,
)
from repro.graphs.cycles import LabeledEdge, LabeledGraph
from repro.lang.atoms import Atom, Position
from repro.lang.terms import Variable
from repro.lang.tgd import TGD

_CACHE_LIMIT = 64


class TerminationCriterion(enum.Enum):
    """One member of the termination lattice, weakest first."""

    WEAK_ACYCLICITY = "weak-acyclicity"
    JOINT_ACYCLICITY = "joint-acyclicity"
    SUPER_WEAK_ACYCLICITY = "super-weak-acyclicity"

    @property
    def order(self) -> int:
        """Position in the lattice (0 = most restrictive criterion)."""
        return LATTICE.index(self)


#: The lattice in containment order: WA ⊊ JA ⊊ SWA.
LATTICE: tuple[TerminationCriterion, ...] = (
    TerminationCriterion.WEAK_ACYCLICITY,
    TerminationCriterion.JOINT_ACYCLICITY,
    TerminationCriterion.SUPER_WEAK_ACYCLICITY,
)


@dataclass(frozen=True)
class CriterionVerdict:
    """One criterion's outcome on one rule set.

    Attributes:
        criterion: which lattice member was checked.
        holds: True iff the criterion certifies termination.
        witness: rendered cycle edges (with rule provenance) proving
            the criterion fails; empty when it holds.
        implicated_rules: provenance keys of the rules on the witness.
        implied_by: when the verdict was not computed directly but
            follows from a weaker criterion holding, that criterion.
    """

    criterion: TerminationCriterion
    holds: bool
    witness: tuple[str, ...] = ()
    implicated_rules: tuple[str, ...] = ()
    implied_by: TerminationCriterion | None = None

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "criterion": self.criterion.value,
            "holds": self.holds,
        }
        if self.witness:
            out["witness"] = list(self.witness)
        if self.implicated_rules:
            out["implicated_rules"] = list(self.implicated_rules)
        if self.implied_by is not None:
            out["implied_by"] = self.implied_by.value
        return out


@dataclass(frozen=True)
class TerminationCertificate:
    """The lattice verdicts for one rule set, weakest criterion first.

    ``level`` is the weakest criterion that holds (None when none does)
    and ``witness`` the proof that the *most general* criterion fails
    -- the strongest evidence of genuine non-termination risk this
    analyzer can produce.
    """

    digest: str
    verdicts: tuple[CriterionVerdict, ...]

    @property
    def terminating(self) -> bool:
        """True iff some lattice member certifies chase termination."""
        return any(v.holds for v in self.verdicts)

    @property
    def level(self) -> TerminationCriterion | None:
        """The weakest criterion that holds, or None."""
        for verdict in self.verdicts:
            if verdict.holds:
                return verdict.criterion
        return None

    @property
    def witness(self) -> tuple[str, ...]:
        """Witness of the most general failing criterion (may be empty)."""
        for verdict in reversed(self.verdicts):
            if not verdict.holds:
                return verdict.witness
        return ()

    @property
    def implicated_rules(self) -> tuple[str, ...]:
        """Rules on the most general failing criterion's witness."""
        for verdict in reversed(self.verdicts):
            if not verdict.holds:
                return verdict.implicated_rules
        return ()

    def verdict(self, criterion: TerminationCriterion) -> CriterionVerdict:
        for verdict in self.verdicts:
            if verdict.criterion is criterion:
                return verdict
        raise KeyError(criterion)

    def to_dict(self) -> dict[str, object]:
        return {
            "digest": self.digest,
            "terminating": self.terminating,
            "level": self.level.value if self.level else None,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


# --------------------------------------------------------------------- #
# Witness rendering                                                      #
# --------------------------------------------------------------------- #


def _cycle_lines(
    cycle: Sequence[LabeledEdge], graph: LabeledGraph
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(rendered edge lines, rule provenance in first-seen order)."""
    lines: list[str] = []
    names: list[str] = []
    for edge in cycle:
        rules = sorted(graph.rules_of(edge.source, edge.target))
        via = f" (via {', '.join(rules)})" if rules else ""
        lines.append(f"{edge}{via}")
        for name in rules:
            if name not in names:
                names.append(name)
    return tuple(lines), tuple(names)


# --------------------------------------------------------------------- #
# Joint acyclicity                                                       #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _RuleInfo:
    name: str
    rule: TGD
    frontier: tuple[Variable, ...]
    existentials: tuple[Variable, ...]
    body_positions: Mapping[Variable, frozenset[Position]]
    head_positions: Mapping[Variable, frozenset[Position]]


def _rule_infos(rules: Sequence[TGD]) -> tuple[_RuleInfo, ...]:
    infos = []
    for index, rule in enumerate(rules, start=1):
        body: dict[Variable, set[Position]] = {}
        head: dict[Variable, set[Position]] = {}
        for atom in rule.body:
            for position, term in enumerate(atom.terms, start=1):
                if isinstance(term, Variable):
                    body.setdefault(term, set()).add(
                        Position(atom.relation, position)
                    )
        for atom in rule.head:
            for position, term in enumerate(atom.terms, start=1):
                if isinstance(term, Variable):
                    head.setdefault(term, set()).add(
                        Position(atom.relation, position)
                    )
        infos.append(
            _RuleInfo(
                name=rule_name(rule, index),
                rule=rule,
                frontier=rule.distinguished_variables(),
                existentials=rule.existential_head_variables(),
                body_positions={v: frozenset(p) for v, p in body.items()},
                head_positions={v: frozenset(p) for v, p in head.items()},
            )
        )
    return tuple(infos)


def _movement(
    start: frozenset[Position], infos: Sequence[_RuleInfo]
) -> tuple[frozenset[Position], frozenset[str]]:
    """Close *start* under null movement; also report the rules used."""
    positions = set(start)
    carriers: set[str] = set()
    changed = True
    while changed:
        changed = False
        for info in infos:
            for var in info.frontier:
                sources = info.body_positions.get(var)
                if not sources or not sources <= positions:
                    continue
                new = info.head_positions.get(var, frozenset()) - positions
                if new:
                    positions |= new
                    carriers.add(info.name)
                    changed = True
    return frozenset(positions), frozenset(carriers)


def _existential_node(info: _RuleInfo, var: Variable) -> str:
    return f"{info.name}.{var.name}"


def joint_dependency_graph(rules: Sequence[TGD]) -> LabeledGraph:
    """The JA dependency graph over existential head variables.

    Nodes are ``<rule>.<variable>`` keys; an edge ``y -> y'`` states
    that nulls invented for ``y`` can reach every body position of some
    frontier variable of the rule of ``y'``.  Edge provenance names the
    two endpoint rules plus every rule whose propagation carried the
    movement.
    """
    infos = _rule_infos(rules)
    graph = LabeledGraph()
    holders = [
        (info, var) for info in infos for var in info.existentials
    ]
    for info, var in holders:
        graph.add_node(_existential_node(info, var))
    for info, var in holders:
        moved, carriers = _movement(
            info.head_positions.get(var, frozenset()), infos
        )
        for info2, var2 in holders:
            if any(
                info2.body_positions.get(x)
                and info2.body_positions[x] <= moved
                for x in info2.frontier
            ):
                graph.add_edge(
                    _existential_node(info, var),
                    _existential_node(info2, var2),
                    rules=sorted(carriers | {info.name, info2.name}),
                )
    return graph


# --------------------------------------------------------------------- #
# Super-weak acyclicity                                                  #
# --------------------------------------------------------------------- #

#: A place: (rule index, "body"/"head", atom index, 1-based position).
_Place = tuple[int, str, int, int]


def _atoms_unify(left: Atom, right: Atom) -> bool:
    """Syntactic unifiability of two flat atoms (disjoint namespaces).

    Union-find over the terms, tagging variables by side; unification
    fails exactly when two distinct constants are forced equal -- the
    one situation where no instance of *left* can match *right*.
    """
    if left.relation != right.relation or left.arity != right.arity:
        return False
    parent: dict[object, object] = {}

    def find(node: object) -> object:
        while parent.setdefault(node, node) != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for lt, rt in zip(left.terms, right.terms):
        lk = ("L", lt) if isinstance(lt, Variable) else ("C", lt)
        rk = ("R", rt) if isinstance(rt, Variable) else ("C", rt)
        root_l, root_r = find(lk), find(rk)
        if root_l == root_r:
            continue
        # Keep constants as class representatives so clashes surface.
        if isinstance(root_l, tuple) and root_l[0] == "C":
            if isinstance(root_r, tuple) and root_r[0] == "C":
                return False
            parent[root_r] = root_l
        else:
            parent[root_l] = root_r
    return True


def _body_places(info: _RuleInfo, rule_index: int, var: Variable) -> set[_Place]:
    return {
        (rule_index, "body", bj, pos)
        for bj, beta in enumerate(info.rule.body)
        for pos, term in enumerate(beta.terms, start=1)
        if term == var
    }


def _place_movement(
    start_index: int,
    start_var: Variable,
    infos: Sequence[_RuleInfo],
) -> tuple[frozenset[_Place], frozenset[str]]:
    """Body places reachable by nulls of *start_var*, with provenance."""
    head_moved: set[_Place] = set()
    body_moved: set[_Place] = set()
    carriers: set[str] = set()
    start_info = infos[start_index]
    for ai, atom in enumerate(start_info.rule.head):
        for pos, term in enumerate(atom.terms, start=1):
            if term == start_var:
                head_moved.add((start_index, "head", ai, pos))
    changed = True
    while changed:
        changed = False
        for ri, _, ai, pos in tuple(head_moved):
            alpha = infos[ri].rule.head[ai]
            for rj, info2 in enumerate(infos):
                for bj, beta in enumerate(info2.rule.body):
                    if beta.relation != alpha.relation:
                        continue
                    place = (rj, "body", bj, pos)
                    if place in body_moved:
                        continue
                    if not _atoms_unify(alpha, beta):
                        continue
                    body_moved.add(place)
                    changed = True
        for rj, info2 in enumerate(infos):
            for var in info2.frontier:
                places = _body_places(info2, rj, var)
                if not places or not places <= body_moved:
                    continue
                for aj, alpha in enumerate(info2.rule.head):
                    for pos, term in enumerate(alpha.terms, start=1):
                        place = (rj, "head", aj, pos)
                        if term == var and place not in head_moved:
                            head_moved.add(place)
                            carriers.add(info2.name)
                            changed = True
    return frozenset(body_moved), frozenset(carriers)


def trigger_graph(rules: Sequence[TGD]) -> LabeledGraph:
    """The SWA trigger graph over existential head variables.

    Same shape as :func:`joint_dependency_graph` but movement is
    tracked per *place* and filtered by atom unification, so head
    constants, body constants and repeated variables can sever
    propagation paths the position-level JA analysis must assume.
    """
    infos = _rule_infos(rules)
    graph = LabeledGraph()
    holders = [
        (index, info, var)
        for index, info in enumerate(infos)
        for var in info.existentials
    ]
    for _, info, var in holders:
        graph.add_node(_existential_node(info, var))
    for index, info, var in holders:
        moved, carriers = _place_movement(index, var, infos)
        for rj, info2 in enumerate(infos):
            triggered = False
            for var2 in info2.frontier:
                places = _body_places(info2, rj, var2)
                if places and places <= moved:
                    triggered = True
                    break
            if not triggered:
                continue
            for var2 in info2.existentials:
                graph.add_edge(
                    _existential_node(info, var),
                    _existential_node(info2, var2),
                    rules=sorted(carriers | {info.name, info2.name}),
                )
    return graph


# --------------------------------------------------------------------- #
# The certificate                                                        #
# --------------------------------------------------------------------- #


def _acyclicity_verdict(
    criterion: TerminationCriterion, graph: LabeledGraph
) -> CriterionVerdict:
    cycle = graph.find_labeled_cycle(())
    if cycle is None:
        return CriterionVerdict(criterion=criterion, holds=True)
    lines, names = _cycle_lines(cycle, graph)
    return CriterionVerdict(
        criterion=criterion,
        holds=False,
        witness=lines,
        implicated_rules=names,
    )


def _compute(dep: DependencyGraph) -> TerminationCertificate:
    verdicts: list[CriterionVerdict] = []
    wa_cycle = dep.weak_acyclicity_witness()
    if wa_cycle is None:
        verdicts.append(
            CriterionVerdict(
                criterion=TerminationCriterion.WEAK_ACYCLICITY, holds=True
            )
        )
        for criterion in LATTICE[1:]:
            verdicts.append(
                CriterionVerdict(
                    criterion=criterion,
                    holds=True,
                    implied_by=TerminationCriterion.WEAK_ACYCLICITY,
                )
            )
        return TerminationCertificate(dep.digest, tuple(verdicts))

    lines, names = _cycle_lines(wa_cycle, dep.graph)
    verdicts.append(
        CriterionVerdict(
            criterion=TerminationCriterion.WEAK_ACYCLICITY,
            holds=False,
            witness=lines,
            implicated_rules=names,
        )
    )
    ja = _acyclicity_verdict(
        TerminationCriterion.JOINT_ACYCLICITY,
        joint_dependency_graph(dep.rules),
    )
    verdicts.append(ja)
    if ja.holds:
        verdicts.append(
            CriterionVerdict(
                criterion=TerminationCriterion.SUPER_WEAK_ACYCLICITY,
                holds=True,
                implied_by=TerminationCriterion.JOINT_ACYCLICITY,
            )
        )
    else:
        verdicts.append(
            _acyclicity_verdict(
                TerminationCriterion.SUPER_WEAK_ACYCLICITY,
                trigger_graph(dep.rules),
            )
        )
    return TerminationCertificate(dep.digest, tuple(verdicts))


_cert_cache: OrderedDict[str, TerminationCertificate] = OrderedDict()


def termination_certificate(rules: Sequence[TGD]) -> TerminationCertificate:
    """The (cached) termination-lattice certificate for *rules*."""
    dep = dependency_graph(rules)
    cached = _cert_cache.get(dep.digest)
    if cached is not None:
        _cert_cache.move_to_end(dep.digest)
        obs.count("analysis.certificate_cache_hits")
        return cached
    with obs.span("analysis.termination", rules=len(dep.rules)):
        certificate = _compute(dep)
    obs.count("analysis.certificates_computed")
    _cert_cache[dep.digest] = certificate
    while len(_cert_cache) > _CACHE_LIMIT:
        _cert_cache.popitem(last=False)
    return certificate


def clear_certificate_cache() -> None:
    """Drop every cached certificate (tests and benchmarks)."""
    _cert_cache.clear()
