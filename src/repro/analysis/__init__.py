"""Whole-ruleset constraint-interaction analysis.

This package answers two static questions about a TGD set as a whole,
feeding both the ``repro check`` diagnostics (RL2xx) and the Section-7
strategy selection of :mod:`repro.obda.strategy`:

* **Where does the set sit in the chase-termination lattice?**
  :mod:`repro.analysis.termination` checks weak acyclicity ⊊ joint
  acyclicity ⊊ super-weak acyclicity over a shared position dependency
  graph (:mod:`repro.analysis.depgraph`, cached per ontology digest)
  and returns a :class:`TerminationCertificate` whose witnesses carry
  per-edge rule provenance.
* **If the chase diverges, which part of the set is still safe?**
  :mod:`repro.analysis.separability` partitions the rules into a
  chase-safe stratified core and a rewriting residual, with static
  cost estimates per side.

:func:`analyze` bundles both; :meth:`repro.api.Session.analyze` is the
session-level entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.depgraph import (
    SPECIAL,
    DependencyGraph,
    clear_graph_cache,
    dependency_graph,
    graph_cache_size,
    rule_name,
    rules_by_name,
)
from repro.analysis.separability import SeparabilityReport, separate
from repro.analysis.termination import (
    LATTICE,
    CriterionVerdict,
    TerminationCertificate,
    TerminationCriterion,
    clear_certificate_cache,
    joint_dependency_graph,
    termination_certificate,
    trigger_graph,
)
from repro.lang.queries import ConjunctiveQuery
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget


@dataclass(frozen=True)
class AnalysisReport:
    """The combined constraint-interaction analysis of one rule set."""

    certificate: TerminationCertificate
    separability: SeparabilityReport

    @property
    def terminating(self) -> bool:
        return self.certificate.terminating

    @property
    def level(self) -> TerminationCriterion | None:
        return self.certificate.level

    def to_dict(self) -> dict[str, object]:
        return {
            "termination": self.certificate.to_dict(),
            "separability": self.separability.to_dict(),
        }


def analyze(
    rules: Sequence[TGD],
    queries: Sequence[ConjunctiveQuery] = (),
    budget: RewritingBudget | None = None,
    default_depth: int = 10,
) -> AnalysisReport:
    """Run the full constraint-interaction analysis over *rules*."""
    certificate = termination_certificate(rules)
    separability = separate(
        rules,
        queries=queries,
        budget=budget,
        default_depth=default_depth,
        certificate=certificate,
    )
    return AnalysisReport(certificate=certificate, separability=separability)


__all__ = [
    "AnalysisReport",
    "CriterionVerdict",
    "DependencyGraph",
    "LATTICE",
    "SPECIAL",
    "SeparabilityReport",
    "TerminationCertificate",
    "TerminationCriterion",
    "analyze",
    "clear_certificate_cache",
    "clear_graph_cache",
    "dependency_graph",
    "graph_cache_size",
    "joint_dependency_graph",
    "rule_name",
    "rules_by_name",
    "separate",
    "termination_certificate",
    "trigger_graph",
]
