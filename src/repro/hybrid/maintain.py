"""Incrementally maintained materialized chase core.

A :class:`MaterializedCore` owns the restricted-chase closure of a
chase-safe rule set (the separable core from
:mod:`repro.analysis.separability`) over a base ABox, together with
enough *provenance* to maintain that closure under base-fact inserts
and deletes without re-chasing from scratch:

* every trigger firing is recorded as a :class:`Firing` — the
  instantiated body facts it consumed and the head facts it produced;
* each derived fact keeps the set of still-valid firings supporting it
  (a fact with fresh nulls has exactly one producer; null-free heads
  may accumulate several);
* each fact keeps the firings *using* it in a body, so deletions can
  invalidate downstream derivations.

**Inserts** propagate semi-naively: only triggers whose body touches a
delta fact are enumerated, and the restricted head-satisfaction check
suppresses everything already entailed.  **Deletes** follow the DRed
(delete/re-derive) discipline: over-delete every fact whose support
drains, then re-check only the rules whose heads produce an affected
relation — a trigger suppressed before the deletion can only have
become live if its satisfying head image was destroyed, so no other
rule needs re-enumeration.

When a requested delta (or a deletion cascade) exceeds a configurable
fraction of the instance, incremental maintenance is abandoned for a
full re-chase — past that point re-deriving piecemeal costs more than
starting over.  Counters: ``hybrid.delta_applied`` /
``hybrid.full_rechase`` distinguish the two paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro import obs
from repro.chase.chase import DEFAULT_MAX_STEPS, _head_satisfied
from repro.chase.nulls import NullFactory
from repro.data.database import Database
from repro.data.evaluation import _match_body, all_homomorphisms
from repro.lang.atoms import Atom
from repro.lang.errors import ChaseBudgetExceeded
from repro.lang.terms import Term, Variable
from repro.lang.tgd import TGD

#: Minimum absolute delta size below which incremental maintenance is
#: always attempted, regardless of the relative threshold.
MIN_DELTA_FLOOR = 8

#: Default fraction of the instance a delta may reach before the
#: maintainer falls back to a full re-chase.
DEFAULT_THRESHOLD = 0.5


@dataclass
class Firing:
    """One recorded trigger firing of the provenance chase.

    ``valid`` flips to False when any body fact is deleted; the facts
    in ``produced`` then lose this firing from their support set.
    """

    rule_index: int
    body_facts: tuple[Atom, ...]
    produced: tuple[Atom, ...]
    valid: bool = True


@dataclass(frozen=True)
class MaintenanceResult:
    """Outcome of one insert/delete maintenance operation.

    Attributes:
        added: facts newly present in the instance (empty on full
            re-chase — callers should diff or reload wholesale).
        removed: facts no longer in the instance (ditto).
        full_rechase: True iff the delta exceeded the threshold and
            the core was rebuilt from scratch.
        rounds: semi-naive propagation rounds performed.
        firings: trigger firings performed by this operation.
    """

    added: tuple[Atom, ...]
    removed: tuple[Atom, ...]
    full_rechase: bool
    rounds: int = 0
    firings: int = 0


class MaterializedCore:
    """The chase closure of a rule set, maintained under ABox deltas."""

    def __init__(
        self,
        rules: Sequence[TGD],
        base: Database | Iterable[Atom],
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.rules: tuple[TGD, ...] = tuple(rules)
        self.max_steps = max_steps
        self.threshold = threshold
        self.base: Database = (
            base.copy() if isinstance(base, Database) else Database(base)
        )
        self.instance: Database = Database()
        self._nulls = NullFactory()
        self._firings: list[Firing] = []
        self._supports: dict[Atom, set[int]] = {}
        self._uses: dict[Atom, set[int]] = {}
        self.rebuilds = 0
        self._rebuild()

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self.instance)

    @property
    def derived_count(self) -> int:
        """Facts in the instance beyond the base ABox."""
        return len(self.instance) - len(self.base)

    def firing_count(self, *, valid_only: bool = True) -> int:
        if not valid_only:
            return len(self._firings)
        return sum(1 for firing in self._firings if firing.valid)

    # -- full rebuild --------------------------------------------------

    def _rebuild(self) -> None:
        """Chase the base from scratch, resetting all provenance."""
        self.instance = self.base.copy()
        self._nulls = NullFactory()
        self._firings = []
        self._supports = {}
        self._uses = {}
        self.rebuilds += 1
        with obs.span(
            "hybrid.rebuild", rules=len(self.rules), facts=len(self.base)
        ):
            rounds, firings = self._saturate()
        obs.count("hybrid.rebuild_rounds", rounds)
        obs.count("hybrid.rebuild_firings", firings)

    def _saturate(self) -> tuple[int, int]:
        """Round-based restricted chase with provenance, to fixpoint."""
        rounds = 0
        firings = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for rule_index, rule in enumerate(self.rules):
                for hom in list(
                    all_homomorphisms(rule.body, self.instance)
                ):
                    if _head_satisfied(rule, hom, self.instance):
                        continue
                    self._record_firing(rule_index, rule, hom)
                    firings += 1
                    changed = True
                    if firings > self.max_steps:
                        raise ChaseBudgetExceeded(
                            f"materialized core exceeded {self.max_steps} steps"
                        )
        return rounds, firings

    # -- firing with provenance ----------------------------------------

    def _record_firing(
        self, rule_index: int, rule: TGD, hom: dict[Variable, Term]
    ) -> list[Atom]:
        """Fire one trigger, recording body/head provenance.

        Returns the facts genuinely added to the instance (facts that
        were already present gain an extra support instead).
        """
        assignment: dict[Variable, Term] = dict(hom)
        for var in rule.existential_head_variables():
            assignment[var] = self._nulls.fresh()
        body_facts = tuple(
            _instantiate(atom, assignment) for atom in rule.body
        )
        produced = tuple(
            _instantiate(atom, assignment) for atom in rule.head
        )
        firing_id = len(self._firings)
        self._firings.append(
            Firing(rule_index=rule_index, body_facts=body_facts,
                   produced=produced)
        )
        for fact in body_facts:
            self._uses.setdefault(fact, set()).add(firing_id)
        added: list[Atom] = []
        for fact in produced:
            # Support only facts this firing actually created: support
            # edges then always point from older facts to a strictly
            # newer one, so the valid-firing graph stays acyclic and
            # facts can never keep each other alive after their real
            # derivation is retracted.  A pre-existing head atom that
            # loses its own support is over-deleted and re-derived.
            if self.instance.add(fact):
                self._supports.setdefault(fact, set()).add(firing_id)
                added.append(fact)
        return added

    # -- inserts (semi-naive) ------------------------------------------

    def apply_insert(self, facts: Iterable[Atom]) -> MaintenanceResult:
        """Add base facts and propagate their consequences."""
        requested = [fact for fact in facts if fact not in self.base]
        for fact in requested:
            self.base.add(fact)
        delta = [fact for fact in requested if self.instance.add(fact)]
        if self._over_threshold(len(delta)):
            self._rebuild()
            obs.count("hybrid.full_rechase")
            return MaintenanceResult((), (), full_rechase=True)
        with obs.span("hybrid.insert", delta=len(delta)):
            added, rounds, firings = self._propagate(delta)
        obs.count("hybrid.delta_applied")
        obs.count("hybrid.delta_facts", len(delta))
        return MaintenanceResult(
            added=tuple(delta) + tuple(added),
            removed=(),
            full_rechase=False,
            rounds=rounds,
            firings=firings,
        )

    def _propagate(
        self, delta: Sequence[Atom]
    ) -> tuple[list[Atom], int, int]:
        """Semi-naive closure: only triggers touching a delta fact run."""
        added_total: list[Atom] = []
        rounds = 0
        firings = 0
        seen: set[tuple[int, tuple[Term, ...]]] = set()
        frontier = list(delta)
        while frontier:
            rounds += 1
            frontier_relations = {fact.relation for fact in frontier}
            next_frontier: list[Atom] = []
            for rule_index, rule in enumerate(self.rules):
                body_vars = rule.body_variables()
                for hom in self._delta_homomorphisms(
                    rule, frontier, frontier_relations
                ):
                    key = (
                        rule_index,
                        tuple(hom[v] for v in body_vars),
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    if _head_satisfied(rule, hom, self.instance):
                        continue
                    produced = self._record_firing(rule_index, rule, hom)
                    firings += 1
                    if firings > self.max_steps:
                        raise ChaseBudgetExceeded(
                            f"delta chase exceeded {self.max_steps} steps"
                        )
                    next_frontier.extend(produced)
            added_total.extend(next_frontier)
            frontier = next_frontier
        return added_total, rounds, firings

    def _delta_homomorphisms(
        self,
        rule: TGD,
        frontier: Sequence[Atom],
        frontier_relations: set[str],
    ) -> Iterator[dict[Variable, Term]]:
        """Homomorphisms of the rule body anchored at a frontier fact.

        Every trigger new since the previous fixpoint maps at least one
        body atom to a frontier fact, so anchoring each body position
        in turn covers all of them (duplicates are filtered by the
        caller's trigger-key set).
        """
        body = list(rule.body)
        for position, atom in enumerate(body):
            if atom.relation not in frontier_relations:
                continue
            rest = body[:position] + body[position + 1:]
            for fact in frontier:
                if fact.relation != atom.relation:
                    continue
                binding = _bind_atom(atom, fact)
                if binding is None:
                    continue
                yield from _match_body(rest, self.instance, binding)

    # -- deletes (DRed) ------------------------------------------------

    def apply_delete(self, facts: Iterable[Atom]) -> MaintenanceResult:
        """Remove base facts and retract unsupported consequences."""
        requested = [fact for fact in facts if self.base.discard(fact)]
        if self._over_threshold(len(requested)):
            self._rebuild()
            obs.count("hybrid.full_rechase")
            return MaintenanceResult((), (), full_rechase=True)
        with obs.span("hybrid.delete", delta=len(requested)):
            removed = self._over_delete(requested)
            if removed is None:
                # The cascade blew past the budget mid-flight; the
                # instance is already partially retracted, so rebuild.
                self._rebuild()
                obs.count("hybrid.full_rechase")
                return MaintenanceResult((), (), full_rechase=True)
            added, rounds, firings = self._rederive(removed)
        obs.count("hybrid.delta_applied")
        obs.count("hybrid.delta_facts", len(requested))
        still_removed = tuple(
            fact for fact in removed if fact not in self.instance
        )
        return MaintenanceResult(
            added=tuple(added),
            removed=still_removed,
            full_rechase=False,
            rounds=rounds,
            firings=firings,
        )

    def _over_delete(self, requested: Sequence[Atom]) -> list[Atom] | None:
        """DRed overestimate: drain supports transitively.

        Returns the facts actually retracted from the instance, or
        None when the cascade exceeded the fallback budget.
        """
        budget = max(
            MIN_DELTA_FLOOR, int(self.threshold * max(1, len(self.instance)))
        )
        removed: list[Atom] = []
        worklist = [
            fact for fact in requested if not self._supported(fact)
        ]
        while worklist:
            fact = worklist.pop()
            if not self.instance.discard(fact):
                continue
            removed.append(fact)
            if len(removed) > budget:
                return None
            for firing_id in self._uses.get(fact, ()):
                firing = self._firings[firing_id]
                if not firing.valid:
                    continue
                firing.valid = False
                for produced in firing.produced:
                    supports = self._supports.get(produced)
                    if supports is not None:
                        supports.discard(firing_id)
                    if not self._supported(produced):
                        worklist.append(produced)
        return removed

    def _supported(self, fact: Atom) -> bool:
        """A fact stays iff it is base or some valid firing produces it."""
        if fact in self.base:
            return True
        supports = self._supports.get(fact)
        return bool(supports)

    def _rederive(
        self, removed: Sequence[Atom]
    ) -> tuple[list[Atom], int, int]:
        """Re-check rules whose heads touch a retracted relation.

        A trigger suppressed before the deletion can only have become
        live if its satisfying head image lost a fact — i.e. some head
        relation of its rule is among the removed relations.  Existing
        triggers over the shrunken instance are a subset of the old
        ones, so no other rule needs re-enumeration.
        """
        if not removed:
            return [], 0, 0
        affected = {fact.relation for fact in removed}
        added: list[Atom] = []
        firings = 0
        for rule_index, rule in enumerate(self.rules):
            if not any(atom.relation in affected for atom in rule.head):
                continue
            for hom in list(all_homomorphisms(rule.body, self.instance)):
                if _head_satisfied(rule, hom, self.instance):
                    continue
                added.extend(self._record_firing(rule_index, rule, hom))
                firings += 1
                if firings > self.max_steps:
                    raise ChaseBudgetExceeded(
                        f"re-derivation exceeded {self.max_steps} steps"
                    )
        extra, rounds, more = self._propagate(added)
        added.extend(extra)
        return added, rounds + 1, firings + more

    # -- shared --------------------------------------------------------

    def _over_threshold(self, delta_size: int) -> bool:
        bound = max(
            MIN_DELTA_FLOOR,
            int(self.threshold * max(1, len(self.instance))),
        )
        return delta_size > bound

    def check_consistency(self) -> list[str]:
        """Debug invariant check; returns human-readable violations."""
        problems: list[str] = []
        for fact in self.instance.facts():
            if not self._supported(fact):
                problems.append(f"unsupported instance fact: {fact}")
        for fact, supports in self._supports.items():
            for firing_id in supports:
                if not self._firings[firing_id].valid:
                    problems.append(
                        f"invalid firing {firing_id} supports {fact}"
                    )
        reference = self.rechase_reference()
        if _certain_shape(reference) != _certain_shape(self.instance):
            problems.append("instance differs from re-chase reference")
        return problems

    def rechase_reference(self) -> Database:
        """A from-scratch chase of the current base, for differential tests."""
        from repro.chase.chase import restricted_chase

        return restricted_chase(
            self.rules, self.base, max_steps=self.max_steps, strict=True
        ).instance


def _instantiate(atom: Atom, assignment: dict[Variable, Term]) -> Atom:
    terms = [
        assignment[t] if isinstance(t, Variable) else t for t in atom.terms
    ]
    return Atom(atom.relation, terms)


def _bind_atom(atom: Atom, fact: Atom) -> dict[Variable, Term] | None:
    """Match one body atom against one ground fact, or None."""
    if atom.relation != fact.relation or len(atom.terms) != len(fact.terms):
        return None
    binding: dict[Variable, Term] = {}
    for pattern, value in zip(atom.terms, fact.terms):
        if isinstance(pattern, Variable):
            bound = binding.get(pattern)
            if bound is None:
                binding[pattern] = value
            elif bound != value:
                return None
        elif pattern != value:
            return None
    return binding


def _certain_shape(database: Database) -> set[Atom]:
    """Null-free projection: the part of an instance visible to certain answers."""
    from repro.lang.terms import Null

    return {
        fact
        for fact in database.facts()
        if not any(isinstance(term, Null) for term in fact.terms)
    }
