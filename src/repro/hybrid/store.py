"""Materialized-core snapshots: digests and a JSON codec.

A :class:`repro.hybrid.maintain.MaterializedCore` is expensive to
build (a full restricted chase) but cheap to serialize: its state is
the base facts, the closed instance, and the valid firing provenance.
This module turns a core into a JSON payload and back, so the
persistent :class:`repro.api.cache.RewritingCache` can hand a warm
core to the next process the way it already hands out rewritings.

Snapshots are keyed by ``(engine version, core-rules digest, ABox
digest, max_steps)`` — any change to the rules or the data produces a
different key — while each row also carries the *full* ontology digest
so ``evict_ontologies`` retires core snapshots together with the
rewritings of a replaced ontology (the eviction-discipline bugfix this
PR pins with a regression test).

Term encoding reuses the SQL backend's tagged-text codec
(``s:``/``i:``/``n:``), so null labels survive the round trip and the
restored :class:`~repro.chase.nulls.NullFactory` resumes counting past
every label already issued.
"""

from __future__ import annotations

import hashlib
import json
from typing import Sequence

from repro import obs
from repro.data.database import Database
from repro.data.sql import _decode, _encode
from repro.hybrid.maintain import Firing, MaterializedCore
from repro.lang.atoms import Atom
from repro.lang.tgd import TGD
from repro.rewriting.store import ontology_digest

#: Bump when the snapshot layout changes; stale payloads are ignored
#: (the core is rebuilt and re-stored), never misread.
SNAPSHOT_VERSION = 1


def abox_digest(database: Database) -> str:
    """Order-independent digest of a fact set."""
    rows = sorted(
        "".join([fact.relation, *(_encode(t) for t in fact.terms)])
        for fact in database.facts()
    )
    digest = hashlib.sha256()
    for row in rows:
        digest.update(row.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def core_key(
    rules: Sequence[TGD], data_digest: str, max_steps: int
) -> str:
    """Cache key for one (core rules, ABox, budget) combination."""
    return "/".join(
        [
            f"v{SNAPSHOT_VERSION}",
            ontology_digest(tuple(rules)),
            data_digest,
            str(max_steps),
        ]
    )


def encode_core(core: MaterializedCore) -> str:
    """Serialize a core's state (valid provenance only) to JSON."""
    facts = list(core.instance.facts())
    index = {fact: i for i, fact in enumerate(facts)}
    encoded_facts = [
        [fact.relation, [_encode(term) for term in fact.terms]]
        for fact in facts
    ]
    firings = []
    for firing_id, firing in enumerate(core._firings):
        if not firing.valid:
            continue
        supported = [
            index[fact]
            for fact in firing.produced
            if firing_id in core._supports.get(fact, ())
        ]
        firings.append(
            [
                firing.rule_index,
                [index[fact] for fact in firing.body_facts],
                [
                    index[fact]
                    for fact in firing.produced
                    if fact in index
                ],
                supported,
            ]
        )
    payload = {
        "version": SNAPSHOT_VERSION,
        "facts": encoded_facts,
        "base": sorted(index[fact] for fact in core.base.facts()),
        "firings": firings,
        "nulls": core._nulls.created,
    }
    return json.dumps(payload, separators=(",", ":"))


def decode_core(
    payload: str,
    rules: Sequence[TGD],
    *,
    max_steps: int,
    threshold: float,
) -> MaterializedCore | None:
    """Restore a core from :func:`encode_core` output.

    Returns None on any malformed or version-mismatched payload — the
    caller falls back to a fresh chase, exactly like a cache miss.
    """
    try:
        data = json.loads(payload)
        if data.get("version") != SNAPSHOT_VERSION:
            return None
        facts = [
            Atom(relation, [_decode(text) for text in terms])
            for relation, terms in data["facts"]
        ]
        base = Database(facts[i] for i in data["base"])
        core = MaterializedCore(
            rules, Database(), max_steps=max_steps, threshold=threshold
        )
        core.base = base
        core.instance = Database(facts)
        core._firings = []
        core._supports = {}
        core._uses = {}
        for rule_index, body_idx, produced_idx, supported_idx in (
            data["firings"]
        ):
            if not 0 <= rule_index < len(core.rules):
                return None
            firing_id = len(core._firings)
            body_facts = tuple(facts[i] for i in body_idx)
            produced = tuple(facts[i] for i in produced_idx)
            core._firings.append(
                Firing(
                    rule_index=rule_index,
                    body_facts=body_facts,
                    produced=produced,
                )
            )
            for fact in body_facts:
                core._uses.setdefault(fact, set()).add(firing_id)
            for i in supported_idx:
                core._supports.setdefault(facts[i], set()).add(firing_id)
        core._nulls._count = int(data["nulls"])
        return core
    except (KeyError, TypeError, ValueError, IndexError):
        return None


def load_or_build(
    cache: object,
    full_digest: str,
    rules: Sequence[TGD],
    base: Database,
    *,
    max_steps: int,
    threshold: float,
) -> MaterializedCore:
    """Fetch a warm core from *cache* or chase and store a fresh one.

    *cache* is a :class:`repro.api.cache.RewritingCache` (typed loosely
    to keep this layer import-light); *full_digest* is the complete
    ontology's digest used for eviction grouping.  Pass ``cache=None``
    to always build.
    """
    key = core_key(rules, abox_digest(base), max_steps)
    if cache is not None:
        payload = cache.get_core(key)  # type: ignore[attr-defined]
        if payload is not None:
            core = decode_core(
                payload, rules, max_steps=max_steps, threshold=threshold
            )
            if core is not None:
                obs.count("hybrid.core_cache.hits")
                return core
    obs.count("hybrid.core_cache.misses")
    core = MaterializedCore(
        rules, base, max_steps=max_steps, threshold=threshold
    )
    if cache is not None:
        cache.put_core(  # type: ignore[attr-defined]
            key, full_digest, encode_core(core)
        )
    return core
