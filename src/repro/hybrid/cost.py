"""Cost model choosing REWRITE / SPLIT / MATERIALIZE per workload.

The three answering regimes trade query-time work against load-time
work:

* **REWRITE** pays per query: the UCQ rewriting's disjunct count
  (bounded statically by :mod:`repro.checkers.estimator`) multiplies
  every evaluation, but the data is never touched up front.
* **MATERIALIZE** pays once: a terminating chase closes the data under
  *all* rules, after which every query evaluates directly — amortized
  over the expected number of queries served between data changes.
* **SPLIT** materializes only the separable core (the part whose chase
  is certified to terminate) and rewrites the residual, combining a
  small materialization with a much smaller rewriting bound.

Feasibility comes first — MATERIALIZE requires a terminating full
certificate, SPLIT a proper separable partition — and the surviving
candidates are ranked by an explainable unit-cost estimate.  Observed
timings (``engine.*`` / ``serve.*`` counters captured by the caller)
can calibrate the per-disjunct and per-firing unit costs; absent
observations, documented defaults apply.  The decision is exposed via
:class:`HybridDecision` on :class:`repro.obda.strategy.StrategyReport`
and ``repro classify --explain``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import obs
from repro.analysis.separability import SeparabilityReport
from repro.analysis.termination import TerminationCertificate

#: Disjunct bound treated as "effectively unrewritable" when the
#: estimator reports no bound at all.
UNBOUNDED = 10**18

#: Default unit costs, in arbitrary comparable units.  ``observed``
#: timings override them; the ratios are what matters.
DEFAULT_UNIT_COSTS: Mapping[str, float] = {
    # Evaluating one rewriting disjunct against one unit of data.
    "disjunct_eval": 1.0,
    # One chase trigger check / firing over one unit of data.
    "chase_fact": 4.0,
    # Maintaining one delta fact incrementally.
    "delta_fact": 6.0,
}


class HybridChoice(enum.Enum):
    """The answering regime picked for one (ontology, workload) pair."""

    REWRITE = "rewrite"
    SPLIT = "split"
    MATERIALIZE = "materialize"


@dataclass(frozen=True)
class HybridDecision:
    """One cost-model decision, with enough detail to explain it.

    Attributes:
        choice: the selected regime.
        reason: one-line human-readable justification.
        forced: True when the mode was user-pinned rather than chosen
            by cost comparison.
        estimates: per-candidate cost estimates (absent candidates
            were infeasible).
        feasible: the candidate regimes that passed feasibility.
        workload_weight: queries the costs were amortized over.
    """

    choice: HybridChoice
    reason: str
    forced: bool = False
    estimates: Mapping[str, float] = field(default_factory=dict)
    feasible: tuple[str, ...] = ()
    workload_weight: int = 1

    def to_dict(self) -> dict[str, object]:
        return {
            "choice": self.choice.value,
            "reason": self.reason,
            "forced": self.forced,
            "estimates": dict(self.estimates),
            "feasible": list(self.feasible),
            "workload_weight": self.workload_weight,
        }

    @staticmethod
    def pinned(choice: HybridChoice, reason: str) -> "HybridDecision":
        """A user-forced decision that skipped the cost comparison."""
        return HybridDecision(
            choice=choice, reason=reason, forced=True,
            feasible=(choice.value,),
        )


def decide(
    *,
    partition: SeparabilityReport,
    certificate: TerminationCertificate | None = None,
    data_size: int = 0,
    relation_sizes: Mapping[str, int] | None = None,
    observed: Mapping[str, float] | None = None,
    workload_weight: int = 1,
    mode: str = "auto",
) -> HybridDecision:
    """Pick an answering regime for one (ontology, workload) pair.

    *partition* is the separability report (its ``full_certificate``
    doubles as the termination certificate unless one is passed
    explicitly); *data_size* and *relation_sizes* come from the live
    backend; *observed* maps unit-cost names to calibrated values;
    *workload_weight* is the number of queries expected between data
    changes (amortizes materialization).
    """
    certificate = certificate or partition.full_certificate
    workload_weight = max(1, workload_weight)
    if mode not in ("auto", "rewrite", "split", "materialize"):
        raise ValueError(f"unknown hybrid mode: {mode!r}")
    if mode != "auto":
        choice = HybridChoice(mode)
        decision = _check_pinned(choice, partition, certificate)
        _count(decision)
        return decision

    units = dict(DEFAULT_UNIT_COSTS)
    if observed:
        units.update(
            (key, value) for key, value in observed.items()
            if key in DEFAULT_UNIT_COSTS and value > 0
        )
    size = max(1, data_size)
    full_bound = _bound(partition.full_bound)
    residual_bound = _bound(partition.residual_bound)

    estimates: dict[str, float] = {}
    feasible: list[str] = []

    # REWRITE: every query pays the full rewriting's disjunct fan-out.
    estimates["rewrite"] = (
        workload_weight * full_bound * units["disjunct_eval"]
    )
    feasible.append("rewrite")

    # MATERIALIZE: one terminating chase over everything, then each
    # query evaluates a single disjunct-free pattern.
    if certificate.terminating:
        estimates["materialize"] = (
            size * units["chase_fact"]
            + workload_weight * units["disjunct_eval"]
        )
        feasible.append("materialize")

    # SPLIT: chase only the core's share of the data, rewrite the
    # residual with its (smaller) disjunct bound.
    if partition.proper:
        core_share = _core_share(partition, relation_sizes, size)
        estimates["split"] = (
            core_share * units["chase_fact"]
            + workload_weight * residual_bound * units["disjunct_eval"]
        )
        feasible.append("split")

    best = min(feasible, key=lambda name: (estimates[name], name))
    decision = HybridDecision(
        choice=HybridChoice(best),
        reason=_explain(best, estimates, workload_weight),
        estimates=estimates,
        feasible=tuple(feasible),
        workload_weight=workload_weight,
    )
    _count(decision)
    return decision


def _check_pinned(
    choice: HybridChoice,
    partition: SeparabilityReport,
    certificate: TerminationCertificate,
) -> HybridDecision:
    """Validate a user-pinned mode against hard feasibility limits."""
    if choice is HybridChoice.MATERIALIZE and not certificate.terminating:
        return HybridDecision(
            choice=HybridChoice.REWRITE,
            reason=(
                "materialize pinned but the chase has no termination "
                "certificate; falling back to rewriting"
            ),
            forced=True,
            feasible=("rewrite",),
        )
    if choice is HybridChoice.SPLIT and not partition.proper:
        fallback = (
            HybridChoice.MATERIALIZE
            if certificate.terminating
            else HybridChoice.REWRITE
        )
        return HybridDecision(
            choice=fallback,
            reason=(
                "split pinned but the partition is not proper "
                f"(core={len(partition.core)}, "
                f"residual={len(partition.residual)}); "
                f"falling back to {fallback.value}"
            ),
            forced=True,
            feasible=(fallback.value,),
        )
    return HybridDecision.pinned(choice, f"mode pinned to {choice.value}")


def _bound(bound: int | None) -> int:
    if bound is None:
        return UNBOUNDED
    return max(1, min(bound, UNBOUNDED))


def _core_share(
    partition: SeparabilityReport,
    relation_sizes: Mapping[str, int] | None,
    size: int,
) -> float:
    """Data volume the core chase actually reads.

    With live relation cardinalities, sum the relations mentioned in
    core-rule bodies; otherwise assume the core sees everything.
    """
    if not relation_sizes:
        return float(size)
    touched = {
        atom.relation
        for rule in partition.core
        for atom in rule.body
    }
    share = sum(relation_sizes.get(name, 0) for name in touched)
    return float(max(1, share))


def _explain(
    best: str, estimates: Mapping[str, float], workload_weight: int
) -> str:
    ranked = sorted(estimates.items(), key=lambda item: (item[1], item[0]))
    shown = ", ".join(f"{name}={cost:.0f}" for name, cost in ranked)
    return (
        f"{best} has the lowest estimated cost over a "
        f"{workload_weight}-query workload ({shown})"
    )


def _count(decision: HybridDecision) -> None:
    obs.count(f"hybrid.decision.{decision.choice.value}")
    obs.event(
        "hybrid.decision",
        choice=decision.choice.value,
        forced=decision.forced,
        reason=decision.reason,
    )
