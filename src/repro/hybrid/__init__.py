"""Cost-based hybrid answering: partial materialization + maintenance.

The paper's central trade-off — rewrite at query time vs. chase at
load time — becomes a per-(ontology, workload) *decision* here instead
of a global switch:

* :mod:`repro.hybrid.cost` ranks REWRITE / SPLIT / MATERIALIZE with an
  explainable cost model fed by the separability partition, the static
  disjunct-bound estimator, and live relation cardinalities;
* :mod:`repro.hybrid.maintain` owns the materialized chase core and
  keeps it fresh under ABox inserts/deletes with a provenance-tracked
  delta chase (semi-naive inserts, DRed deletes) instead of a full
  re-chase;
* :mod:`repro.hybrid.store` snapshots a built core into the persistent
  rewriting cache so later processes skip the initial chase.

:class:`repro.api.Session` is the integration point (``options.hybrid``
plus ``Session.insert`` / ``Session.delete``); ``repro classify
--explain`` prints the decision.
"""

from repro.hybrid.cost import HybridChoice, HybridDecision, decide
from repro.hybrid.maintain import (
    DEFAULT_THRESHOLD,
    MaintenanceResult,
    MaterializedCore,
)
from repro.hybrid.store import (
    abox_digest,
    core_key,
    decode_core,
    encode_core,
    load_or_build,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "HybridChoice",
    "HybridDecision",
    "MaintenanceResult",
    "MaterializedCore",
    "abox_digest",
    "core_key",
    "decode_core",
    "decide",
    "encode_core",
    "load_or_build",
]
