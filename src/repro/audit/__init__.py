"""Concurrency/async static analyzer + runtime lock-order sanitizer.

``repro audit <path>`` runs the RL300--RL314 pass family over Python
source trees (the project's own code, or user extension code) and
reports through the shared lint diagnostic stack: same renderers
(text/json/sarif), same ``--strict`` exit-code contract.

See ``docs/lint.md`` for the code catalogue and ``docs/concurrency.md``
for the lock inventory and sanctioned acquisition order the passes and
the sanitizer enforce.
"""

from repro.audit.engine import (
    AUDIT_REGISTRY,
    AUDIT_SECONDARY_CODES,
    AUDIT_STAGES,
    AuditConfig,
    AuditSpec,
    all_audit_codes,
    audit_code_names,
    audit_files,
    audit_paths,
)
from repro.audit.model import AuditFile, iter_python_files, load_audit_file
from repro.audit.order import DECLARED_ORDER, group_of, rank_of

__all__ = [
    "AUDIT_REGISTRY",
    "AUDIT_SECONDARY_CODES",
    "AUDIT_STAGES",
    "AuditConfig",
    "AuditFile",
    "AuditSpec",
    "DECLARED_ORDER",
    "all_audit_codes",
    "audit_code_names",
    "audit_files",
    "audit_paths",
    "group_of",
    "iter_python_files",
    "load_audit_file",
    "rank_of",
]
