"""Asyncio/thread lifecycle passes (RL310--RL312).

* **RL310 (loop-not-closed)** -- a function calls
  ``asyncio.new_event_loop()`` but never ``.close()``es any loop on
  any path.  A leaked loop keeps its selector FD and internal threads
  alive for the life of the process; the close belongs in a
  ``finally``.
* **RL311 (run-forever-no-join)** -- a class runs an event loop
  forever on some thread (``loop.run_forever()``) but no method of the
  class ever ``join``s a thread: there is no shutdown path that
  guarantees the loop thread has actually exited before the process
  (or the test) moves on.
* **RL312 (unbounded-wait, info)** -- ``.result()`` / ``.wait()``
  without a timeout on a future/event/thread-shaped receiver, or a
  bare ``.join()`` on a thread-shaped one.  These park the calling
  thread forever if the peer never completes; a timeout turns a
  wedged system into a diagnosable error.  Info-level: often the
  receiver is known-complete (e.g. futures out of ``as_completed``)
  -- suppress with a justification where that is the case.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.audit.model import AuditFile, dotted_name
from repro.lint.diagnostics import Diagnostic, Severity

#: RL312 receiver-name heuristic: last dotted segment must contain one
#: of these to count as a concurrency primitive.
_WAITY_RECEIVERS = ("future", "thread", "event", "task", "started", "done")


def pass_loop_not_closed(files: Sequence[AuditFile]) -> Iterator[Diagnostic]:
    """RL310: ``new_event_loop()`` without a close in the same function."""
    for file in files:
        if file.tree is None:
            continue
        for scope in ast.walk(file.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            creation: ast.Call | None = None
            closes = False
            for node in ast.walk(scope):
                if isinstance(node, ast.Call):
                    name = file.resolved_call(dotted_name(node.func)) or ""
                    if name.endswith("new_event_loop") and creation is None:
                        creation = node
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "close"
                    ):
                        closes = True
            if creation is not None and not closes:
                yield Diagnostic(
                    code="RL310",
                    severity=Severity.WARNING,
                    message=(
                        f"event loop created in {scope.name}() is never "
                        "closed: its selector FD leaks for the process "
                        "lifetime"
                    ),
                    span=file.span(creation),
                    file=file.path,
                    hint="close the loop in a finally block",
                )


def pass_run_forever_no_join(
    files: Sequence[AuditFile],
) -> Iterator[Diagnostic]:
    """RL311: a run-forever loop thread with no join path in the class."""
    for file in files:
        for cls in file.classes:
            run_forever_sites: list[ast.Call] = []
            joins = False
            for method in cls.methods.values():
                for node in ast.walk(method):
                    if isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute
                    ):
                        if node.func.attr == "run_forever":
                            run_forever_sites.append(node)
                        elif node.func.attr == "join":
                            joins = True
            if joins:
                continue
            for site in run_forever_sites:
                yield Diagnostic(
                    code="RL311",
                    severity=Severity.WARNING,
                    message=(
                        f"{cls.name} runs an event loop forever but no "
                        "method joins the loop thread: shutdown cannot "
                        "prove the thread exited"
                    ),
                    span=file.span(site),
                    file=file.path,
                    hint="stop the loop via call_soon_threadsafe(loop.stop) "
                    "and join the thread (with a timeout) in the stop path",
                )


def _has_timeout(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(keyword.arg == "timeout" for keyword in call.keywords)


def pass_unbounded_wait(files: Sequence[AuditFile]) -> Iterator[Diagnostic]:
    """RL312 (info): result/wait/join without a timeout."""
    for file in files:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            receiver = dotted_name(node.func.value)
            if receiver is None:
                continue
            tail = receiver.rsplit(".", 1)[-1].lower()
            waity = any(piece in tail for piece in _WAITY_RECEIVERS)
            if not waity:
                continue
            method = node.func.attr
            if method not in ("result", "wait", "join"):
                continue
            if _has_timeout(node):
                continue
            yield Diagnostic(
                code="RL312",
                severity=Severity.INFO,
                message=(
                    f"{receiver}.{method}() without a timeout can park "
                    "this thread forever if the peer never completes"
                ),
                span=file.span(node),
                file=file.path,
                hint="pass timeout=... and handle the expiry "
                "(or justify why completion is guaranteed)",
            )
