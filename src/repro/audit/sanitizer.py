"""Runtime lock-order sanitizer: observe every acquisition, fail on inversions.

The static pass (RL300) sees lexical nesting; it cannot see an order
inversion that only materialises when two call chains interleave at
runtime.  This module closes that gap the way TSan's deadlock detector
does, scaled down to this codebase:

* :func:`install` monkey-wraps :func:`threading.Lock` and
  :func:`threading.RLock`.  Locks allocated by ``repro`` modules are
  replaced with tracked proxies (allocation site = ``module:lineno``);
  locks allocated anywhere else are returned untouched, so stdlib
  internals are never perturbed.
* Each thread keeps a stack of tracked locks it currently holds.
  Acquiring lock *B* while holding lock *A* records the edge
  ``A -> B`` in a process-wide acquisition-order graph.
* A **violation** is recorded when an acquisition (a) inverts the
  statically declared order of :mod:`repro.audit.order` -- acquiring
  an outer-group lock while holding an inner-group one -- or (b)
  inverts an edge already observed the other way around (a cycle of
  length two in the observed graph: the classic ABBA deadlock
  pattern, caught even if the schedule never actually deadlocks).

The sanitizer is wired into the test suite by ``tests/conftest.py``
under ``REPRO_LOCK_SANITIZER=1`` (the nightly CI job runs tier-1 that
way) and fails the run if any violation was recorded.  Overhead is a
dict lookup and a couple of list operations per acquisition --
negligible next to the lock syscall itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.audit.order import DECLARED_ORDER, rank_of

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


@dataclass(frozen=True)
class Violation:
    """One recorded acquisition-order inversion."""

    kind: str  # "declared-order" | "observed-inversion"
    held_site: str
    acquired_site: str
    thread: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] thread {self.thread}: acquired lock from "
            f"{self.acquired_site} while holding {self.held_site}"
        )


class _State:
    """Process-wide sanitizer state (edges, violations, config)."""

    def __init__(self, declared_order: tuple[str, ...]) -> None:
        self.declared_order = declared_order
        self.guard = _REAL_LOCK()
        # (held_site, acquired_site) -> first witness thread name.
        self.edges: dict[tuple[str, str], str] = {}
        self.violations: list[Violation] = []
        self.local = threading.local()

    def held_stack(self) -> list["TrackedLock"]:
        stack = getattr(self.local, "stack", None)
        if stack is None:
            stack = []
            self.local.stack = stack
        return stack

    def record_acquired(self, lock: "TrackedLock") -> None:
        stack = self.held_stack()
        held_sites = {
            held.site for held in stack if held.site != lock.site
        }
        thread = threading.current_thread().name
        with self.guard:
            for held_site in held_sites:
                edge = (held_site, lock.site)
                if edge not in self.edges:
                    self.edges[edge] = thread
                held_rank = rank_of(held_site)
                acquired_rank = rank_of(lock.site)
                if (
                    held_rank is not None
                    and acquired_rank is not None
                    and acquired_rank < held_rank
                ):
                    self.violations.append(
                        Violation(
                            "declared-order", held_site, lock.site, thread
                        )
                    )
                elif (lock.site, held_site) in self.edges:
                    self.violations.append(
                        Violation(
                            "observed-inversion", held_site, lock.site, thread
                        )
                    )
        stack.append(lock)

    def record_released(self, lock: "TrackedLock") -> None:
        stack = self.held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return


class TrackedLock:
    """Proxy around a real Lock/RLock that reports to the sanitizer."""

    def __init__(self, state: _State, site: str, reentrant: bool) -> None:
        self._state = state
        self.site = site
        self._reentrant = reentrant
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._depth = 0  # this thread's reentry depth is inner-guarded

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            if self._reentrant and self._already_held():
                # Reentry: no new edge, but track depth for release.
                self._state.held_stack().append(self)
            else:
                self._state.record_acquired(self)
        return acquired

    def _already_held(self) -> bool:
        return any(held is self for held in self._state.held_stack())

    def release(self) -> None:
        self._state.record_released(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "RLock" if self._reentrant else "Lock"
        return f"<tracked {kind} from {self.site}>"


_state: _State | None = None
_installed = False


def _allocation_site() -> str | None:
    """``module:lineno`` of the frame allocating the lock, repro-only."""
    import sys

    frame = sys._getframe(2)
    module = frame.f_globals.get("__name__", "")
    if not isinstance(module, str) or not module.startswith("repro"):
        return None
    return f"{module}:{frame.f_lineno}"


def _make_lock(*args: Any, **kwargs: Any) -> Any:
    site = _allocation_site()
    if _state is None or site is None:
        return _REAL_LOCK(*args, **kwargs)
    return TrackedLock(_state, site, reentrant=False)


def _make_rlock(*args: Any, **kwargs: Any) -> Any:
    site = _allocation_site()
    if _state is None or site is None:
        return _REAL_RLOCK(*args, **kwargs)
    return TrackedLock(_state, site, reentrant=True)


def install(declared_order: tuple[str, ...] = DECLARED_ORDER) -> None:
    """Start tracking: wrap Lock/RLock allocation for repro modules."""
    global _state, _installed
    if _installed:
        return
    _state = _State(declared_order)
    threading.Lock = _make_lock  # type: ignore[misc, assignment]
    threading.RLock = _make_rlock  # type: ignore[misc, assignment]
    _installed = True


def uninstall() -> None:
    """Stop tracking; already-created tracked locks keep working."""
    global _installed
    if not _installed:
        return
    threading.Lock = _REAL_LOCK  # type: ignore[misc]
    threading.RLock = _REAL_RLOCK  # type: ignore[misc]
    _installed = False


def reset() -> None:
    """Drop recorded edges and violations (state survives reinstall)."""
    if _state is not None:
        with _state.guard:
            _state.edges.clear()
            _state.violations.clear()


def installed() -> bool:
    return _installed


def violations() -> tuple[Violation, ...]:
    """Every inversion recorded since install/reset."""
    if _state is None:
        return ()
    with _state.guard:
        return tuple(_state.violations)


def observed_edges() -> dict[tuple[str, str], str]:
    """The acquisition-order edges observed so far (copy)."""
    if _state is None:
        return {}
    with _state.guard:
        return dict(_state.edges)


def enabled_from_env() -> bool:
    """True iff ``REPRO_LOCK_SANITIZER`` asks for sanitized runs."""
    import os

    return os.environ.get("REPRO_LOCK_SANITIZER", "").strip() not in (
        "",
        "0",
        "false",
    )


def report() -> str:
    """Human-readable summary for the pytest plugin's failure output."""
    lines = [
        f"lock-order sanitizer: {len(violations())} violation(s), "
        f"{len(observed_edges())} observed acquisition edge(s)"
    ]
    lines.extend(f"  {violation}" for violation in violations())
    return "\n".join(lines)
