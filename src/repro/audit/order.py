"""The sanctioned lock acquisition order of this codebase.

Locks are grouped by the module that allocates them; the list below is
the *outer-to-inner* order in which a single thread may hold them.
Acquiring a lock from an earlier group while holding one from a later
group is an inversion -- the runtime sanitizer
(:mod:`repro.audit.sanitizer`) fails the test suite on it, and
``docs/concurrency.md`` documents the rationale per group.

The order follows the request path of the serving layer::

    TenantRegistry -> Session -> PreparedQuery -> FORewritingEngine
        -> RewritingCache (persistent tier) -> subsumption kernel
        -> SQLiteBackend -> fresh-symbol counters

plus the admission controller, whose lock is independent (held only
for counter updates, never across a call into the session layer); it
sits between the registry and the session so holding it while
touching either direction is flagged.

Modules not listed are unordered: the sanitizer still detects cycles
among them (observed-inversion check) but no declared-order violation
applies.
"""

from __future__ import annotations

#: Outer-to-inner module groups of every lock in the codebase.
DECLARED_ORDER: tuple[str, ...] = (
    "repro.serve.tenants",
    "repro.serve.admission",
    "repro.api.session",
    "repro.api.prepared",
    "repro.rewriting.engine",
    "repro.api.cache",
    "repro.rewriting.subsume",
    "repro.data.sql",
    "repro.lang.terms",
)


def group_of(site: str) -> str | None:
    """The declared-order group of an allocation site (module prefix).

    *site* is ``<module>:<lineno>`` as recorded by the sanitizer; the
    group is the longest declared module that prefixes it.
    """
    module = site.rsplit(":", 1)[0]
    best: str | None = None
    for candidate in DECLARED_ORDER:
        if module == candidate or module.startswith(candidate + "."):
            if best is None or len(candidate) > len(best):
                best = candidate
    return best


def rank_of(site: str) -> int | None:
    """Index of *site*'s group in :data:`DECLARED_ORDER`, or None."""
    group = group_of(site)
    if group is None:
        return None
    return DECLARED_ORDER.index(group)
