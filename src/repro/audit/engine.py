"""The audit pass pipeline: ``repro audit`` over Python source trees.

Mirrors :mod:`repro.lint.engine` structurally -- a registry of passes
with stable public codes, a config with stages/disabled sets, and a
:class:`~repro.lint.diagnostics.LintReport` out the other end so the
shared renderers, ``--strict`` gating and exit-code contract apply
unchanged.  The unit of analysis is a set of *Python files* (the
project's own source, or user extension code) instead of a TGD
program.

Suppressions are inline: ``# audit: ok[RL303] justification`` on the
finding's line (or the line above) drops it.  The justification text
is mandatory -- a bare marker suppresses nothing and is itself
reported (RL313 family), so every silenced finding carries its
rationale in the diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro import obs
from repro.audit.asyncpasses import (
    pass_blocking_db_in_async,
    pass_blocking_io_in_async,
    pass_sleep_in_async,
    pass_sync_lock_in_async,
)
from repro.audit.executors import (
    pass_done_callback_swallows,
    pass_future_dropped,
    pass_spawn_unpicklable,
)
from repro.audit.lifecycle import (
    pass_loop_not_closed,
    pass_run_forever_no_join,
    pass_unbounded_wait,
)
from repro.audit.locks import (
    pass_lock_order,
    pass_manual_acquire,
    pass_unguarded_shared_write,
)
from repro.audit.model import AuditFile, iter_python_files
from repro.lint.diagnostics import Diagnostic, LintReport, Severity

AuditPass = Callable[[Sequence[AuditFile]], Iterator[Diagnostic]]


@dataclass(frozen=True)
class AuditSpec:
    """One registered audit pass: code, name, stage, callable."""

    code: str
    name: str
    stage: str  # "locks" | "async" | "executors" | "lifecycle"
    run: AuditPass


#: Every pass, in pipeline order.  Codes are stable public API.
AUDIT_REGISTRY: tuple[AuditSpec, ...] = (
    AuditSpec("RL300", "lock-order-cycle", "locks", pass_lock_order),
    AuditSpec("RL301", "manual-acquire", "locks", pass_manual_acquire),
    AuditSpec("RL302", "unguarded-shared-write", "locks", pass_unguarded_shared_write),
    AuditSpec("RL303", "sleep-in-async", "async", pass_sleep_in_async),
    AuditSpec("RL304", "blocking-db-in-async", "async", pass_blocking_db_in_async),
    AuditSpec("RL305", "blocking-io-in-async", "async", pass_blocking_io_in_async),
    AuditSpec("RL306", "sync-lock-in-async", "async", pass_sync_lock_in_async),
    AuditSpec("RL307", "future-dropped", "executors", pass_future_dropped),
    AuditSpec("RL308", "done-callback-swallows", "executors", pass_done_callback_swallows),
    AuditSpec("RL309", "spawn-unpicklable", "executors", pass_spawn_unpicklable),
    AuditSpec("RL310", "loop-not-closed", "lifecycle", pass_loop_not_closed),
    AuditSpec("RL311", "run-forever-no-join", "lifecycle", pass_run_forever_no_join),
    AuditSpec("RL312", "unbounded-wait", "lifecycle", pass_unbounded_wait),
)

#: Codes emitted by the driver itself, not a registered pass.
AUDIT_SECONDARY_CODES: dict[str, str] = {
    "RL313": "unparsable-file",
    "RL314": "unjustified-suppression",
}

AUDIT_STAGES: tuple[str, ...] = ("locks", "async", "executors", "lifecycle")


def all_audit_codes() -> tuple[str, ...]:
    """Every diagnostic code the auditor can emit, sorted."""
    return tuple(
        sorted(
            {spec.code for spec in AUDIT_REGISTRY} | set(AUDIT_SECONDARY_CODES)
        )
    )


def audit_code_names() -> dict[str, str]:
    """code -> short kebab-case name, for SARIF rule metadata."""
    out = {spec.code: spec.name for spec in AUDIT_REGISTRY}
    out.update(AUDIT_SECONDARY_CODES)
    return dict(sorted(out.items()))


@dataclass(frozen=True)
class AuditConfig:
    """Knobs of one audit run.

    Attributes:
        stages: which pass stages run.
        disabled: diagnostic codes to suppress globally.
    """

    stages: tuple[str, ...] = AUDIT_STAGES
    disabled: frozenset[str] = field(default_factory=frozenset)


def audit_files(
    files: Sequence[AuditFile],
    config: AuditConfig | None = None,
    path: str = "<audit>",
) -> LintReport:
    """Run every registered pass over parsed *files*."""
    config = config or AuditConfig()
    diagnostics: list[Diagnostic] = []
    parsed = [file for file in files if file.tree is not None]
    for file in files:
        if file.error is not None:
            diagnostics.append(
                Diagnostic(
                    code="RL313",
                    severity=Severity.ERROR,
                    message=f"cannot parse: {file.error.msg}",
                    span=file.span_at_line(file.error.lineno or 1),
                    file=file.path,
                )
            )
        for lineno in file.bare_suppressions():
            diagnostics.append(
                Diagnostic(
                    code="RL314",
                    severity=Severity.WARNING,
                    message=(
                        "suppression marker without a justification: "
                        "`# audit: ok[...]` must say why"
                    ),
                    span=file.span_at_line(lineno),
                    file=file.path,
                    hint="append the reason after the bracket, e.g. "
                    "`# audit: ok[RL312] future is done (as_completed)`",
                )
            )
    by_path = {file.path: file for file in files}
    with obs.span("audit.run", files=len(files)):
        for spec in AUDIT_REGISTRY:
            if spec.stage not in config.stages:
                continue
            for diagnostic in spec.run(parsed):
                if diagnostic.code in config.disabled:
                    continue
                if _suppressed(diagnostic, by_path):
                    obs.count("audit.suppressed")
                    continue
                diagnostics.append(diagnostic)
    report = LintReport.of(
        (d for d in diagnostics if d.code not in config.disabled), path=path
    )
    obs.count("audit.files", len(files))
    obs.count("audit.findings", len(report))
    return report


def _suppressed(diagnostic: Diagnostic, by_path: dict[str, AuditFile]) -> bool:
    if diagnostic.file is None or diagnostic.span is None:
        return False
    file = by_path.get(diagnostic.file)
    if file is None:
        return False
    return file.suppressed(diagnostic.code, diagnostic.span.line)


def audit_paths(
    paths: Sequence[str | Path],
    config: AuditConfig | None = None,
) -> LintReport:
    """Audit every ``.py`` file under *paths* (files or directories).

    Unreadable paths raise (:class:`FileNotFoundError`/:class:`OSError`)
    -- the CLI maps them to exit 2; syntax errors in readable files
    become RL313 diagnostics instead.
    """
    resolved = iter_python_files([str(p) for p in paths])
    files = [AuditFile(str(p), Path(p).read_text()) for p in resolved]
    display = ", ".join(str(p) for p in paths)
    return audit_files(files, config, path=display)
