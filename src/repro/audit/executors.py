"""Executor-hygiene passes (RL307--RL309).

``concurrent.futures`` makes three silent-failure modes easy to write:

* **RL307 (future-dropped)** -- ``executor.submit(...)`` (or
  ``loop.create_task`` / ``asyncio.ensure_future``) as a bare
  expression statement.  Nobody holds the future, so its exception is
  swallowed when it is garbage collected and its completion can never
  be awaited or joined.
* **RL308 (done-callback-swallows)** -- an ``add_done_callback``
  whose callback never consults the future it receives
  (``.exception()`` / ``.result()``): a failed task completes
  "successfully" as far as the callback chain is concerned.  Release
  paths wired through done-callbacks (the admission controller's
  ticket release) must branch on the outcome or errors disappear.
* **RL309 (spawn-unpicklable)** -- work shipped to a
  ``ProcessPoolExecutor`` that cannot survive pickling: lambdas,
  functions nested in the enclosing scope, or ``initargs``/arguments
  mentioning ``self`` (which drags the whole object graph -- locks,
  sockets, SQLite handles -- across the spawn boundary).
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.audit.model import AuditFile, dotted_name
from repro.lint.diagnostics import Diagnostic, Severity

_SPAWNING_CALLS = frozenset(
    {"asyncio.ensure_future"}
)
_SPAWNING_METHODS = frozenset({"submit", "create_task"})


def _module_functions(file: AuditFile) -> dict[str, ast.FunctionDef]:
    assert file.tree is not None
    return {
        node.name: node
        for node in file.tree.body
        if isinstance(node, ast.FunctionDef)
    }


def pass_future_dropped(files: Sequence[AuditFile]) -> Iterator[Diagnostic]:
    """RL307: a submitted future discarded on the spot."""
    for file in files:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
            ):
                continue
            call = node.value
            name = file.resolved_call(dotted_name(call.func))
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            spawning = name in _SPAWNING_CALLS or (
                "." in name and tail in _SPAWNING_METHODS
            )
            if not spawning:
                continue
            yield Diagnostic(
                code="RL307",
                severity=Severity.WARNING,
                message=(
                    f"{name}(...) discards its future: exceptions are "
                    "swallowed and completion cannot be awaited"
                ),
                span=file.span(node),
                file=file.path,
                hint="keep the future (await/collect it) or attach an "
                "add_done_callback that checks .exception()",
            )


def _callback_checks_outcome(
    callback: ast.expr, file: AuditFile
) -> bool | None:
    """Does the done-callback consult its future?  None = unresolvable."""
    if isinstance(callback, ast.Lambda):
        if len(callback.args.args) != 1:
            return None
        param = callback.args.args[0].arg
        return _body_consults(callback.body, param)
    name = dotted_name(callback)
    if name is None:
        return None
    fn = _module_functions(file).get(name)
    if fn is None or not fn.args.args:
        return None
    param = fn.args.args[0].arg
    return any(_body_consults(statement, param) for statement in fn.body)


def _body_consults(node: ast.AST, param: str) -> bool:
    for inner in ast.walk(node):
        if (
            isinstance(inner, ast.Attribute)
            and inner.attr in ("exception", "result", "cancelled")
            and isinstance(inner.value, ast.Name)
            and inner.value.id == param
        ):
            return True
    return False


def pass_done_callback_swallows(
    files: Sequence[AuditFile],
) -> Iterator[Diagnostic]:
    """RL308: done-callbacks that ignore the future's outcome."""
    for file in files:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_done_callback"
                and node.args
            ):
                continue
            checks = _callback_checks_outcome(node.args[0], file)
            if checks is not False:
                continue
            yield Diagnostic(
                code="RL308",
                severity=Severity.WARNING,
                message=(
                    "done-callback never consults the future: a failed "
                    "task is silently treated as success"
                ),
                span=file.span(node),
                file=file.path,
                hint="branch on future.exception() (or .result()) inside "
                "the callback",
            )


def _contains_self(node: ast.expr) -> bool:
    return any(
        isinstance(inner, ast.Name) and inner.id == "self"
        for inner in ast.walk(node)
    )


def pass_spawn_unpicklable(files: Sequence[AuditFile]) -> Iterator[Diagnostic]:
    """RL309: lambdas / nested defs / ``self`` shipped to a process pool."""
    for file in files:
        if file.tree is None:
            continue
        module_fns = set(_module_functions(file))
        for scope in ast.walk(file.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nested = {
                inner.name
                for inner in ast.walk(scope)
                if isinstance(inner, ast.FunctionDef) and inner is not scope
            } - module_fns
            pool_names: set[str] = set()
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and (
                        file.resolved_call(dotted_name(node.value.func))
                        or ""
                    ).endswith("ProcessPoolExecutor")
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    pool_names.add(node.targets[0].id)
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                name = file.resolved_call(dotted_name(node.func)) or ""
                if name.endswith("ProcessPoolExecutor"):
                    yield from _check_spawn_args(
                        file, node, node.keywords, nested
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pool_names
                    and node.args
                ):
                    yield from _check_spawn_payload(
                        file, node, node.args[0], nested, "submit target"
                    )


def _check_spawn_args(
    file: AuditFile,
    call: ast.Call,
    keywords: list[ast.keyword],
    nested: set[str],
) -> Iterator[Diagnostic]:
    for keyword in keywords:
        if keyword.arg == "initializer":
            yield from _check_spawn_payload(
                file, call, keyword.value, nested, "initializer"
            )
        elif keyword.arg == "initargs" and _contains_self(keyword.value):
            yield Diagnostic(
                code="RL309",
                severity=Severity.WARNING,
                message=(
                    "ProcessPoolExecutor initargs capture `self`: the "
                    "whole object graph (locks, handles) must pickle "
                    "across the spawn boundary"
                ),
                span=file.span(call),
                file=file.path,
                hint="pass plain values (tuples, frozen dataclasses) "
                "instead of live objects",
            )


def _check_spawn_payload(
    file: AuditFile,
    call: ast.Call,
    payload: ast.expr,
    nested: set[str],
    what: str,
) -> Iterator[Diagnostic]:
    problem: str | None = None
    if isinstance(payload, ast.Lambda):
        problem = "a lambda"
    else:
        name = dotted_name(payload)
        if name is not None and name in nested:
            problem = f"the nested function {name!r}"
        elif name is not None and name.startswith("self."):
            problem = f"the bound method {name!r}"
    if problem is None:
        return
    yield Diagnostic(
        code="RL309",
        severity=Severity.WARNING,
        message=(
            f"process-pool {what} is {problem}: spawn workers "
            "cannot unpickle it"
        ),
        span=file.span(call),
        file=file.path,
        hint="use a module-level function (spawn workers import it by "
        "qualified name)",
    )
