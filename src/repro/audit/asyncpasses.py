"""Blocking-call-in-async passes (RL303--RL306).

An ``async def`` body runs on the event loop; any call that blocks the
calling thread stalls *every* connection the loop is serving.  The
serving layer's contract is that blocking work (rewriting compilation,
SQLite evaluation, file I/O) happens on executor threads --
``run_in_executor`` / ``asyncio.wait_for`` -- never inline in a
coroutine.  These passes enforce that contract syntactically:

* **RL303** -- ``time.sleep`` in a coroutine (use ``asyncio.sleep``);
* **RL304** -- database/compilation work in a coroutine:
  ``sqlite3.connect``, cursor ``execute``/``executemany``/``commit``,
  or the session layer's compile entry points
  (``.prepare(...)``/``.answer(...)``/``.warm_up(...)``) -- exactly
  the calls ``repro serve`` must route through its executor;
* **RL305** -- blocking file I/O in a coroutine: ``open``,
  ``Path.read_text``/``write_text``/``read_bytes``/``write_bytes``,
  ``subprocess.run``/``check_*``, ``os.system``;
* **RL306** -- synchronous ``threading`` lock use in a coroutine
  (``with self._lock:`` or ``lock.acquire()``): the loop thread can
  park on it indefinitely while holding every other connection
  hostage (use ``asyncio.Lock``, or move the critical section onto an
  executor thread).

The receiver-name heuristics are deliberately shallow (no type
inference); each diagnostic names the call it matched so a false
positive is a one-line justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.audit.locks import resolve_lock
from repro.audit.model import AuditFile, ClassModel, dotted_name
from repro.lint.diagnostics import Diagnostic, Severity

#: RL304: dotted callee names (resolved through imports) that hit the
#: database or compile a rewriting.
_DB_CALLS = frozenset({"sqlite3.connect"})
_DB_METHODS = frozenset({"execute", "executemany", "executescript", "commit"})
_COMPILE_METHODS = frozenset({"prepare", "answer", "answer_many", "warm_up"})

#: RL305: blocking file/process I/O.
_IO_CALLS = frozenset(
    {
        "open",
        "os.system",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    }
)
_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _async_functions(
    file: AuditFile,
) -> Iterator[tuple[ClassModel | None, ast.AsyncFunctionDef]]:
    if file.tree is None:
        return
    method_ids = {
        id(method): cls
        for cls in file.classes
        for method in cls.methods.values()
    }
    for node in ast.walk(file.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield method_ids.get(id(node)), node


def _calls_in(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically inside *fn*, skipping nested (sync) functions.

    A ``def`` nested in a coroutine typically *is* the blocking work
    being shipped to an executor; its body does not run on the loop.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def pass_sleep_in_async(files: Sequence[AuditFile]) -> Iterator[Diagnostic]:
    """RL303: ``time.sleep`` on the event loop."""
    for file in files:
        for _cls, fn in _async_functions(file):
            for call in _calls_in(fn):
                name = file.resolved_call(dotted_name(call.func))
                if name == "time.sleep":
                    yield Diagnostic(
                        code="RL303",
                        severity=Severity.WARNING,
                        message=(
                            f"time.sleep() inside async def {fn.name}: "
                            "blocks the event loop"
                        ),
                        span=file.span(call),
                        file=file.path,
                        hint="await asyncio.sleep(...) instead",
                    )


def pass_blocking_db_in_async(
    files: Sequence[AuditFile],
) -> Iterator[Diagnostic]:
    """RL304: database access / rewriting compilation on the loop."""
    for file in files:
        for _cls, fn in _async_functions(file):
            for call in _calls_in(fn):
                name = file.resolved_call(dotted_name(call.func))
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                blocking = name in _DB_CALLS or (
                    "." in name
                    and (tail in _DB_METHODS or tail in _COMPILE_METHODS)
                )
                if not blocking:
                    continue
                yield Diagnostic(
                    code="RL304",
                    severity=Severity.WARNING,
                    message=(
                        f"blocking call {name}(...) inside async def "
                        f"{fn.name}: SQLite and rewriting compilation "
                        "must not run on the event loop"
                    ),
                    span=file.span(call),
                    file=file.path,
                    hint="run it on the executor: await "
                    "loop.run_in_executor(None, ...) (or asyncio.wait_for)",
                )


def pass_blocking_io_in_async(
    files: Sequence[AuditFile],
) -> Iterator[Diagnostic]:
    """RL305: file/process I/O on the loop."""
    for file in files:
        for _cls, fn in _async_functions(file):
            for call in _calls_in(fn):
                name = file.resolved_call(dotted_name(call.func))
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                if name in _IO_CALLS or ("." in name and tail in _IO_METHODS):
                    yield Diagnostic(
                        code="RL305",
                        severity=Severity.WARNING,
                        message=(
                            f"blocking I/O {name}(...) inside async def "
                            f"{fn.name}: stalls every connection on the loop"
                        ),
                        span=file.span(call),
                        file=file.path,
                        hint="move the I/O onto an executor thread",
                    )


def pass_sync_lock_in_async(
    files: Sequence[AuditFile],
) -> Iterator[Diagnostic]:
    """RL306: ``threading`` lock acquired inside a coroutine."""
    for file in files:
        for cls, fn in _async_functions(file):
            stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                    continue
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        resolved = resolve_lock(item.context_expr, file, cls)
                        if resolved is not None:
                            yield Diagnostic(
                                code="RL306",
                                severity=Severity.WARNING,
                                message=(
                                    f"threading lock {resolved[0]!r} "
                                    f"acquired inside async def {fn.name}: "
                                    "the loop thread can park on it"
                                ),
                                span=file.span(node),
                                file=file.path,
                                hint="use asyncio.Lock, or do the locked "
                                "work on an executor thread",
                            )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and resolve_lock(node.func.value, file, cls) is not None
                ):
                    lock_id = resolve_lock(node.func.value, file, cls)
                    assert lock_id is not None
                    yield Diagnostic(
                        code="RL306",
                        severity=Severity.WARNING,
                        message=(
                            f"threading lock {lock_id[0]!r}.acquire() "
                            f"inside async def {fn.name}: "
                            "the loop thread can park on it"
                        ),
                        span=file.span(node),
                        file=file.path,
                        hint="use asyncio.Lock, or do the locked work on "
                        "an executor thread",
                    )
                stack.extend(ast.iter_child_nodes(node))
