"""AST facts shared by every audit pass.

The audit layer analyzes *Python* source (the project's own modules
and user extension code), not TGD programs, so its input model is an
:mod:`ast` tree per file plus the derived facts the concurrency passes
consume: which classes own :class:`threading.Lock`/``RLock``
attributes, which module-level names are locks, which functions are
``async``, and where inline suppressions sit.

Everything here is a plain syntactic fact extractor -- no flow
analysis.  The passes layer interprets the facts (nested ``with``
blocks become lock-order edges, attribute writes are classified by
their guarding ``with``, ...), and documents each heuristic next to
the diagnostic it powers.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lang.spans import Span

#: Constructor callables (dotted suffixes) recognized as thread locks.
LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "Lock", "RLock"}
)

#: Reentrant constructors: re-acquiring one is safe, not a self-deadlock.
REENTRANT_CONSTRUCTORS = frozenset({"threading.RLock", "RLock"})

#: ``# audit: ok[RL300] reason`` / ``# audit: ok[RL300,RL312] reason``.
_SUPPRESSION = re.compile(
    r"#\s*audit:\s*ok\[(?P<codes>RL\d{3}(?:\s*,\s*RL\d{3})*)\]\s*(?P<reason>\S.*)?"
)


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted callee name of a call, else None."""
    return dotted_name(node.func)


def is_lock_constructor(node: ast.expr) -> str | None:
    """The constructor name when *node* builds a threading lock."""
    if not isinstance(node, ast.Call):
        return None
    name = call_name(node)
    if name is not None and name in LOCK_CONSTRUCTORS:
        return name
    return None


@dataclass(frozen=True)
class LockAttribute:
    """One lock-valued attribute a class owns (``self._lock = Lock()``)."""

    attr: str
    constructor: str
    lineno: int

    @property
    def reentrant(self) -> bool:
        return self.constructor in REENTRANT_CONSTRUCTORS


@dataclass
class ClassModel:
    """Lock-relevant facts of one class definition."""

    name: str
    node: ast.ClassDef
    locks: dict[str, LockAttribute] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )

    @property
    def owns_locks(self) -> bool:
        return bool(self.locks)


class AuditFile:
    """One parsed source file plus its derived audit facts.

    Attributes:
        path: display path of the file (as passed on the CLI).
        text: the source text.
        tree: the parsed module, or None when parsing failed.
        error: the :class:`SyntaxError`, when parsing failed.
        classes: every class definition (any nesting level).
        module_locks: module-level ``NAME = threading.Lock()`` bindings.
        imports: imported-name -> dotted origin (``sleep`` ->
            ``time.sleep`` for ``from time import sleep``).
    """

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.tree: ast.Module | None = None
        self.error: SyntaxError | None = None
        self.classes: list[ClassModel] = []
        self.module_locks: dict[str, LockAttribute] = {}
        self.imports: dict[str, str] = {}
        self._line_offsets: list[int] | None = None
        self._suppressions: dict[int, tuple[frozenset[str], bool]] | None = None
        try:
            self.tree = ast.parse(text)
        except SyntaxError as error:
            self.error = error
            return
        self._collect()

    # ----------------------------------------------------------------- #
    # Fact collection                                                     #
    # ----------------------------------------------------------------- #

    def _collect(self) -> None:
        assert self.tree is not None
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                self.classes.append(_class_model(node))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        for statement in self.tree.body:
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
                constructor = is_lock_constructor(statement.value)
                if isinstance(target, ast.Name) and constructor is not None:
                    self.module_locks[target.id] = LockAttribute(
                        target.id, constructor, statement.lineno
                    )

    def resolved_call(self, name: str | None) -> str | None:
        """Expand the first segment of a dotted name through imports.

        ``sleep`` becomes ``time.sleep`` under ``from time import
        sleep``; already-qualified names pass through unchanged.
        """
        if name is None:
            return None
        head, _, rest = name.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return name
        return f"{origin}.{rest}" if rest else origin

    # ----------------------------------------------------------------- #
    # Spans and suppressions                                              #
    # ----------------------------------------------------------------- #

    def span(self, node: ast.AST) -> Span | None:
        """A :class:`Span` covering *node*, when it carries positions."""
        lineno = getattr(node, "lineno", None)
        col = getattr(node, "col_offset", None)
        if lineno is None or col is None:
            return None
        offsets = self._offsets()
        if lineno > len(offsets):
            return None
        start = offsets[lineno - 1] + col
        end_lineno = getattr(node, "end_lineno", None) or lineno
        end_col = getattr(node, "end_col_offset", None)
        if end_col is None or end_lineno > len(offsets):
            end = start + 1
        else:
            end = offsets[end_lineno - 1] + end_col
        return Span.from_offsets(self.text, start, max(end, start + 1))

    def span_at_line(self, lineno: int) -> Span | None:
        """A span covering all of source line *lineno* (1-based)."""
        offsets = self._offsets()
        if not 1 <= lineno <= len(offsets) - 1:
            return None
        start = offsets[lineno - 1]
        end = offsets[lineno]
        while end > start and self.text[end - 1] in "\r\n":
            end -= 1
        return Span.from_offsets(self.text, start, max(end, start + 1))

    def _offsets(self) -> list[int]:
        if self._line_offsets is None:
            offsets = [0]
            for line in self.text.splitlines(keepends=True):
                offsets.append(offsets[-1] + len(line))
            self._line_offsets = offsets
        return self._line_offsets

    def suppressed(self, code: str, lineno: int | None) -> bool:
        """True iff *code* is suppressed on *lineno* (or the line above).

        A suppression is ``# audit: ok[RL3xx] <justification>``; the
        justification is mandatory -- a bare ``ok[...]`` marker does
        not suppress anything (see :meth:`bare_suppressions`).
        """
        if lineno is None:
            return False
        table = self._suppression_table()
        for candidate in (lineno, lineno - 1):
            entry = table.get(candidate)
            if entry is not None and entry[1] and code in entry[0]:
                return True
        return False

    def bare_suppressions(self) -> tuple[int, ...]:
        """Lines carrying a suppression marker without a justification."""
        return tuple(
            sorted(
                line
                for line, (_codes, justified) in self._suppression_table().items()
                if not justified
            )
        )

    def _suppression_table(self) -> dict[int, tuple[frozenset[str], bool]]:
        if self._suppressions is None:
            table: dict[int, tuple[frozenset[str], bool]] = {}
            for index, line in enumerate(self.text.splitlines(), start=1):
                match = _SUPPRESSION.search(line)
                if match is None:
                    continue
                codes = frozenset(
                    code.strip() for code in match.group("codes").split(",")
                )
                justified = bool(match.group("reason"))
                table[index] = (codes, justified)
            self._suppressions = table
        return self._suppressions


def _class_model(node: ast.ClassDef) -> ClassModel:
    model = ClassModel(name=node.name, node=node)
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods[statement.name] = statement
        elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            constructor = is_lock_constructor(statement.value)
            if isinstance(target, ast.Name) and constructor is not None:
                model.locks[target.id] = LockAttribute(
                    target.id, constructor, statement.lineno
                )
    # self.<attr> = threading.Lock() anywhere inside a method body.
    for method in model.methods.values():
        for inner in ast.walk(method):
            if not isinstance(inner, ast.Assign) or len(inner.targets) != 1:
                continue
            target = inner.targets[0]
            constructor = is_lock_constructor(inner.value)
            if (
                constructor is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                model.locks[target.attr] = LockAttribute(
                    target.attr, constructor, inner.lineno
                )
    return model


def load_audit_file(path: str | Path) -> AuditFile:
    """Read and parse one source file (OSError propagates to the CLI)."""
    text = Path(path).read_text()
    return AuditFile(str(path), text)


def iter_python_files(paths: list[str]) -> list[Path]:
    """Expand CLI paths to a sorted list of ``.py`` files.

    Directories are walked recursively; ``__pycache__`` trees are
    skipped.  Missing paths raise :class:`FileNotFoundError` (mapped
    to exit 2 by the CLI).
    """
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"cannot read {raw}: no such file")
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique
