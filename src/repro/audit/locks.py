"""Lock-discipline passes: order cycles, manual acquire, unguarded state.

*Lock identity* is syntactic: ``self.<attr>`` inside a class whose
``__init__`` (or class body) binds ``<attr>`` to a ``threading.Lock``
/ ``RLock`` resolves to ``<ClassName>.<attr>``; a module-level
``NAME = threading.Lock()`` resolves to ``<file>:<NAME>``.  This is
deliberately conservative -- an expression the resolver cannot name is
simply not tracked, so the passes under-approximate rather than guess.

**RL300 (lock-order-cycle).**  Every method is walked with the set of
currently-held locks; acquiring lock *B* while holding lock *A* adds
the edge ``A -> B`` to a project-wide acquisition-order graph, with the
acquisition site as witness provenance.  Same-class calls
(``self.m()``) made under a lock contribute the callee's direct
acquisitions, so one level of intra-class indirection is covered.
A cycle in this graph is a potential deadlock; the witness walk (via
the shared :class:`~repro.graphs.cycles.LabeledGraph` machinery that
also powers the weak-acyclicity checks) names every edge and its
acquisition sites.  Re-acquiring a reentrant lock is not an edge;
re-acquiring a *non*-reentrant lock is a self-cycle (guaranteed
deadlock, not merely potential).

**RL301 (manual-acquire).**  ``lock.acquire()`` as a statement, when
the enclosing function never releases the same lock inside a
``finally`` block: an exception between acquire and release leaks the
lock forever.  ``with lock:`` is the fix.

**RL302 (unguarded-shared-write).**  In a class owning at least one
lock, an attribute assigned both inside and outside ``with
self._lock`` scopes (``__init__`` excluded -- construction
happens-before publication) is a data race: the unguarded writer can
interleave with every guarded reader.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.audit.model import AuditFile, ClassModel, dotted_name
from repro.graphs.cycles import LabeledGraph
from repro.lint.diagnostics import Diagnostic, Severity

#: Bound on distinct cycles reported per audit run (each found cycle
#: has one edge removed before re-searching).
_MAX_CYCLES = 8


@dataclass(frozen=True)
class LockSite:
    """One resolved lock acquisition: its identity and source site."""

    lock: str
    reentrant: bool
    file: str
    lineno: int
    where: str  # "Class.method" or "<module>.function"
    node: ast.AST


def resolve_lock(
    expr: ast.expr, file: AuditFile, cls: ClassModel | None
) -> tuple[str, bool] | None:
    """``(lock_id, reentrant)`` when *expr* names a known lock."""
    name = dotted_name(expr)
    if name is None:
        return None
    if cls is not None and name.startswith("self."):
        attr = name[len("self."):]
        lock = cls.locks.get(attr)
        if lock is not None:
            return f"{cls.name}.{attr}", lock.reentrant
        return None
    lock = file.module_locks.get(name)
    if lock is not None:
        return f"{file.path}:{name}", lock.reentrant
    return None


def _functions(
    file: AuditFile,
) -> Iterator[tuple[ClassModel | None, str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function with its owning class (None for module level)."""
    if file.tree is None:
        return
    claimed: set[int] = set()
    for cls in file.classes:
        for name, method in cls.methods.items():
            claimed.add(id(method))
            yield cls, f"{cls.name}.{name}", method
    for node in ast.walk(file.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and id(node) not in claimed
        ):
            yield None, f"<module>.{node.name}", node


def _direct_acquisitions(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    file: AuditFile,
    cls: ClassModel | None,
) -> list[tuple[str, bool, int]]:
    """Locks this function's body acquires via ``with`` (any depth)."""
    out: list[tuple[str, bool, int]] = []
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                resolved = resolve_lock(item.context_expr, file, cls)
                if resolved is not None:
                    out.append((resolved[0], resolved[1], node.lineno))
    return out


class _OrderWalker(ast.NodeVisitor):
    """Collect acquired-while-held edges for one function."""

    def __init__(
        self,
        file: AuditFile,
        cls: ClassModel | None,
        where: str,
        callee_locks: dict[str, list[tuple[str, bool, int]]],
        graph: LabeledGraph,
        self_deadlocks: list[LockSite],
    ) -> None:
        self.file = file
        self.cls = cls
        self.where = where
        self.callee_locks = callee_locks
        self.graph = graph
        self.self_deadlocks = self_deadlocks
        self.held: list[str] = []

    def _witness(self, lineno: int) -> str:
        return f"{self.file.path}:{lineno} ({self.where})"

    def _enter(self, lock: str, reentrant: bool, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", 0)
        if lock in self.held:
            if not reentrant:
                self.self_deadlocks.append(
                    LockSite(lock, reentrant, self.file.path, lineno, self.where, node)
                )
            return False
        for held in self.held:
            self.graph.add_edge(held, lock, rules=(self._witness(lineno),))
        self.held.append(lock)
        return True

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        entered: list[str] = []
        for item in node.items:
            resolved = resolve_lock(item.context_expr, self.file, self.cls)
            if resolved is not None and self._enter(resolved[0], resolved[1], node):
                entered.append(resolved[0])
            self.visit(item.context_expr)
        for statement in node.body:
            self.visit(statement)
        for lock in reversed(entered):
            self.held.remove(lock)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Call(self, node: ast.Call) -> None:
        # One level of intra-class indirection: self.m() under a lock
        # contributes m's own direct acquisitions as order edges.
        name = dotted_name(node.func)
        if (
            self.held
            and name is not None
            and name.startswith("self.")
            and self.cls is not None
        ):
            method = name[len("self."):]
            for lock, reentrant, _lineno in self.callee_locks.get(
                f"{self.cls.name}.{method}", []
            ):
                if lock in self.held:
                    if not reentrant:
                        self.self_deadlocks.append(
                            LockSite(
                                lock,
                                reentrant,
                                self.file.path,
                                node.lineno,
                                self.where,
                                node,
                            )
                        )
                    continue
                for held in self.held:
                    self.graph.add_edge(
                        held, lock, rules=(self._witness(node.lineno),)
                    )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested function bodies run later, under unknown lock state.
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _build_order_graph(
    files: Sequence[AuditFile],
) -> tuple[LabeledGraph, list[LockSite]]:
    callee_locks: dict[str, list[tuple[str, bool, int]]] = {}
    per_file: list[
        tuple[AuditFile, ClassModel | None, str, ast.FunctionDef | ast.AsyncFunctionDef]
    ] = []
    for file in files:
        for cls, where, fn in _functions(file):
            callee_locks[where] = _direct_acquisitions(fn, file, cls)
            per_file.append((file, cls, where, fn))
    graph = LabeledGraph()
    self_deadlocks: list[LockSite] = []
    for file, cls, where, fn in per_file:
        walker = _OrderWalker(file, cls, where, callee_locks, graph, self_deadlocks)
        for statement in fn.body:
            walker.visit(statement)
    return graph, self_deadlocks


def _drop_edge(graph: LabeledGraph, source: object, target: object) -> LabeledGraph:
    out = LabeledGraph()
    for node in graph.nodes:
        out.add_node(node)
    for edge in graph.edges:
        if (edge.source, edge.target) == (source, target):
            continue
        out.add_edge(
            edge.source,
            edge.target,
            labels=edge.labels,
            rules=graph.rules_of(edge.source, edge.target),
        )
    return out


def pass_lock_order(files: Sequence[AuditFile]) -> Iterator[Diagnostic]:
    """RL300: cycles in the project-wide lock acquisition-order graph."""
    graph, self_deadlocks = _build_order_graph(files)
    for site in self_deadlocks:
        span = None
        for file in files:
            if file.path == site.file:
                span = file.span(site.node)
                break
        yield Diagnostic(
            code="RL300",
            severity=Severity.ERROR,
            message=(
                f"non-reentrant lock {site.lock!r} re-acquired while "
                "already held: guaranteed self-deadlock"
            ),
            span=span,
            file=site.file,
            hint="use threading.RLock, or restructure so the lock is "
            "acquired exactly once per thread",
        )
    seen = 0
    while seen < _MAX_CYCLES:
        cycle = graph.find_labeled_cycle(())
        if cycle is None:
            return
        seen += 1
        notes = []
        witness_file: str | None = None
        witness_line: int | None = None
        for edge in cycle:
            sites = sorted(graph.rules_of(edge.source, edge.target))
            notes.append(
                f"{edge.source} -> {edge.target} at "
                + ("; ".join(sites) if sites else "<unknown site>")
            )
            if witness_file is None and sites:
                head = sites[0]
                path, _, rest = head.partition(":")
                line = rest.split(" ")[0]
                if line.isdigit():
                    witness_file, witness_line = path, int(line)
        order = " -> ".join(
            [str(edge.source) for edge in cycle] + [str(cycle[0].source)]
        )
        # Anchor the diagnostic at the first witness site so inline
        # suppressions (and the text renderer's location) work.
        span = None
        if witness_file is not None and witness_line is not None:
            for file in files:
                if file.path == witness_file:
                    span = file.span_at_line(witness_line)
                    break
        yield Diagnostic(
            code="RL300",
            severity=Severity.WARNING,
            message=f"potential deadlock: lock-order cycle {order}",
            span=span,
            file=witness_file,
            hint="pick one global acquisition order for these locks and "
            "restructure the inverted site (see docs/concurrency.md)",
            notes=tuple(notes),
        )
        graph = _drop_edge(graph, cycle[0].source, cycle[0].target)


def pass_manual_acquire(files: Sequence[AuditFile]) -> Iterator[Diagnostic]:
    """RL301: ``.acquire()`` without a finally-guarded ``.release()``."""
    for file in files:
        for cls, where, fn in _functions(file):
            acquires: list[tuple[str, ast.expr, ast.Call]] = []
            released_in_finally: set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    receiver = dotted_name(node.func.value)
                    if receiver is None:
                        continue
                    resolved = resolve_lock(node.func.value, file, cls)
                    if resolved is None:
                        continue
                    if node.func.attr == "acquire":
                        acquires.append((resolved[0], node.func.value, node))
                if isinstance(node, ast.Try):
                    for statement in node.finalbody:
                        for inner in ast.walk(statement):
                            if (
                                isinstance(inner, ast.Call)
                                and isinstance(inner.func, ast.Attribute)
                                and inner.func.attr == "release"
                            ):
                                resolved = resolve_lock(
                                    inner.func.value, file, cls
                                )
                                if resolved is not None:
                                    released_in_finally.add(resolved[0])
            for lock, _expr, call in acquires:
                if lock in released_in_finally:
                    continue
                yield Diagnostic(
                    code="RL301",
                    severity=Severity.WARNING,
                    message=(
                        f"manual {lock}.acquire() in {where} without a "
                        "finally-guarded release: an exception leaks the lock"
                    ),
                    span=file.span(call),
                    file=file.path,
                    hint="use `with <lock>:` (or release in a finally block)",
                )


class _GuardWalker(ast.NodeVisitor):
    """Classify attribute writes of one method as guarded/unguarded."""

    def __init__(self, file: AuditFile, cls: ClassModel) -> None:
        self.file = file
        self.cls = cls
        self.depth = 0
        self.writes: list[tuple[str, bool, ast.AST]] = []

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        holds = any(
            resolve_lock(item.context_expr, self.file, self.cls) is not None
            for item in node.items
        )
        if holds:
            self.depth += 1
        for statement in node.body:
            self.visit(statement)
        if holds:
            self.depth -= 1

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _record(self, target: ast.expr, node: ast.AST) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr not in self.cls.locks
        ):
            self.writes.append((target.attr, self.depth > 0, node))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def pass_unguarded_shared_write(
    files: Sequence[AuditFile],
) -> Iterator[Diagnostic]:
    """RL302: attributes written both under and outside the class lock."""
    for file in files:
        for cls in file.classes:
            if not cls.owns_locks:
                continue
            guarded: set[str] = set()
            unguarded: list[tuple[str, ast.AST, str]] = []
            for name, method in cls.methods.items():
                if name == "__init__":
                    continue
                walker = _GuardWalker(file, cls)
                for statement in method.body:
                    walker.visit(statement)
                for attr, is_guarded, node in walker.writes:
                    if is_guarded:
                        guarded.add(attr)
                    else:
                        unguarded.append((attr, node, name))
            for attr, node, method_name in unguarded:
                if attr not in guarded:
                    continue
                yield Diagnostic(
                    code="RL302",
                    severity=Severity.WARNING,
                    message=(
                        f"{cls.name}.{attr} is written under the class lock "
                        f"elsewhere but unguarded in {method_name}(): "
                        "racing writers can interleave"
                    ),
                    span=file.span(node),
                    file=file.path,
                    hint=f"move the write inside `with self.<lock>:` or "
                    f"document why {method_name} cannot race",
                )
