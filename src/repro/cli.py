"""Command-line interface: ``python -m repro <command> ...``.

Commands mirroring the library's workflow:

* ``classify``  -- read a TGD program, print the class-membership table
  and the SWR/WR explanations;
* ``rewrite``   -- read a program and a query, print the UCQ rewriting
  (or, with ``--sql``, the compiled SQL);
* ``answer``    -- read a program, a query and a fact file, print the
  certain answers (``--backend sql`` runs the compiled SQL on SQLite;
  ``--via-chase`` uses the chase oracle);
* ``batch``     -- read a program and a file of queries (one per
  line), compile and answer them all on a worker pool, streaming
  per-query results as they complete;
* ``graph``     -- emit the position graph or P-node graph of a program
  as a text summary or Graphviz DOT;
* ``lint``      -- run the static analyzer, emitting span-annotated
  diagnostics as text, JSON or SARIF (``--strict`` gates warnings for
  CI);
* ``check``     -- whole-project static analysis over a
  ``project.json`` manifest (ontology + queries + mappings + data):
  dead rules, mapping coverage and rewriting-size bounds, with the
  same formats and exit-code contract as ``lint``;
* ``audit``     -- concurrency/async static analysis of Python source
  trees (RL3xx): lock-order cycles, unguarded shared-state writes,
  blocking calls in ``async def``, executor and event-loop hygiene;
  same formats and exit-code contract as ``lint``;
* ``trace``     -- run the rewriting (and optionally answering)
  pipeline under the observability layer and print the span tree with
  per-stage timings and counters;
* ``serve``     -- HTTP/JSON query-answering server over the session
  layer: bounded-queue admission (429 + ``Retry-After`` when full),
  per-request deadlines, per-tenant ontology isolation and a warm
  single-flight rewriting cache (see ``docs/serving.md``).

Two global flags (before the subcommand) compose with every
subcommand: ``--metrics PATH`` streams every instrumentation record of
the run as JSON lines to *PATH*, and ``--cache-dir DIR`` persists
compiled rewritings to ``DIR/rewritings.sqlite`` so later invocations
(of ``rewrite``, ``answer``, ``batch`` or ``trace``, over the same
ontology and budget) skip the rewriting step entirely.

``answer``, ``trace`` and ``batch`` share one *engine options* group
(``--max-depth``, ``--max-cqs``, ``--max-seconds``; plus
``--backend`` where evaluation happens) instead of per-command flag
spellings.

Programs, queries and facts use the textual syntax of
:mod:`repro.lang.parser`; every input is a file path or ``-`` for
stdin.

Exit codes: 0 success; 1 findings (lint/check/audit) / failed batch
queries;
2 input error (unreadable file, parse error, ill-formed program);
3 incomplete rewriting.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro import obs
from repro.chase.certain import certain_answers, certain_answers_via_chase
from repro.core.classify import classify
from repro.data.database import Database
from repro.data.sql import ucq_to_sql
from repro.graphs.dot import pnode_graph_to_dot, position_graph_to_dot
from repro.graphs.pnode_graph import build_pnode_graph
from repro.graphs.position_graph import build_position_graph
from repro.lang.errors import ReproError
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.lang.printer import format_answers, format_ucq
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.engine import LintConfig, lint_source, preflight
from repro.lint.formats import render, render_text
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    try:
        return Path(path).read_text()
    except OSError as error:
        reason = error.strerror or error.__class__.__name__
        raise ReproError(f"cannot read {path}: {reason}") from error


def _preflight(rules, query=None, path="<string>") -> tuple[Diagnostic, ...]:
    """Run the error-level lint passes; print any findings to stderr."""
    findings = preflight(rules, query)
    if findings:
        report = LintReport.of(findings, path=path)
        print(render_text(report), file=sys.stderr)
    return findings


def _budget(args: argparse.Namespace) -> RewritingBudget:
    return RewritingBudget(
        max_depth=args.max_depth,
        max_cqs=args.max_cqs,
        max_seconds=getattr(args, "max_seconds", None),
        strict=False,
    )


def _minimize_kwargs(args: argparse.Namespace) -> dict:
    """Session kwargs for the opt-in parallel-minimization options."""
    return {
        "minimize_workers": getattr(args, "minimize_workers", None),
        "minimize_mode": getattr(args, "minimize_mode", "thread"),
    }


def _add_engine_options(
    parser: argparse.ArgumentParser,
    backend: bool = False,
    target: bool = False,
) -> None:
    """The budget/backend option group shared by answer/trace/batch.

    (``rewrite`` and ``lint`` reuse the budget subset.)  Keeping one
    definition guarantees the subcommands never drift apart in flag
    names, defaults or help text.
    """
    group = parser.add_argument_group(
        "engine options",
        "rewriting budget and evaluation backend (shared across "
        "subcommands; the persistent cache is the global --cache-dir)",
    )
    group.add_argument(
        "--max-depth",
        type=int,
        default=50,
        help="max breadth-first rewriting rounds (default: 50)",
    )
    group.add_argument(
        "--max-cqs",
        type=int,
        default=100_000,
        help="max CQs generated per rewriting (default: 100000)",
    )
    group.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock ceiling per rewriting (default: unlimited)",
    )
    group.add_argument(
        "--minimize-workers",
        type=int,
        default=None,
        metavar="N",
        help="parallelize UCQ minimization over N workers (0 = one "
        "per CPU; default: sequential; output is identical)",
    )
    group.add_argument(
        "--minimize-mode",
        choices=("thread", "process"),
        default="thread",
        help="worker pool for --minimize-workers (default: thread)",
    )
    group.add_argument(
        "--hybrid",
        choices=("off", "auto", "rewrite", "split", "materialize"),
        default="off",
        help="hybrid answering regime: cost-model choice between pure "
        "rewriting, separability-driven partial materialization "
        "(split) and full materialization with incremental "
        "maintenance (default: off)",
    )
    group.add_argument(
        "--hybrid-threshold",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="delta size (as a fraction of the materialized instance) "
        "past which maintenance falls back to a full re-chase "
        "(default: 0.5)",
    )
    if target:
        group.add_argument(
            "--target",
            choices=("ucq", "datalog", "auto"),
            default="ucq",
            help="rewriting target: exploded UCQ, nonrecursive-Datalog "
            "program (compiled to SQL WITH CTEs), or estimator-driven "
            "per-query choice (default: ucq)",
        )
    if backend:
        group.add_argument(
            "--backend",
            choices=("memory", "sql"),
            default="memory",
            help="evaluate rewritings in-process or as SQL on SQLite "
            "(default: memory)",
        )


def cmd_classify(args: argparse.Namespace) -> int:
    rules = parse_program(_read(args.program))
    if _preflight(rules, path=args.program):
        return 2
    report = classify(rules)
    print(report.table())
    if args.explain:
        print()
        print(report.swr.explain())
        if report.wr is not None:
            print(report.wr.explain())
        for check in report.baselines.values():
            if not check.member:
                print(check.explain())
        print()
        print(_termination_summary(rules))
        print()
        print(_hybrid_summary(rules))
    return 0


def _hybrid_summary(rules) -> str:
    """Render the hybrid cost model's verdict for --explain.

    Classification sees no data, so the estimates are the data-free
    ones (size 1); the live decision a :class:`~repro.api.Session`
    makes additionally weighs the actual relation cardinalities.
    """
    from repro.analysis.separability import separate
    from repro.hybrid.cost import decide

    partition = separate(rules)
    decision = decide(partition=partition)
    lines = [f"hybrid regime: {decision.choice.value}"]
    lines.append(f"  reason: {decision.reason}")
    lines.append(f"  feasible: {', '.join(decision.feasible)}")
    for name, cost in sorted(decision.estimates.items()):
        lines.append(f"  estimate[{name}]: {cost:.0f}")
    if partition.proper:
        lines.append(
            f"  partition: {len(partition.core)}-rule core / "
            f"{len(partition.residual)}-rule residual"
        )
    return "\n".join(lines)


def _termination_summary(rules) -> str:
    """Render the chase-termination lattice verdict for --explain."""
    from repro.analysis import termination_certificate

    certificate = termination_certificate(rules)
    if certificate.terminating:
        level = certificate.level
        assert level is not None
        lines = [f"chase termination: certified by {level.value}"]
    else:
        lines = ["chase termination: not certified at any lattice level"]
        lines.extend(f"  witness: {line}" for line in certificate.witness)
    for verdict in certificate.verdicts:
        status = "holds" if verdict.holds else "fails"
        if verdict.implied_by is not None:
            status += f" (implied by {verdict.implied_by.value})"
        lines.append(f"  {verdict.criterion.value}: {status}")
    return "\n".join(lines)


def cmd_rewrite(args: argparse.Namespace) -> int:
    rules = parse_program(_read(args.program))
    query = parse_query(args.query)
    if _preflight(rules, query, path=args.program):
        return 2
    if getattr(args, "target", "ucq") != "ucq":
        return _rewrite_with_target(args, rules, query)
    if args.explain or args.cache_dir is None:
        # --explain needs derivation lineage, which the persistent
        # cache does not store; compile directly.
        result = rewrite(query, rules, _budget(args), **_minimize_kwargs(args))
    else:
        from repro.api import EngineOptions, Session

        with Session(
            rules,
            cache_dir=args.cache_dir,
            options=EngineOptions.from_args(args),
        ) as session:
            result = session.prepare(query).result
    if not result.complete:
        print(
            f"warning: rewriting incomplete within budget "
            f"(depth={result.depth_reached}, cqs={result.generated}); "
            "output is a sound under-approximation",
            file=sys.stderr,
        )
    if args.sql:
        print(ucq_to_sql(result.ucq))
    elif args.explain:
        for cq in result.ucq:
            steps = result.derivation_of(cq)
            provenance = " <= " + ", ".join(steps) if steps else ""
            print(f"{cq}.{provenance}")
    else:
        print(format_ucq(result.ucq))
    return 0 if result.complete else 3


def _rewrite_with_target(args: argparse.Namespace, rules, query) -> int:
    """``repro rewrite --target datalog|auto``: session-compiled output.

    Prints the nonrecursive-Datalog program (or, with ``--sql``, its
    ``WITH``-CTE compilation) when the Datalog target is selected;
    ``auto`` resolving to ucq falls back to the classical UCQ output.
    ``--explain`` prints the compilation summary dict either way
    (per-disjunct lineage exists only for the direct UCQ path).
    """
    import json as _json

    from repro.api import EngineOptions, Session

    with Session(
        rules,
        cache_dir=args.cache_dir,
        options=EngineOptions.from_args(args),
    ) as session:
        prepared = session.prepare(query)
        if not prepared.complete:
            print(
                "warning: rewriting incomplete within budget; "
                "output is a sound under-approximation",
                file=sys.stderr,
            )
        if args.explain:
            print(_json.dumps(prepared.explain(), indent=2, sort_keys=True))
        elif args.sql:
            print(prepared.sql)
        elif prepared.target_selected == "datalog":
            print(str(prepared.datalog))
        else:
            print(format_ucq(prepared.ucq))
        return 0 if prepared.complete else 3


def cmd_answer(args: argparse.Namespace) -> int:
    from repro.api import EngineOptions, Session

    rules = parse_program(_read(args.program))
    query = parse_query(args.query)
    database = Database(parse_database(_read(args.data)))
    if args.via_chase:
        answers = certain_answers(query, rules, database)
    else:
        with Session(
            rules,
            database,
            cache_dir=args.cache_dir,
            options=EngineOptions.from_args(args),
        ) as session:
            prepared = session.prepare(query)
            if not prepared.complete:
                print(
                    "warning: rewriting incomplete; answers are a sound "
                    "under-approximation",
                    file=sys.stderr,
                )
            answers = prepared.answer(
                backend=args.backend, require_complete=False
            )
    if query.is_boolean():
        print("true" if answers else "false")
    else:
        print(format_answers(answers))
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from repro.api import EngineOptions, Session, resolve_workers

    rules = parse_program(_read(args.program))
    if _preflight(rules, path=args.program):
        return 2
    lines = [
        line.strip()
        for line in _read(args.queries).splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines:
        raise ReproError(f"no queries found in {args.queries}")
    # Query text is parsed inside the pool tasks, so one malformed
    # line is a per-item failure (exit 1), not a dead batch.
    queries = lines
    database = (
        Database(parse_database(_read(args.data))) if args.data else None
    )
    workers = resolve_workers(args.workers, len(queries))
    failed = incomplete = 0
    started = _time.perf_counter()
    with Session(
        rules,
        database,
        cache_dir=args.cache_dir,
        options=EngineOptions.from_args(args),
    ) as session:
        stream = session.answer_many(
            queries,
            max_workers=workers,
            mode=args.mode,
            backend=args.backend,
            require_complete=False,
            ordered=args.ordered,
        )
        for item in stream:
            failed += 0 if item.ok else 1
            incomplete += 0 if item.complete else 1
            if args.json:
                payload = {
                    "index": item.index,
                    "query": item.query,
                    "complete": item.complete,
                    "disjuncts": item.disjuncts,
                    "seconds": round(item.seconds, 6),
                    "error": item.error,
                    "answers": None
                    if item.answers is None
                    else sorted(
                        [str(term) for term in row] for row in item.answers
                    ),
                }
                print(_json.dumps(payload, sort_keys=True), flush=True)
            else:
                if item.error is not None:
                    status = f"error: {item.error}"
                elif item.answers is None:
                    status = f"compiled disjuncts={item.disjuncts}"
                else:
                    status = (
                        f"answers={len(item.answers)} "
                        f"disjuncts={item.disjuncts}"
                    )
                flag = "" if item.complete else " [incomplete]"
                print(
                    f"[{item.index + 1}/{len(queries)}] {item.query}  "
                    f"{status}{flag} ({item.seconds * 1000:.1f}ms)",
                    flush=True,
                )
        stats = session.cache_stats()
    elapsed = _time.perf_counter() - started
    memory = stats["memory"]
    summary = (
        f"batch: {len(queries)} queries in {elapsed:.2f}s "
        f"({workers} {args.mode} worker(s)); "
        f"{failed} failed, {incomplete} incomplete; "
        f"memory cache {memory['hits']}h/{memory['misses']}m"
    )
    persistent = stats["persistent"]
    if persistent is not None:
        summary += (
            f", persistent cache {persistent['hits']}h/"
            f"{persistent['misses']}m ({persistent['entries']} entries)"
        )
    print(summary, file=sys.stderr)
    if failed:
        return 1
    if incomplete:
        return 3
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    rules = parse_program(_read(args.program))
    if args.kind == "position":
        graph = build_position_graph(rules)
        rendered = (
            position_graph_to_dot(graph) if args.dot else graph.summary()
        )
    else:
        graph = build_pnode_graph(rules)
        rendered = pnode_graph_to_dot(graph) if args.dot else graph.summary()
    print(rendered)
    if args.stats:
        from repro.graphs.analysis import census

        print()
        print(census(graph.graph).format())
    return 0


def _default_query(rules):
    """An atomic query over the first rule's head relation.

    ``repro trace program.dlp`` without an explicit query traces the
    rewriting of ``q(X1, ..., Xk) :- rel(X1, ..., Xk)`` for the first
    derived relation -- the canonical "what does this ontology say
    about rel?" probe.
    """
    from repro.lang.atoms import Atom
    from repro.lang.queries import ConjunctiveQuery
    from repro.lang.terms import Variable

    head = rules[0].head[0]
    variables = [Variable(f"X{i + 1}") for i in range(head.arity)]
    return ConjunctiveQuery(variables, [Atom(head.relation, variables)])


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.api import EngineOptions, Session
    from repro.obs import TreeSink

    tree = TreeSink()
    complete = True
    summary: list[str] = []
    with obs.use(tree):
        with obs.span("trace", program=args.program) as trace_span:
            with obs.span("parse.program"):
                rules = parse_program(_read(args.program))
            if _preflight(rules, path=args.program):
                return 2
            with obs.span("parse.query"):
                query = (
                    parse_query(args.query)
                    if args.query
                    else _default_query(rules)
                )
            if args.data:
                with obs.span("parse.data"):
                    database = Database(parse_database(_read(args.data)))
            else:
                database = None
            with Session(
                rules,
                database,
                cache_dir=args.cache_dir,
                options=EngineOptions.from_args(args),
            ) as session:
                prepared = session.prepare(query)
                selected = prepared.target_selected
                complete = prepared.complete
                trace_span.set(
                    query=str(query), complete=complete, target=selected
                )
                summary.append(f"query:     {query}")
                summary.append(
                    f"target:    {selected}"
                    + (
                        " (auto)"
                        if prepared.target == "auto"
                        else ""
                    )
                )
                if selected == "datalog":
                    rewriting = prepared.datalog
                    summary.append(
                        f"rewriting: {rewriting.size} rule(s) "
                        f"({len(rewriting.predicates)} aux predicate(s), "
                        f"{rewriting.fallback_disjuncts} fallback "
                        f"disjunct(s)), depth {rewriting.depth_reached}, "
                        f"complete={rewriting.complete}"
                    )
                else:
                    result = prepared.result
                    summary.append(
                        f"rewriting: {result.size} disjunct(s), "
                        f"depth {result.depth_reached}, "
                        f"complete={result.complete}"
                    )
                summary.append(f"sql:       {len(prepared.sql)} chars")
                if database is not None:
                    answers = prepared.answer(require_complete=False)
                    sql_answers = prepared.answer(
                        backend="sql", require_complete=False
                    )
                    chase = certain_answers_via_chase(
                        query, rules, database, strict=False
                    )
                    agree = answers == sql_answers
                    if complete and chase.complete:
                        agree = agree and answers == chase.answers
                    obs.event(
                        "trace.differential",
                        memory=len(answers),
                        sql=len(sql_answers),
                        chase=len(chase.answers),
                        agree=agree,
                    )
                    summary.append(
                        f"answers:   memory={len(answers)} "
                        f"sql={len(sql_answers)} chase={len(chase.answers)} "
                        f"agree={agree}"
                    )
    print(tree.render())
    print()
    print("\n".join(summary))
    if not complete:
        print(
            "warning: rewriting incomplete within budget; "
            "trace shows the partial run",
            file=sys.stderr,
        )
        return 3
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.api import EngineOptions
    from repro.serve import ReproServer, ServeConfig, TenantRegistry

    rules = parse_program(_read(args.program))
    if _preflight(rules, path=args.program):
        return 2
    database = (
        Database(parse_database(_read(args.data))) if args.data else None
    )
    mappings = None
    if args.mappings:
        from repro.obda.mappings import parse_mappings

        mappings = parse_mappings(_read(args.mappings))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        deadline_seconds=args.deadline,
        max_tenants=args.max_tenants,
        options=EngineOptions.from_args(args),
    )
    registry = TenantRegistry(
        cache_dir=args.cache_dir,
        options=config.effective_options(),
        max_live=config.max_tenants,
    )
    registry.register(args.tenant, rules, database, mappings)
    warmed = registry.warm_all()
    server = ReproServer(registry, config)

    async def main() -> None:
        await server.start()
        # The announce line prints the *actual* port (--port 0 binds an
        # ephemeral one); harnesses parse it to find the server.
        print(
            f"repro serve listening on http://{config.host}:{server.port} "
            f"(tenant {args.tenant!r}, {warmed} rewriting(s) warmed)",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    path = "<stdin>" if args.program == "-" else args.program
    config = LintConfig(
        budget=_budget(args),
        branching_threshold=args.branching_threshold,
        disabled=frozenset(args.disable or ()),
        stages=(
            ("wellformed",)
            if args.no_recursion
            else ("wellformed", "recursion", "risk")
        ),
    )
    report = lint_source(
        _read(args.program),
        query_text=args.query,
        config=config,
        path=path,
    )
    print(render(report, args.format))
    return report.exit_code(strict=args.strict)


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import AuditConfig, audit_code_names, audit_paths

    config = AuditConfig(disabled=frozenset(args.disable or ()))
    try:
        report = audit_paths(args.paths, config)
    except FileNotFoundError as error:
        raise ReproError(str(error)) from error
    except OSError as error:
        raise ReproError(f"cannot read audit input: {error}") from error
    print(render(report, args.format, names=audit_code_names(), tool="repro-audit"))
    return report.exit_code(strict=args.strict)


def cmd_check(args: argparse.Namespace) -> int:
    from repro.checkers import (
        CheckConfig,
        check_project,
        load_project,
        render_check,
    )

    config = CheckConfig(
        budget=_budget(args),
        default_depth=args.assumed_depth,
        disabled=frozenset(args.disable or ()),
    )
    report = check_project(load_project(args.project), config)
    print(render_check(report, args.format))
    return report.exit_code(strict=args.strict)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weakly Recursive TGDs: classification, FO rewriting "
        "and certain-answer query answering",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="stream instrumentation records (spans, counters, events) "
        "of this run as JSON lines to PATH; works with every subcommand",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist compiled rewritings to DIR/rewritings.sqlite; "
        "later runs over the same ontology+budget reuse them "
        "(works with rewrite, answer, batch and trace)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser(
        "classify", help="class-membership table for a TGD program"
    )
    p_classify.add_argument("program", help="TGD file ('-' for stdin)")
    p_classify.add_argument(
        "--explain", action="store_true", help="print per-class reasons"
    )
    p_classify.set_defaults(func=cmd_classify)

    p_rewrite = sub.add_parser("rewrite", help="UCQ rewriting of a query")
    p_rewrite.add_argument("program")
    p_rewrite.add_argument("query", help='e.g. "q(X) :- faculty(X)"')
    p_rewrite.add_argument(
        "--sql", action="store_true", help="emit SQL instead of Datalog"
    )
    p_rewrite.add_argument(
        "--explain",
        action="store_true",
        help="annotate each disjunct with its rule derivation",
    )
    _add_engine_options(p_rewrite, target=True)
    p_rewrite.set_defaults(func=cmd_rewrite)

    p_answer = sub.add_parser("answer", help="certain answers over facts")
    p_answer.add_argument("program")
    p_answer.add_argument("query")
    p_answer.add_argument("data", help="fact file ('-' for stdin)")
    p_answer.add_argument(
        "--via-chase",
        action="store_true",
        help="use the chase oracle instead of rewriting",
    )
    _add_engine_options(p_answer, backend=True, target=True)
    p_answer.set_defaults(func=cmd_answer)

    p_batch = sub.add_parser(
        "batch",
        help="compile and answer a file of queries on a worker pool, "
        "streaming per-query results",
    )
    p_batch.add_argument("program", help="TGD file ('-' for stdin)")
    p_batch.add_argument(
        "queries",
        help="query file: one CQ per line, '#' comments and blank "
        "lines ignored",
    )
    p_batch.add_argument(
        "data",
        nargs="?",
        help="fact file; omit to compile (and cache) without answering",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count (default: min(cpu count, batch size))",
    )
    p_batch.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="thread pool sharing one engine/cache (default) or a "
        "process pool for multi-core cold compilation",
    )
    p_batch.add_argument(
        "--ordered",
        action="store_true",
        help="stream results in input order instead of completion order",
    )
    p_batch.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per query instead of text lines",
    )
    _add_engine_options(p_batch, backend=True, target=True)
    p_batch.set_defaults(func=cmd_batch)

    p_graph = sub.add_parser(
        "graph", help="position graph / P-node graph of a program"
    )
    p_graph.add_argument("program")
    p_graph.add_argument(
        "kind", choices=("position", "pnode"), help="which graph to build"
    )
    p_graph.add_argument(
        "--dot", action="store_true", help="emit Graphviz DOT"
    )
    p_graph.add_argument(
        "--stats", action="store_true", help="append a structural census"
    )
    p_graph.set_defaults(func=cmd_graph)

    p_trace = sub.add_parser(
        "trace",
        help="run the rewriting pipeline and print a span tree with "
        "per-stage timings",
    )
    p_trace.add_argument("program", help="TGD file ('-' for stdin)")
    p_trace.add_argument(
        "query",
        nargs="?",
        help="query to trace (default: atomic query over the first "
        "rule's head relation)",
    )
    p_trace.add_argument(
        "--data",
        help="fact file: also trace in-memory, SQL and chase answering "
        "plus their differential comparison",
    )
    _add_engine_options(p_trace, target=True)
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve",
        help="HTTP/JSON query-answering server with admission control "
        "and a warm single-flight rewriting cache",
    )
    p_serve.add_argument("program", help="TGD file ('-' for stdin)")
    p_serve.add_argument(
        "data",
        nargs="?",
        help="fact file for the initial tenant (omit for compile/SQL "
        "serving without evaluation data)",
    )
    p_serve.add_argument(
        "--mappings", help="GAV mapping file for the initial tenant"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 picks an ephemeral one, printed on the "
        "announce line (default: 8080)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="query executor threads (default: 4)",
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="requests allowed to wait beyond the workers; anything "
        "past workers+queue-depth is shed with 429 (default: 16)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; also tightens the rewriting "
        "budget's wall-clock ceiling (default: none)",
    )
    p_serve.add_argument(
        "--max-tenants",
        type=int,
        default=8,
        help="live tenant sessions kept open, LRU (default: 8)",
    )
    p_serve.add_argument(
        "--tenant",
        default="default",
        help="name of the initial tenant (default: 'default')",
    )
    _add_engine_options(p_serve, target=True)
    p_serve.set_defaults(func=cmd_serve)

    p_lint = sub.add_parser(
        "lint", help="static analysis: diagnostics with source spans"
    )
    p_lint.add_argument("program", help="TGD file ('-' for stdin)")
    p_lint.add_argument(
        "--query",
        help="also lint this query against the program, "
        'e.g. "q(X) :- r(X, Y)"',
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too (CI gating)",
    )
    p_lint.add_argument(
        "--no-recursion",
        action="store_true",
        help="skip the graph-based recursion and risk passes",
    )
    p_lint.add_argument(
        "--disable",
        action="append",
        metavar="CODE",
        help="suppress a diagnostic code (repeatable), e.g. RL006",
    )
    p_lint.add_argument(
        "--branching-threshold",
        type=int,
        default=8,
        help="RL020 fires at this many rules deriving one relation",
    )
    _add_engine_options(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_check = sub.add_parser(
        "check",
        help="whole-project static analysis: dead rules, mapping "
        "coverage, rewriting-size bounds (RL1xx), chase-termination "
        "lattice and separability (RL2xx)",
    )
    p_check.add_argument(
        "project",
        help="project.json manifest (or a directory containing one) "
        "naming the ontology and optional queries/mappings/data files",
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    p_check.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too (CI gating)",
    )
    p_check.add_argument(
        "--disable",
        action="append",
        metavar="CODE",
        help="suppress a diagnostic code (repeatable), e.g. RL106",
    )
    p_check.add_argument(
        "--assumed-depth",
        type=int,
        default=10,
        help="rounds RL105 assumes for cyclic programs (default: 10)",
    )
    _add_engine_options(p_check)
    p_check.set_defaults(func=cmd_check)

    p_audit = sub.add_parser(
        "audit",
        help="concurrency/async static analysis of Python source "
        "(RL3xx): lock-order cycles, unguarded shared state, "
        "blocking calls in async code, executor and loop hygiene",
    )
    p_audit.add_argument(
        "paths",
        nargs="+",
        help="Python files or directories to audit (directories are "
        "walked recursively for .py files)",
    )
    p_audit.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    p_audit.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too (CI gating)",
    )
    p_audit.add_argument(
        "--disable",
        action="append",
        metavar="CODE",
        help="suppress a diagnostic code (repeatable), e.g. RL312",
    )
    p_audit.set_defaults(func=cmd_audit)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.metrics:
            from repro.obs import JSONLSink

            with obs.use(JSONLSink(args.metrics)):
                return args.func(args)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe early;
        # suppress the traceback and die quietly like other CLIs.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
