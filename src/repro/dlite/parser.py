"""Parser for a textual DL-Lite / extended-DL syntax.

One axiom per line; ``%`` starts a comment to end of line.
Concept names start with an uppercase letter, role names with a
lowercase letter (the usual DL convention); ``-`` after a role name
denotes its inverse.

Examples::

    Professor <= Person                   % concept inclusion
    Professor <= exists teaches           % unqualified existential
    exists teaches- <= Course             % inverse on the left
    Professor <= exists teaches.Course    % qualified (extended DL)
    teaches- <= taughtBy                  % role inclusion
    Student <= not Professor              % disjointness (extended DL)

:func:`parse_tbox` accepts the DL-Lite_R fragment and returns a
:class:`~repro.dlite.syntax.TBox`; :func:`parse_extended_tbox` accepts
the full language and returns an
:class:`~repro.dlite.extended.ExtendedTBox`.
"""

from __future__ import annotations

import re

from repro.dlite.extended import (
    Disjointness,
    ExtendedAxiom,
    ExtendedConcept,
    ExtendedConceptInclusion,
    ExtendedTBox,
    QualifiedExists,
)
from repro.dlite.syntax import (
    AtomicConcept,
    AtomicRole,
    Axiom,
    Concept,
    ConceptInclusion,
    Exists,
    Inverse,
    Role,
    RoleInclusion,
    TBox,
)
from repro.lang.errors import ParseError

_NAME = r"[A-Za-z][A-Za-z0-9_]*"
_ROLE_RE = re.compile(rf"^({_NAME})(-?)$")
_EXISTS_RE = re.compile(rf"^exists\s+({_NAME})(-?)(?:\.({_NAME}))?$")


def _parse_role(text: str) -> Role:
    match = _ROLE_RE.match(text)
    if not match or not match.group(1)[0].islower():
        raise ParseError(f"expected a role, got {text!r}")
    role: Role = AtomicRole(match.group(1))
    if match.group(2):
        role = Inverse(role)  # type: ignore[arg-type]
    return role


def _parse_side(text: str) -> ExtendedConcept | Role:
    """A concept (possibly extended) or a role, by convention."""
    text = text.strip()
    exists = _EXISTS_RE.match(text)
    if exists:
        name, inverse, filler = exists.groups()
        if not name[0].islower():
            raise ParseError(f"role name must be lowercase: {name!r}")
        role: Role = AtomicRole(name)
        if inverse:
            role = Inverse(role)  # type: ignore[arg-type]
        if filler:
            if not filler[0].isupper():
                raise ParseError(
                    f"concept name must be uppercase: {filler!r}"
                )
            return QualifiedExists(role, AtomicConcept(filler))
        return Exists(role)
    plain = _ROLE_RE.match(text)
    if not plain:
        raise ParseError(f"cannot parse DL expression {text!r}")
    name = plain.group(1)
    if name[0].isupper():
        if plain.group(2):
            raise ParseError(f"concepts have no inverse: {text!r}")
        return AtomicConcept(name)
    return _parse_role(text)


def _axiom_lines(text: str) -> list[str]:
    # One axiom per line; periods stay (they qualify existentials).
    lines: list[str] = []
    for raw in text.splitlines():
        line = raw.split("%", 1)[0].strip()
        if line:
            lines.append(line)
    return lines


def _parse_axiom(line: str) -> ExtendedAxiom:
    if "<=" not in line:
        raise ParseError(f"missing '<=' in axiom {line!r}")
    left_text, right_text = (part.strip() for part in line.split("<=", 1))
    negated = False
    if right_text.startswith("not "):
        negated = True
        right_text = right_text[4:].strip()
    left = _parse_side(left_text)
    right = _parse_side(right_text)
    left_is_role = isinstance(left, (AtomicRole, Inverse))
    right_is_role = isinstance(right, (AtomicRole, Inverse))
    if negated:
        if left_is_role or right_is_role:
            raise ParseError(
                f"role disjointness is not supported: {line!r}"
            )
        return Disjointness(left, right)  # type: ignore[arg-type]
    if left_is_role != right_is_role:
        raise ParseError(
            f"axiom mixes a role and a concept: {line!r}"
        )
    if left_is_role:
        return RoleInclusion(left, right)  # type: ignore[arg-type]
    if _is_core_concept(left) and _is_core_concept(right):
        return ConceptInclusion(left, right)  # type: ignore[arg-type]
    return ExtendedConceptInclusion(left, right)  # type: ignore[arg-type]


def _is_core_concept(side: object) -> bool:
    return isinstance(side, (AtomicConcept, Exists))


def parse_extended_tbox(text: str) -> ExtendedTBox:
    """Parse the full extended language."""
    return ExtendedTBox(
        tuple(_parse_axiom(line) for line in _axiom_lines(text))
    )


def parse_tbox(text: str) -> TBox:
    """Parse the DL-Lite_R fragment; reject extended constructs."""
    axioms: list[Axiom] = []
    for axiom in parse_extended_tbox(text):
        if isinstance(axiom, (ConceptInclusion, RoleInclusion)):
            axioms.append(axiom)
        else:
            raise ParseError(
                f"axiom {axiom} is outside DL-Lite_R; use "
                "parse_extended_tbox"
            )
    return TBox(tuple(axioms))
