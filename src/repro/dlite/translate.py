"""Translation of DL-Lite_R TBoxes into TGDs.

The standard FO translation: concepts become unary predicates, roles
binary predicates, and each positive inclusion one TGD, e.g.

* ``A ⊑ ∃P``        becomes ``A(x) -> P(x, y)``;
* ``∃P⁻ ⊑ A``       becomes ``P(y, x) -> A(x)``;
* ``P ⊑ S⁻``        becomes ``P(x, y) -> S(y, x)``.

Every produced TGD is *simple* (single-atom head and body, no repeated
variables, no constants) and linear, so a translated TBox is always
within SWR (experiment E11 checks this property).
"""

from __future__ import annotations

from repro.dlite.syntax import (
    AtomicConcept,
    AtomicRole,
    Concept,
    ConceptInclusion,
    Exists,
    Inverse,
    Role,
    RoleInclusion,
    TBox,
)
from repro.lang.atoms import Atom
from repro.lang.terms import Variable
from repro.lang.tgd import TGD

_X = Variable("X")
_Y = Variable("Y")
_Z = Variable("Zf")


def _concept_atom(concept: Concept, subject: Variable, fresh: Variable) -> Atom:
    """The atom asserting *subject* is in *concept*.

    For existential restrictions the second role argument is *fresh*.
    """
    if isinstance(concept, AtomicConcept):
        return Atom(concept.name, [subject])
    role = concept.role
    if isinstance(role, AtomicRole):
        return Atom(role.name, [subject, fresh])
    return Atom(role.role.name, [fresh, subject])


def _role_atom(role: Role, first: Variable, second: Variable) -> Atom:
    """The atom asserting ``role(first, second)`` (handling inverses)."""
    if isinstance(role, AtomicRole):
        return Atom(role.name, [first, second])
    return Atom(role.role.name, [second, first])


def tbox_to_tgds(tbox: TBox) -> tuple[TGD, ...]:
    """Translate every axiom of *tbox* into one TGD."""
    rules: list[TGD] = []
    for index, axiom in enumerate(tbox, start=1):
        label = f"A{index}"
        if isinstance(axiom, ConceptInclusion):
            body = _concept_atom(axiom.sub, _X, _Y)
            head = _concept_atom(axiom.sup, _X, _Z)
            rules.append(TGD([body], [head], label=label))
        elif isinstance(axiom, RoleInclusion):
            body = _role_atom(axiom.sub, _X, _Y)
            head = _role_atom(axiom.sup, _X, _Y)
            rules.append(TGD([body], [head], label=label))
        else:
            raise TypeError(f"unsupported axiom {axiom!r}")
    return tuple(rules)
