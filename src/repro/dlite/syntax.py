"""Abstract syntax of the positive fragment of DL-Lite_R.

Supported expressions:

* basic concepts: atomic concepts ``A`` and unqualified existential
  restrictions ``∃R`` / ``∃R⁻``;
* basic roles: atomic roles ``P`` and inverse roles ``P⁻``;
* positive inclusions: ``B1 ⊑ B2`` (concepts) and ``Q1 ⊑ Q2`` (roles).

Negative inclusions (disjointness) do not affect positive query
answering over satisfiable ontologies and are omitted; functionality
assertions are outside the TGD fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class AtomicConcept:
    """An atomic concept (unary predicate), e.g. ``Professor``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AtomicRole:
    """An atomic role (binary predicate), e.g. ``teaches``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Inverse:
    """The inverse ``P⁻`` of an atomic role."""

    role: AtomicRole

    def __str__(self) -> str:
        return f"{self.role}^-"


Role = Union[AtomicRole, Inverse]


@dataclass(frozen=True)
class Exists:
    """The unqualified existential restriction ``∃Q``."""

    role: Role

    def __str__(self) -> str:
        return f"exists {self.role}"


Concept = Union[AtomicConcept, Exists]


@dataclass(frozen=True)
class ConceptInclusion:
    """A positive concept inclusion ``B1 ⊑ B2``."""

    sub: Concept
    sup: Concept

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"


@dataclass(frozen=True)
class RoleInclusion:
    """A positive role inclusion ``Q1 ⊑ Q2``."""

    sub: Role
    sup: Role

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"


Axiom = Union[ConceptInclusion, RoleInclusion]


@dataclass(frozen=True)
class TBox:
    """A DL-Lite_R TBox: a finite set of positive inclusions."""

    axioms: tuple[Axiom, ...]

    def __iter__(self):
        return iter(self.axioms)

    def __len__(self) -> int:
        return len(self.axioms)

    def __str__(self) -> str:
        return "\n".join(str(a) for a in self.axioms)
