"""Beyond DL-Lite: qualified existentials and disjointness.

Section 6 reports that the WR class "allows for the identification of
new FO-rewritable Description Logic languages".  This module supplies
the concrete instance used by experiment E13:

* **qualified existential restrictions** ``∃R.B`` on either side of a
  concept inclusion.  On the right-hand side they translate to
  *multi-atom-head* TGDs with a shared existential variable
  (``A(x) -> R(x,y), B(y)``) -- outside DL-Lite_R and outside every
  single-head class, yet WR; on the left-hand side to two-atom bodies
  (``R(x,y), B(y) -> A(x)``).
* **negative inclusions** ``B1 ⊑ ¬B2`` (concept disjointness).  They
  do not generate TGDs; instead each one yields a boolean *violation
  query*, and ontology satisfiability reduces to certain answering of
  those queries -- itself done by FO rewriting, so satisfiability is
  AC0 in the data as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.dlite.syntax import (
    AtomicConcept,
    AtomicRole,
    Concept,
    ConceptInclusion,
    Exists,
    Role,
    RoleInclusion,
)
from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Variable
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class QualifiedExists:
    """The qualified existential restriction ``∃Q.B``."""

    role: Role
    filler: AtomicConcept

    def __str__(self) -> str:
        return f"exists {self.role}.{self.filler}"


ExtendedConcept = Union[Concept, QualifiedExists]


@dataclass(frozen=True)
class Disjointness:
    """A negative inclusion ``B1 ⊑ ¬B2``."""

    first: ExtendedConcept
    second: ExtendedConcept

    def __str__(self) -> str:
        return f"{self.first} ⊑ ¬{self.second}"


@dataclass(frozen=True)
class ExtendedConceptInclusion:
    """A positive inclusion over extended concepts."""

    sub: ExtendedConcept
    sup: ExtendedConcept

    def __str__(self) -> str:
        return f"{self.sub} ⊑ {self.sup}"


ExtendedAxiom = Union[
    ExtendedConceptInclusion, ConceptInclusion, RoleInclusion, Disjointness
]


@dataclass(frozen=True)
class ExtendedTBox:
    """A TBox over the extended language."""

    axioms: tuple[ExtendedAxiom, ...]

    def __iter__(self):
        return iter(self.axioms)

    def __len__(self) -> int:
        return len(self.axioms)

    def positive_axioms(self) -> tuple[ExtendedAxiom, ...]:
        """Axioms that generate TGDs."""
        return tuple(
            a for a in self.axioms if not isinstance(a, Disjointness)
        )

    def negative_axioms(self) -> tuple[Disjointness, ...]:
        """The disjointness axioms."""
        return tuple(a for a in self.axioms if isinstance(a, Disjointness))


_X, _Y, _Z = Variable("X"), Variable("Y"), Variable("Zf")


def _role_atom(role: Role, first: Variable, second: Variable) -> Atom:
    if isinstance(role, AtomicRole):
        return Atom(role.name, [first, second])
    return Atom(role.role.name, [second, first])


def _concept_atoms(
    concept: ExtendedConcept, subject: Variable, fresh: Variable
) -> list[Atom]:
    """Atoms asserting *subject* ∈ *concept* (1 atom, or 2 when qualified)."""
    if isinstance(concept, AtomicConcept):
        return [Atom(concept.name, [subject])]
    if isinstance(concept, Exists):
        return [_role_atom(concept.role, subject, fresh)]
    if isinstance(concept, QualifiedExists):
        return [
            _role_atom(concept.role, subject, fresh),
            Atom(concept.filler.name, [fresh]),
        ]
    raise TypeError(f"unsupported concept {concept!r}")


def extended_tbox_to_tgds(tbox: ExtendedTBox) -> tuple[TGD, ...]:
    """Translate the positive axioms of *tbox* into TGDs.

    Qualified existentials on the right produce multi-atom heads with
    a shared existential variable; on the left, two-atom bodies.
    """
    rules: list[TGD] = []
    for index, axiom in enumerate(tbox.positive_axioms(), start=1):
        label = f"X{index}"
        if isinstance(axiom, RoleInclusion):
            rules.append(
                TGD(
                    [_role_atom(axiom.sub, _X, _Y)],
                    [_role_atom(axiom.sup, _X, _Y)],
                    label=label,
                )
            )
            continue
        body = _concept_atoms(axiom.sub, _X, _Y)
        head = _concept_atoms(axiom.sup, _X, _Z)
        rules.append(TGD(body, head, label=label))
    return tuple(rules)


def violation_queries(tbox: ExtendedTBox) -> tuple[ConjunctiveQuery, ...]:
    """One boolean CQ per disjointness axiom, true iff it is violated."""
    queries: list[ConjunctiveQuery] = []
    for index, axiom in enumerate(tbox.negative_axioms(), start=1):
        first = _concept_atoms(axiom.first, _X, Variable("Y1"))
        second = _concept_atoms(axiom.second, _X, Variable("Y2"))
        queries.append(
            ConjunctiveQuery([], first + second, name=f"unsat{index}")
        )
    return tuple(queries)


def is_satisfiable(
    tbox: ExtendedTBox,
    abox,
    rules: Sequence[TGD] | None = None,
) -> tuple[bool, tuple[str, ...]]:
    """Check ABox satisfiability w.r.t. the TBox by FO rewriting.

    Returns ``(satisfiable, violated-axiom descriptions)``.  *abox* is
    a :class:`~repro.data.database.Database` over the DL vocabulary;
    *rules* may be passed to reuse an existing translation.
    """
    from repro.rewriting.engine import FORewritingEngine

    if rules is None:
        rules = extended_tbox_to_tgds(tbox)
    engine = FORewritingEngine(rules)
    violated: list[str] = []
    for axiom, query in zip(tbox.negative_axioms(), violation_queries(tbox)):
        if engine._answer(query, abox):
            violated.append(str(axiom))
    return (not violated, tuple(violated))
