"""DL-Lite_R: syntax and translation into TGDs.

The paper motivates TGD-based ontologies as a generalisation of the
DL-Lite family (Section 1) and reports that WR "allows for the
identification of new FO-rewritable Description Logic languages"
(Section 6).  This package implements the positive-inclusion fragment
of DL-Lite_R (concept and role inclusions over atomic concepts,
existential restrictions and inverse roles) and its standard
translation into TGDs, which experiment E11 feeds to the SWR checker.
"""

from repro.dlite.syntax import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    Exists,
    Inverse,
    RoleInclusion,
    TBox,
)
from repro.dlite.extended import (
    Disjointness,
    ExtendedConceptInclusion,
    ExtendedTBox,
    QualifiedExists,
    extended_tbox_to_tgds,
    is_satisfiable,
    violation_queries,
)
from repro.dlite.parser import parse_extended_tbox, parse_tbox
from repro.dlite.translate import tbox_to_tgds

__all__ = [
    "AtomicConcept",
    "AtomicRole",
    "ConceptInclusion",
    "Disjointness",
    "ExtendedConceptInclusion",
    "ExtendedTBox",
    "Exists",
    "Inverse",
    "RoleInclusion",
    "QualifiedExists",
    "TBox",
    "extended_tbox_to_tgds",
    "is_satisfiable",
    "parse_extended_tbox",
    "parse_tbox",
    "tbox_to_tgds",
    "violation_queries",
]
