"""Sticky and Sticky-Join TGDs via the variable-marking procedure.

The marking procedure (Calì, Gottlob, Pieris):

1. **Base step.**  For each rule and each body variable that does not
   occur in the rule's head, mark that variable (in that rule's body).
2. **Propagation.**  Let a *marked position* be a position at which a
   marked variable occurs in some rule body.  Repeat until fixpoint:
   for each rule and each variable occurring in the rule's *head* at a
   marked position, mark that variable in the rule's body.

A set is **sticky** when no marked variable occurs more than once in a
rule body (counting repeated occurrences within a single atom: the
paper's Example 3 fails stickiness "since y1 appears twice in the atom
t(y1,y1,y2)").  A set is **sticky-join** under the weaker condition
that no marked variable occurs in two or more *distinct* body atoms
(within-atom repetition is tolerated: Example 3 fails it "since y1
appears in two different atoms of body(R3)").  The sticky-join
recognizer implements exactly this occurrence condition, which is the
behaviour the paper's examples pin down; it preserves the known
containments Linear ⊆ Sticky-Join and Sticky ⊆ Sticky-Join.
"""

from __future__ import annotations

from typing import Sequence

from repro.classes.base import ClassCheck, label_of
from repro.lang.atoms import Position
from repro.lang.terms import Variable
from repro.lang.tgd import TGD


def sticky_marking(
    rules: Sequence[TGD],
) -> tuple[frozenset[tuple[int, Variable]], frozenset[Position]]:
    """Run the marking procedure.

    Returns ``(marked, marked_positions)`` where *marked* holds pairs
    ``(rule index, variable)`` (0-based rule indexes) and
    *marked_positions* the positions carrying a marked variable in some
    body.
    """
    rules = tuple(rules)
    marked: set[tuple[int, Variable]] = set()

    # Base step: body variables missing from the head.
    for index, rule in enumerate(rules):
        head_vars = set(rule.head_variables())
        for var in rule.body_variables():
            if var not in head_vars:
                marked.add((index, var))

    # Propagation to fixpoint through positions.
    while True:
        marked_positions = _marked_positions(rules, marked)
        added = False
        for index, rule in enumerate(rules):
            for atom in rule.head:
                for position, term in enumerate(atom.terms, start=1):
                    if not isinstance(term, Variable):
                        continue
                    if Position(atom.relation, position) not in marked_positions:
                        continue
                    if term in set(rule.body_variables()):
                        if (index, term) not in marked:
                            marked.add((index, term))
                            added = True
        if not added:
            return frozenset(marked), frozenset(marked_positions)


def _marked_positions(
    rules: Sequence[TGD], marked: set[tuple[int, Variable]]
) -> set[Position]:
    positions: set[Position] = set()
    for index, rule in enumerate(rules):
        for atom in rule.body:
            for position, term in enumerate(atom.terms, start=1):
                if isinstance(term, Variable) and (index, term) in marked:
                    positions.add(Position(atom.relation, position))
    return positions


def is_sticky(rules: Sequence[TGD]) -> ClassCheck:
    """No marked variable occurs more than once in a rule body."""
    rules = tuple(rules)
    marked, _ = sticky_marking(rules)
    reasons: list[str] = []
    for index, rule in enumerate(rules):
        for var in set(rule.body_variables()):
            if (index, var) not in marked:
                continue
            occurrences = sum(
                len(atom.positions_of(var)) for atom in rule.body
            )
            if occurrences >= 2:
                reasons.append(
                    f"[{label_of(rule, index + 1)}] marked variable "
                    f"{var.name} occurs {occurrences} times in the body"
                )
    return ClassCheck("sticky", not reasons, tuple(reasons))


def is_sticky_join(rules: Sequence[TGD]) -> ClassCheck:
    """No marked variable occurs in two or more distinct body atoms."""
    rules = tuple(rules)
    marked, _ = sticky_marking(rules)
    reasons: list[str] = []
    for index, rule in enumerate(rules):
        for var in set(rule.body_variables()):
            if (index, var) not in marked:
                continue
            atoms = sum(
                1 for atom in rule.body if var in atom.variables()
            )
            if atoms >= 2:
                reasons.append(
                    f"[{label_of(rule, index + 1)}] marked variable "
                    f"{var.name} occurs in {atoms} distinct body atoms"
                )
    return ClassCheck("sticky-join", not reasons, tuple(reasons))
