"""Shape-based classes: Linear, Multilinear, Guarded, Datalog.

* A TGD is **linear** when its body is a single atom (Calì, Gottlob,
  Lukasiewicz).  Linear TGDs are FO-rewritable.
* A TGD is **multilinear** when every body atom contains every
  distinguished (frontier) variable of the rule -- each body atom
  guards the frontier.  The paper's Example 3 rejects multilinearity
  because ``u(y1)`` "does not contain the variable y2" (``y2`` is a
  frontier variable of ``R3``).  Every linear TGD is multilinear.
* A TGD is **guarded** when some body atom contains *all* body
  variables.  Guarded TGDs have decidable (but not AC0) query
  answering; the class is included as a reference point.
* A TGD is **Datalog** (full) when it has no existential head
  variables.
"""

from __future__ import annotations

from typing import Sequence

from repro.classes.base import ClassCheck, label_of
from repro.lang.tgd import TGD


def is_linear(rules: Sequence[TGD]) -> ClassCheck:
    """Every rule's body is a single atom."""
    reasons = tuple(
        f"[{label_of(rule, i)}] body has {len(rule.body)} atoms"
        for i, rule in enumerate(rules, start=1)
        if len(rule.body) != 1
    )
    return ClassCheck("linear", not reasons, reasons)


def is_multilinear(rules: Sequence[TGD]) -> ClassCheck:
    """Every body atom contains every frontier variable."""
    reasons: list[str] = []
    for i, rule in enumerate(rules, start=1):
        frontier = set(rule.distinguished_variables())
        for atom in rule.body:
            missing = frontier - set(atom.variables())
            if missing:
                names = ", ".join(sorted(v.name for v in missing))
                reasons.append(
                    f"[{label_of(rule, i)}] atom {atom} misses frontier "
                    f"variable(s) {names}"
                )
    return ClassCheck("multilinear", not reasons, tuple(reasons))


def is_guarded(rules: Sequence[TGD]) -> ClassCheck:
    """Some body atom contains all body variables of the rule."""
    reasons: list[str] = []
    for i, rule in enumerate(rules, start=1):
        body_vars = set(rule.body_variables())
        if not any(
            body_vars <= set(atom.variables()) for atom in rule.body
        ):
            reasons.append(f"[{label_of(rule, i)}] no guard atom")
    return ClassCheck("guarded", not reasons, tuple(reasons))


def is_datalog(rules: Sequence[TGD]) -> ClassCheck:
    """No rule has existential head variables."""
    reasons: list[str] = []
    for i, rule in enumerate(rules, start=1):
        existential = rule.existential_head_variables()
        if existential:
            names = ", ".join(v.name for v in existential)
            reasons.append(
                f"[{label_of(rule, i)}] existential head variable(s) {names}"
            )
    return ClassCheck("datalog", not reasons, tuple(reasons))
