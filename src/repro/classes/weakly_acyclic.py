"""Weak acyclicity as a class recognizer.

Wraps :func:`repro.chase.termination.is_weakly_acyclic` in the common
:class:`~repro.classes.base.ClassCheck` interface.  Weak acyclicity
guarantees chase termination (not FO-rewritability); the test and
bench harnesses rely on it to know when the chase is usable as ground
truth.
"""

from __future__ import annotations

from typing import Sequence

from repro.chase.termination import is_weakly_acyclic
from repro.classes.base import ClassCheck
from repro.lang.tgd import TGD


def is_weakly_acyclic_check(rules: Sequence[TGD]) -> ClassCheck:
    """Position dependency graph has no cycle through a special edge."""
    if is_weakly_acyclic(rules):
        return ClassCheck("weakly-acyclic", True)
    return ClassCheck(
        "weakly-acyclic",
        False,
        ("position dependency graph has a cycle through a special edge",),
    )
