"""Common result type for class recognizers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClassCheck:
    """Outcome of one class-membership check.

    Attributes:
        name: the class name (``"linear"``, ``"sticky"``, ...).
        member: the verdict.
        reasons: when not a member, per-rule human-readable reasons;
            empty for members.
    """

    name: str
    member: bool
    reasons: tuple[str, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.member

    def explain(self) -> str:
        """Human-readable verdict with reasons."""
        if self.member:
            return f"{self.name}: yes"
        lines = [f"{self.name}: no"]
        lines.extend(f"  {reason}" for reason in self.reasons)
        return "\n".join(lines)


def label_of(rule, index: int) -> str:
    """Display label for a rule in reasons (its label or ``#i``)."""
    return rule.label or f"#{index}"
