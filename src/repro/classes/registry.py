"""Registry of class recognizers.

``BASELINE_RECOGNIZERS`` lists the FO-rewritable comparison classes the
paper names; :func:`all_recognizers` adds the reference classes that
are not FO-rewritable but useful for reporting (guarded, datalog,
weakly-acyclic).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.classes.agrd import is_agrd
from repro.classes.base import ClassCheck
from repro.classes.domain_restricted import is_domain_restricted
from repro.classes.inclusion import is_frontier_guarded, is_inclusion_dependencies
from repro.classes.linear import is_datalog, is_guarded, is_linear, is_multilinear
from repro.classes.sticky import is_sticky, is_sticky_join
from repro.classes.weakly_acyclic import is_weakly_acyclic_check
from repro.lang.tgd import TGD

Recognizer = Callable[[Sequence[TGD]], ClassCheck]

#: The FO-rewritable classes the paper compares SWR/WR against.
BASELINE_RECOGNIZERS: tuple[tuple[str, Recognizer], ...] = (
    ("inclusion-dependencies", is_inclusion_dependencies),
    ("linear", is_linear),
    ("multilinear", is_multilinear),
    ("sticky", is_sticky),
    ("sticky-join", is_sticky_join),
    ("aGRD", is_agrd),
    ("domain-restricted", is_domain_restricted),
)

#: Reference classes reported alongside the baselines.
REFERENCE_RECOGNIZERS: tuple[tuple[str, Recognizer], ...] = (
    ("guarded", is_guarded),
    ("frontier-guarded", is_frontier_guarded),
    ("datalog", is_datalog),
    ("weakly-acyclic", is_weakly_acyclic_check),
)

#: Names of the FO-rewritable baseline classes, in reporting order.
#: These strings are the stable identifiers used by classification
#: tables, golden tests and the lint layer -- treat them as an
#: enum-like constant set.
BASELINE_CLASS_NAMES: tuple[str, ...] = tuple(
    name for name, _ in BASELINE_RECOGNIZERS
)

#: Names of the non-FO-rewritable reference classes, reporting order.
REFERENCE_CLASS_NAMES: tuple[str, ...] = tuple(
    name for name, _ in REFERENCE_RECOGNIZERS
)

#: The graph-based classes of the paper itself, reported first.
PAPER_CLASS_NAMES: tuple[str, ...] = ("SWR", "WR")

#: Every class name a ClassificationReport mentions, in the exact
#: deterministic order reports use.
ALL_CLASS_NAMES: tuple[str, ...] = (
    PAPER_CLASS_NAMES + BASELINE_CLASS_NAMES + REFERENCE_CLASS_NAMES
)


def all_recognizers() -> tuple[tuple[str, Recognizer], ...]:
    """Baselines followed by reference recognizers."""
    return BASELINE_RECOGNIZERS + REFERENCE_RECOGNIZERS
