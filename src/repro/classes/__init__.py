"""Baseline TGD classes the paper compares against.

Every class named in the paper is implemented as a recognizer returning
a :class:`~repro.classes.base.ClassCheck` with human-readable reasons:

* **Linear** and **Multilinear** TGDs (Calì–Gottlob–Lukasiewicz),
* **Sticky** and **Sticky-Join** TGDs (Calì–Gottlob–Pieris), via the
  variable-marking procedure,
* **aGRD** -- acyclic graph of rule dependencies (Baget et al. [2]),
* **Domain-Restricted** TGDs (Baget et al. [2]),
* **Weakly Acyclic** TGDs (Fagin et al.; chase termination, used by the
  test harness),
* **Guarded** TGDs and plain **Datalog** (reference points).

Section 5 of the paper proves that, over simple TGDs, SWR subsumes
Linear, Multilinear, Sticky and Sticky-Join; experiment E7 checks this
empirically against these recognizers.
"""

from repro.classes.agrd import is_agrd, rule_dependency_graph
from repro.classes.base import ClassCheck
from repro.classes.domain_restricted import is_domain_restricted
from repro.classes.inclusion import is_frontier_guarded, is_inclusion_dependencies
from repro.classes.linear import is_datalog, is_guarded, is_linear, is_multilinear
from repro.classes.registry import (
    ALL_CLASS_NAMES,
    BASELINE_CLASS_NAMES,
    BASELINE_RECOGNIZERS,
    PAPER_CLASS_NAMES,
    REFERENCE_CLASS_NAMES,
    REFERENCE_RECOGNIZERS,
    all_recognizers,
)
from repro.classes.sticky import is_sticky, is_sticky_join, sticky_marking
from repro.classes.weakly_acyclic import is_weakly_acyclic_check

__all__ = [
    "ALL_CLASS_NAMES",
    "BASELINE_CLASS_NAMES",
    "BASELINE_RECOGNIZERS",
    "PAPER_CLASS_NAMES",
    "REFERENCE_CLASS_NAMES",
    "REFERENCE_RECOGNIZERS",
    "ClassCheck",
    "all_recognizers",
    "is_agrd",
    "is_datalog",
    "is_domain_restricted",
    "is_frontier_guarded",
    "is_inclusion_dependencies",
    "is_guarded",
    "is_linear",
    "is_multilinear",
    "is_sticky",
    "is_sticky_join",
    "is_weakly_acyclic_check",
    "rule_dependency_graph",
    "sticky_marking",
]
