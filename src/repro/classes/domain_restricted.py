"""Domain-Restricted TGDs (Baget et al. [2]).

A rule is *domain restricted* when every head atom contains either all
of the rule's body variables or none of them.  The class is one of the
known FO-rewritable classes the paper's WR is claimed to subsume
(Section 6: "including domain-restricted TGDs and acyclic graph of
rule dependencies [2], which are incomparable with SWR TGDs").
"""

from __future__ import annotations

from typing import Sequence

from repro.classes.base import ClassCheck, label_of
from repro.lang.tgd import TGD


def is_domain_restricted(rules: Sequence[TGD]) -> ClassCheck:
    """Every head atom contains all body variables or none of them."""
    reasons: list[str] = []
    for i, rule in enumerate(rules, start=1):
        body_vars = set(rule.body_variables())
        for atom in rule.head:
            head_atom_vars = set(atom.variables()) & body_vars
            if head_atom_vars and head_atom_vars != body_vars:
                missing = ", ".join(
                    sorted(v.name for v in body_vars - head_atom_vars)
                )
                reasons.append(
                    f"[{label_of(rule, i)}] head atom {atom} contains some "
                    f"but not all body variables (missing {missing})"
                )
    return ClassCheck("domain-restricted", not reasons, tuple(reasons))
