"""Inclusion dependencies and frontier-guarded TGDs.

* **Inclusion dependencies** (the formalism of the paper's reference
  [7], Calì–Lembo–Rosati 2003): linear TGDs whose single body atom and
  single head atom contain no repeated variables and no constants --
  the classical FO-rewritable fragment that predates Datalog±.  Every
  inclusion dependency is a simple linear TGD, hence SWR.
* **Frontier-guarded TGDs**: some body atom contains the whole
  frontier.  Decidable but not FO-rewritable in general; included as a
  reference point (it subsumes guarded for query answering purposes).
"""

from __future__ import annotations

from typing import Sequence

from repro.classes.base import ClassCheck, label_of
from repro.lang.tgd import TGD


def is_inclusion_dependencies(rules: Sequence[TGD]) -> ClassCheck:
    """Single-atom body and head; no repeats; no constants."""
    reasons: list[str] = []
    for i, rule in enumerate(rules, start=1):
        label = label_of(rule, i)
        if len(rule.body) != 1:
            reasons.append(f"[{label}] body has {len(rule.body)} atoms")
            continue
        if len(rule.head) != 1:
            reasons.append(f"[{label}] head has {len(rule.head)} atoms")
            continue
        for atom in (rule.body[0], rule.head[0]):
            if atom.has_repeated_variable():
                reasons.append(
                    f"[{label}] repeated variable in {atom}"
                )
            if atom.constants():
                reasons.append(f"[{label}] constant in {atom}")
    return ClassCheck("inclusion-dependencies", not reasons, tuple(reasons))


def is_frontier_guarded(rules: Sequence[TGD]) -> ClassCheck:
    """Some body atom contains every frontier variable."""
    reasons: list[str] = []
    for i, rule in enumerate(rules, start=1):
        frontier = set(rule.distinguished_variables())
        if not any(
            frontier <= set(atom.variables()) for atom in rule.body
        ):
            reasons.append(
                f"[{label_of(rule, i)}] no body atom guards the frontier"
            )
    return ClassCheck("frontier-guarded", not reasons, tuple(reasons))
