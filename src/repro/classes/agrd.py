"""Acyclic Graph of Rule Dependencies (aGRD), Baget et al. [2].

Rule ``R2`` *depends on* rule ``R1`` when an application of ``R1`` can
trigger a new application of ``R2`` -- witnessed by a unifier between
some head atom of ``R1`` and some body atom of ``R2`` that respects
existential variables (an existential head variable of ``R1`` denotes
a fresh null, so it cannot be required to equal a constant, a frontier
variable, or another existential variable).  A TGD set is aGRD when
the dependency graph has no directed cycle; aGRD sets are
FO-rewritable (the rewriting saturation visits each rule at most
once along any derivation path).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.classes.base import ClassCheck, label_of
from repro.lang.atoms import Atom
from repro.lang.terms import Constant, Variable
from repro.lang.tgd import TGD


def _may_trigger(producer: TGD, consumer: TGD) -> bool:
    """True iff firing *producer* can enable a new match of *consumer*."""
    fresh_consumer = consumer.rename_apart(producer.variables())
    existential = set(producer.existential_head_variables())
    frontier = set(producer.distinguished_variables())
    for head_atom in producer.head:
        for body_atom in fresh_consumer.body:
            if _unifies_with_nulls(head_atom, body_atom, existential, frontier):
                return True
    return False


def _unifies_with_nulls(
    head_atom: Atom,
    body_atom: Atom,
    existential: set[Variable],
    frontier: set[Variable],
) -> bool:
    """Position-wise unification respecting invented nulls."""
    if (
        head_atom.relation != body_atom.relation
        or head_atom.arity != body_atom.arity
    ):
        return False
    parent: dict = {}

    def find(term):
        parent.setdefault(term, term)
        while parent[term] != term:
            parent[term] = parent[parent[term]]
            term = parent[term]
        return term

    def union(left, right):
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[left_root] = right_root

    for left, right in zip(head_atom.terms, body_atom.terms):
        union(left, right)

    groups: dict = {}
    for term in list(parent):
        groups.setdefault(find(term), set()).add(term)
    for group in groups.values():
        constants = {t for t in group if isinstance(t, Constant)}
        if len(constants) > 1:
            return False
        group_existential = {
            t for t in group if isinstance(t, Variable) and t in existential
        }
        if group_existential:
            if len(group_existential) > 1:
                return False
            if constants:
                return False
            if any(
                isinstance(t, Variable) and t in frontier for t in group
            ):
                return False
    return True


def rule_dependency_graph(rules: Sequence[TGD]) -> nx.DiGraph:
    """The GRD: nodes are rule indexes; edge i→j iff rule j depends on i."""
    rules = tuple(rules)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(rules)))
    for i, producer in enumerate(rules):
        for j, consumer in enumerate(rules):
            if _may_trigger(producer, consumer):
                graph.add_edge(i, j)
    return graph


def is_agrd(rules: Sequence[TGD]) -> ClassCheck:
    """The graph of rule dependencies is acyclic."""
    rules = tuple(rules)
    graph = rule_dependency_graph(rules)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return ClassCheck("aGRD", True)
    rendered = " -> ".join(
        label_of(rules[source], source + 1) for source, _ in cycle
    )
    first = cycle[0][0]
    rendered += f" -> {label_of(rules[first], first + 1)}"
    return ClassCheck(
        "aGRD", False, (f"dependency cycle: {rendered}",)
    )
