"""The session layer: compile-once / serve-many query answering.

A :class:`Session` owns everything that is fixed for the lifetime of an
ontology -- the classification, the rewriting engine with its in-memory
cache, the optional persistent rewriting cache, the virtual ABox and
the SQLite evaluation backend -- and hands out
:class:`~repro.api.prepared.PreparedQuery` objects whose compilation is
shared across all of them.  It is the public surface the paper's OBDA
architecture maps onto::

    from repro.api import Session

    with Session(rules, data, cache_dir="~/.cache/repro") as session:
        prepared = session.prepare(query)      # compiled at most once
        prepared.answer()                      # in-memory evaluation
        prepared.answer(backend="sql")         # compiled SQL on SQLite
        prepared.sql                           # the SQL text itself

    # batch: independent queries fan out over a worker pool
    for item in session.answer_many(queries, max_workers=4):
        print(item.index, len(item.answers))

The legacy :class:`repro.obda.OBDASystem` facade is now a deprecated
shim over this class.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro import obs
from repro.api.cache import CacheStats, EngineTier, RewritingCache
from repro.api.options import EngineOptions, merge_legacy_options
from repro.api.prepared import PreparedQuery
from repro.chase.certain import certain_answers_via_chase
from repro.core.classify import ClassificationReport, classify
from repro.data.backend import Backend, BackendFactory, create_backend
from repro.data.database import Database
from repro.lang.errors import ReproError
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.signature import Signature
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.obda.mappings import MappingAssertion, apply_mappings
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.engine import FORewritingEngine
from repro.rewriting.store import budget_digest, ontology_digest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis import AnalysisReport
    from repro.checkers import CheckConfig
    from repro.hybrid.cost import HybridDecision
    from repro.hybrid.maintain import MaintenanceResult, MaterializedCore
    from repro.lint.diagnostics import LintReport

_BACKENDS = ("memory", "sql")

#: Chase step budget for building a hybrid materialized core; matches
#: the strategy layer's chase ceiling.
HYBRID_CHASE_MAX_STEPS = 200_000


class _HybridState:
    """Everything the hybrid answering regime keeps per session.

    ``core`` is None for a REWRITE decision (nothing materialized);
    ``residual_engine`` is set only for SPLIT; ``backend`` is the lazy
    SQL backend over the materialized instance, rebuilt when a
    maintenance operation falls back to a full re-chase.
    """

    __slots__ = ("decision", "rules", "core", "residual_engine", "backend")

    def __init__(
        self,
        decision: "HybridDecision",
        rules: tuple[TGD, ...],
        core: "MaterializedCore | None",
        residual_engine: FORewritingEngine | None,
    ) -> None:
        self.decision = decision
        self.rules = rules
        self.core = core
        self.residual_engine = residual_engine
        self.backend: Backend | None = None


class Session:
    """Ontology + optional mappings/data, with all compilation shared.

    Args:
        ontology: the TGD set (intensional layer).
        data: the source database (extensional layer); optional --
            a data-less session can still prepare queries, emit SQL
            and answer over explicitly passed databases.
        mappings: GAV assertions source -> ontology vocabulary; when
            None the source is taken to be stated directly in the
            ontology's vocabulary (identity mapping).
        cache_dir: directory for the persistent rewriting cache; when
            None only the in-memory cache is used.  The cache file is
            keyed by content digests, so any number of sessions (and
            processes) may share one directory -- see
            :mod:`repro.api.cache` for the invalidation rules.
        options: every engine-tuning knob -- budget, rewriting target,
            pruning, pre-flight estimation, parallel minimization -- in
            one frozen :class:`~repro.api.EngineOptions` value (default:
            ``EngineOptions()``).
        backend_factory: the evaluation backend provider -- a name
            registered with :func:`repro.data.backend.register_backend`
            (default ``"sqlite"``) or a factory callable
            ``Signature -> Backend``.  The session programs only
            against the :class:`~repro.data.backend.Backend` protocol.
        **legacy: the pre-``EngineOptions`` keywords (``budget=``,
            ``target=``, ``prune_empty=``, ...) still work but emit a
            :class:`DeprecationWarning` once per process; see
            ``docs/api.md`` for the migration table.
    """

    def __init__(
        self,
        ontology: Sequence[TGD],
        data: Database | None = None,
        *,
        mappings: Sequence[MappingAssertion] | None = None,
        cache_dir: str | Path | None = None,
        options: EngineOptions | None = None,
        backend_factory: "str | BackendFactory" = "sqlite",
        **legacy: Any,
    ) -> None:
        self._ontology = tuple(ontology)
        self._source = data
        self._mappings = tuple(mappings) if mappings is not None else None
        self._options = merge_legacy_options(options, legacy)
        self._backend_factory = backend_factory
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._cache = (
            RewritingCache(self._cache_dir)
            if self._cache_dir is not None
            else None
        )
        tier = (
            EngineTier(self._cache, self._ontology, self._options.budget)
            if self._cache is not None
            else None
        )
        self._engine = FORewritingEngine(
            self._ontology,
            budget=self._options.budget,
            filter_relevant=self._options.filter_relevant,
            persistent=tier,
            preflight_estimate=self._options.preflight_estimate,
            minimize_workers=self._options.minimize_workers,
            minimize_mode=self._options.minimize_mode,
            target=self._options.target,
        )
        self._lock = threading.RLock()
        self._prepared: dict[str, PreparedQuery] = {}
        self._pruning: frozenset[str] | None = None
        self._pruning_ready = False
        self._abox: Database | None = None
        self._sql_backend: Backend | None = None
        self._classification: ClassificationReport | None = None
        self._analysis: "AnalysisReport | None" = None
        self._hybrid: "_HybridState | None" = None
        self._hybrid_ready = False
        self._closed = False

    # ----------------------------------------------------------------- #
    # Layers                                                              #
    # ----------------------------------------------------------------- #

    @property
    def ontology(self) -> tuple[TGD, ...]:
        """The intensional layer (TGDs)."""
        return self._ontology

    @property
    def ontology_digest(self) -> str:
        """Content digest of the ontology (the persistent-cache key part)."""
        return ontology_digest(self._ontology)

    @property
    def options(self) -> EngineOptions:
        """The frozen engine-options bundle this session was opened with."""
        return self._options

    @property
    def budget(self) -> RewritingBudget:
        """The rewriting budget every compilation runs under."""
        return self._options.budget

    @property
    def engine(self) -> FORewritingEngine:
        """The underlying rewriting engine (compilation tier)."""
        return self._engine

    @property
    def cache(self) -> RewritingCache | None:
        """The persistent rewriting cache, or None when not configured."""
        return self._cache

    @property
    def cache_dir(self) -> Path | None:
        """The persistent cache directory, or None."""
        return self._cache_dir

    @property
    def data(self) -> Database | None:
        """The source database this session was opened over (if any)."""
        return self._source

    def classification(self) -> ClassificationReport:
        """Where the ontology sits among the implemented classes."""
        with self._lock:
            if self._classification is None:
                self._classification = classify(self._ontology)
            return self._classification

    @property
    def prune_empty(self) -> bool:
        """Whether statically-empty disjuncts are pruned at evaluation."""
        return self._options.prune_empty

    def pruning_relations(self) -> frozenset[str] | None:
        """The relations pruning keeps (the ABox's possible vocabulary).

        None when pruning is off or the session has neither mappings
        nor data (nothing is statically known about the ABox, so every
        disjunct must be kept).
        """
        if not self._options.prune_empty:
            return None
        with self._lock:
            if not self._pruning_ready:
                if self._mappings is None and self._source is None:
                    self._pruning = None
                else:
                    from repro.checkers.pruning import supported_relations

                    self._pruning = supported_relations(
                        self._mappings, self._source
                    )
                self._pruning_ready = True
            return self._pruning

    def check(
        self,
        queries: Iterable[
            ConjunctiveQuery | UnionOfConjunctiveQueries | str
        ] | None = None,
        config: "CheckConfig | None" = None,
    ) -> "LintReport":
        """Static cross-artifact analysis of this session's project.

        Runs the ``repro check`` passes (:mod:`repro.checkers`) over
        the session's ontology, mappings and data, with *queries* as
        the workload (default: every query prepared so far).  Returns
        the :class:`~repro.lint.diagnostics.LintReport`; render it
        with :func:`repro.checkers.render_check`.
        """
        from repro.checkers import CheckConfig, Project, check_project

        if config is None:
            config = CheckConfig(budget=self._options.budget)
        if queries is None:
            workload = [p.query for p in self.prepared_queries()]
        else:
            workload = [
                UnionOfConjunctiveQueries.of(self._coerce(query))
                for query in queries
            ]
        # The checkers take a *set of CQs* (a workload), so UCQs are
        # flattened into their disjuncts.
        cqs = tuple(cq for ucq in workload for cq in ucq)
        project = Project(
            rules=self._ontology,
            queries=cqs,
            mappings=self._mappings,
            data=self._source,
            path="<session>",
        )
        return check_project(project, config)

    def analyze(self) -> "AnalysisReport":
        """Constraint-interaction analysis of the session's ontology.

        Bundles the chase-termination lattice certificate (weak ⊊
        joint ⊊ super-weak acyclicity, with witness cycles) and the
        separability partition of :mod:`repro.analysis`.  The workload
        for the partition's cost estimates is every query prepared so
        far.  Memoized: the ontology is immutable, so the report is
        computed once per session.
        """
        from repro.analysis import analyze

        with self._lock:
            if self._analysis is None:
                with obs.span(
                    "session.analyze", rules=len(self._ontology)
                ):
                    workload = tuple(
                        cq
                        for p in self.prepared_queries()
                        for cq in p.query
                    )
                    self._analysis = analyze(
                        self._ontology,
                        queries=workload,
                        budget=self._options.budget,
                    )
            return self._analysis

    def abox(self) -> Database:
        """The virtual ABox: source data seen through the mappings."""
        with self._lock:
            if self._abox is None:
                if self._source is None:
                    raise ReproError(
                        "session has no data; pass a database to "
                        "answer()/answer_many() or open the session "
                        "with one"
                    )
                if self._mappings is None:
                    self._abox = self._source
                else:
                    with obs.span(
                        "obda.materialize_abox", mappings=len(self._mappings)
                    ) as span:
                        self._abox = apply_mappings(
                            self._mappings, self._source
                        )
                        span.set(facts=len(self._abox))
            return self._abox

    def sql_backend(self) -> Backend:
        """The lazily created evaluation backend over the virtual ABox.

        Built by the session's ``backend_factory`` (default: the
        bundled SQLite provider); the session programs only against the
        :class:`~repro.data.backend.Backend` protocol.  The schema
        covers the whole ontology signature (the rewriting may mention
        relations with no stored facts), and the backend is shared --
        and safe to share -- across batch worker threads.
        """
        with self._lock:
            if self._sql_backend is None:
                with obs.span("obda.sql_backend_init") as init_span:
                    abox = self.abox()
                    signature = Signature(dict(abox.signature))
                    for rule in self._ontology:
                        signature.observe_tgd(rule)
                    backend = create_backend(self._backend_factory, signature)
                    backend.load(abox.facts())
                    init_span.set(relations=len(signature), facts=len(abox))
                self._sql_backend = backend
            return self._sql_backend

    # ----------------------------------------------------------------- #
    # Compilation                                                         #
    # ----------------------------------------------------------------- #

    def prepare(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries | str,
        *,
        target: str | None = None,
    ) -> PreparedQuery:
        """The session's prepared handle for *query* (memoized).

        Accepts a parsed (U)CQ or query text.  Queries equal up to
        renaming / reordering share one handle, hence one compilation.
        *target* overrides the session's rewriting target for this
        query; handles are memoized per (query, requested target), so
        preparing the same query under two targets yields two handles
        (whose compilations still share the engine's per-target
        caches).
        """
        prepared = PreparedQuery(self, self._coerce(query), target=target)
        memo_key = f"{prepared.digest}/{prepared.target}"
        with self._lock:
            existing = self._prepared.get(memo_key)
            if existing is not None:
                return existing
            self._prepared[memo_key] = prepared
            return prepared

    def prepared_queries(self) -> tuple[PreparedQuery, ...]:
        """Every handle this session has prepared so far."""
        with self._lock:
            return tuple(self._prepared.values())

    @staticmethod
    def _coerce(
        query: ConjunctiveQuery | UnionOfConjunctiveQueries | str,
    ) -> ConjunctiveQuery | UnionOfConjunctiveQueries:
        if isinstance(query, str):
            from repro.lang.parser import parse_query

            return parse_query(query)
        return query

    # ----------------------------------------------------------------- #
    # Answering                                                           #
    # ----------------------------------------------------------------- #

    def answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries | str,
        database: Database | None = None,
        *,
        backend: str = "memory",
        require_complete: bool = True,
        target: str | None = None,
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers of *query* (prepared implicitly).

        Shorthand for ``session.prepare(query, target=target).answer(...)``.
        """
        return self.prepare(query, target=target).answer(
            database, backend=backend, require_complete=require_complete
        )

    def answer_chase(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries | str,
        max_steps: int = 100_000,
    ) -> frozenset[tuple[Term, ...]]:
        """Oracle: certain answers via the restricted chase.

        Exponentially more expensive in the data; used to validate the
        rewriting pipeline.
        """
        with obs.span("obda.chase_oracle") as span:
            result = certain_answers_via_chase(
                self._coerce(query),
                self._ontology,
                self.abox(),
                max_steps=max_steps,
            )
            span.set(
                answers=len(result.answers), chase_steps=result.chase_steps
            )
        return result.answers

    def answer_many(
        self,
        queries: Iterable[ConjunctiveQuery | UnionOfConjunctiveQueries | str],
        database: Database | None = None,
        *,
        max_workers: int | None = None,
        mode: str = "thread",
        backend: str = "memory",
        require_complete: bool = True,
        ordered: bool = False,
        target: str | None = None,
    ) -> "Iterator":
        """Answer many independent queries on a worker pool, streaming.

        Yields one :class:`~repro.api.pool.BatchResult` per query *as it
        completes* (set ``ordered=True`` to stream in input order
        instead).  ``mode="thread"`` shares this session's engine and
        caches across a thread pool -- ideal when most compilations hit
        a cache; ``mode="process"`` fans out over a process pool for
        real multi-core speedup on cold compilations (each worker
        builds its own session, sharing only the persistent cache
        file).  Answers are identical to the sequential path either
        way.
        """
        from repro.api.pool import run_batch

        return run_batch(
            self,
            list(queries),
            database=database,
            max_workers=max_workers,
            mode=mode,
            backend=backend,
            require_complete=require_complete,
            ordered=ordered,
            target=target,
        )

    def answer_all(
        self,
        queries: Iterable[ConjunctiveQuery | UnionOfConjunctiveQueries | str],
        database: Database | None = None,
        **kwargs: Any,
    ) -> list:
        """:meth:`answer_many`, collected into an input-ordered list."""
        kwargs["ordered"] = True
        return list(self.answer_many(queries, database, **kwargs))

    def sql_for(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries | str,
        *,
        target: str | None = None,
    ) -> str:
        """The SQL text the rewriting of *query* compiles to."""
        return self.prepare(query, target=target).sql

    # ----------------------------------------------------------------- #
    # Hybrid answering + ABox mutation                                    #
    # ----------------------------------------------------------------- #

    def hybrid_decision(self) -> "HybridDecision | None":
        """The cost model's REWRITE/SPLIT/MATERIALIZE decision.

        None when the session runs with ``options.hybrid="off"``.
        Building the decision needs the session's data (relation
        cardinalities) and analysis; it is memoized together with the
        materialized core it may imply.
        """
        state = self._hybrid_state()
        return state.decision if state is not None else None

    def _hybrid_state(self) -> "_HybridState | None":
        if self._options.hybrid == "off":
            return None
        with self._lock:
            if self._hybrid_ready:
                return self._hybrid
            from repro.hybrid.cost import HybridChoice, decide
            from repro.hybrid.store import load_or_build

            abox = self.abox()
            analysis = self.analyze()
            partition = analysis.separability
            decision = decide(
                partition=partition,
                certificate=analysis.certificate,
                data_size=len(abox),
                relation_sizes={
                    name: abox.count(name) for name in abox.relations()
                },
                workload_weight=max(1, len(self._prepared)),
                mode=self._options.hybrid,
            )
            if decision.choice is HybridChoice.REWRITE:
                state = _HybridState(decision, (), None, None)
            else:
                rules = (
                    self._ontology
                    if decision.choice is HybridChoice.MATERIALIZE
                    else partition.core
                )
                core = load_or_build(
                    self._cache,
                    self.ontology_digest,
                    rules,
                    abox,
                    max_steps=HYBRID_CHASE_MAX_STEPS,
                    threshold=self._options.hybrid_threshold,
                )
                residual_engine = None
                if decision.choice is HybridChoice.SPLIT:
                    tier = (
                        EngineTier(
                            self._cache,
                            partition.residual,
                            self._options.budget,
                        )
                        if self._cache is not None
                        else None
                    )
                    residual_engine = FORewritingEngine(
                        partition.residual,
                        budget=self._options.budget,
                        filter_relevant=self._options.filter_relevant,
                        persistent=tier,
                        minimize_workers=self._options.minimize_workers,
                        minimize_mode=self._options.minimize_mode,
                        target="ucq",
                    )
                state = _HybridState(
                    decision, tuple(rules), core, residual_engine
                )
            self._hybrid = state
            self._hybrid_ready = True
            return state

    def _hybrid_answer(
        self,
        prepared: PreparedQuery,
        state: "_HybridState",
        *,
        backend: str,
        require_complete: bool,
    ) -> frozenset[tuple[Term, ...]]:
        """Answer over the materialized instance (SPLIT/MATERIALIZE).

        MATERIALIZE evaluates the *original* query over the full chase;
        SPLIT rewrites w.r.t. the residual rules only and evaluates
        that rewriting over the chased core — the separability
        guarantee ``cert(q, S∪R, D) = cert(rewrite_R(q), chase_S(D))``.
        Both evaluate with certain-answer semantics (null-bearing rows
        are never answers).
        """
        from repro.hybrid.cost import HybridChoice

        core = state.core
        assert core is not None
        if state.decision.choice is HybridChoice.MATERIALIZE:
            ucq = prepared.query
        else:
            assert state.residual_engine is not None
            result = state.residual_engine._rewrite(prepared.query)
            FORewritingEngine._check_complete(result, require_complete)
            ucq = result.ucq
        regime = state.decision.choice.value
        if backend == "sql":
            from repro.lang.terms import Null

            hybrid_backend = self._hybrid_backend(state)
            hybrid_backend.ensure_ucq(ucq)
            with obs.span(
                "obda.answer", backend="sqlite", hybrid=regime
            ) as span:
                rows = hybrid_backend.execute_ucq(ucq)
                answers = frozenset(
                    row
                    for row in rows
                    if not any(isinstance(term, Null) for term in row)
                )
                span.set(answers=len(answers))
            return answers
        from repro.data.evaluation import evaluate_ucq

        with obs.span("obda.answer", backend="memory", hybrid=regime) as span:
            answers = evaluate_ucq(ucq, core.instance, certain=True)
            span.set(answers=len(answers))
        return answers

    def _hybrid_backend(self, state: "_HybridState") -> Backend:
        """The lazy SQL backend mirroring the materialized instance."""
        with self._lock:
            if state.backend is None:
                assert state.core is not None
                instance = state.core.instance
                signature = Signature(dict(instance.signature))
                for rule in self._ontology:
                    signature.observe_tgd(rule)
                backend = create_backend(self._backend_factory, signature)
                backend.load(instance.facts())
                state.backend = backend
            return state.backend

    def insert(
        self, facts: "Iterable[Any] | str"
    ) -> "MaintenanceResult | None":
        """Add ABox facts; incrementally maintain derived state.

        Accepts parsed atoms or database text (``"a(c). r(c, d)."``).
        The virtual ABox, the SQL backend, static pruning, and — when a
        hybrid core is materialized — the chase closure are all brought
        up to date; the core uses a semi-naive delta chase unless the
        delta exceeds ``options.hybrid_threshold`` of the instance.
        Returns the core's :class:`MaintenanceResult`, or None when no
        core is materialized.
        """
        return self._mutate(facts, delete=False)

    def delete(
        self, facts: "Iterable[Any] | str"
    ) -> "MaintenanceResult | None":
        """Remove ABox facts; incrementally maintain derived state.

        The materialized core (when present) retracts consequences via
        DRed-style overestimate-then-rederive instead of re-chasing.
        Returns the core's :class:`MaintenanceResult`, or None when no
        core is materialized.
        """
        return self._mutate(facts, delete=True)

    def _mutate(
        self, facts: "Iterable[Any] | str", *, delete: bool
    ) -> "MaintenanceResult | None":
        if isinstance(facts, str):
            from repro.lang.parser import parse_database

            atoms = tuple(parse_database(facts))
        else:
            atoms = tuple(facts)
        with self._lock, obs.span(
            "session.mutate",
            op="delete" if delete else "insert",
            facts=len(atoms),
        ):
            abox = self.abox()
            if abox is self._source:
                # Mutations must never reach the caller's database
                # object; fork the virtual ABox on first write.
                abox = self._abox = self._source.copy()
            if delete:
                changed = [fact for fact in atoms if abox.discard(fact)]
                obs.count("session.deletes", len(changed))
            else:
                changed = [fact for fact in atoms if abox.add(fact)]
                obs.count("session.inserts", len(changed))
            # Data-derived compilation state is stale now: the pruning
            # vocabulary (and SQL compiled from pruned UCQs) must be
            # recomputed against the new ABox.
            self._pruning = None
            self._pruning_ready = False
            for prepared in self._prepared.values():
                prepared._invalidate_data_caches()
            self._refresh_backend(changed, delete=delete)
            result: "MaintenanceResult | None" = None
            state = self._hybrid if self._hybrid_ready else None
            if state is not None and state.core is not None:
                result = (
                    state.core.apply_delete(changed)
                    if delete
                    else state.core.apply_insert(changed)
                )
                self._refresh_hybrid_backend(state, result)
            return result

    def _refresh_backend(
        self, changed: Sequence[Any], *, delete: bool
    ) -> None:
        """Propagate an ABox delta into the main SQL backend (if built)."""
        backend = self._sql_backend
        if backend is None or not changed:
            return
        if delete:
            remove = getattr(backend, "delete", None)
            if remove is None:
                # The backend cannot unload rows; drop it and let the
                # next use rebuild from the mutated ABox.
                if not getattr(backend, "closed", False):
                    backend.close()
                # audit: ok[RL302] only called from _mutate, under self._lock
                self._sql_backend = None
            else:
                remove(changed)
        else:
            backend.ensure_atoms(changed)
            backend.load(changed)

    def _refresh_hybrid_backend(
        self, state: "_HybridState", result: "MaintenanceResult"
    ) -> None:
        """Mirror a maintenance delta into the hybrid SQL backend."""
        backend = state.backend
        if backend is None:
            return
        if result.full_rechase:
            if not getattr(backend, "closed", False):
                backend.close()
            state.backend = None
            return
        if result.removed:
            remove = getattr(backend, "delete", None)
            if remove is None:
                if not getattr(backend, "closed", False):
                    backend.close()
                state.backend = None
                return
            remove(result.removed)
        if result.added:
            backend.ensure_atoms(result.added)
            backend.load(result.added)

    def _execute(
        self,
        prepared: PreparedQuery,
        *,
        database: Database | None,
        backend: str,
        require_complete: bool,
    ) -> frozenset[tuple[Term, ...]]:
        """Evaluation entry point shared by PreparedQuery and the pool."""
        if backend not in _BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        if prepared.target_selected == "datalog":
            return self._execute_datalog(
                prepared,
                database=database,
                backend=backend,
                require_complete=require_complete,
            )
        if database is None and self._options.hybrid != "off":
            from repro.hybrid.cost import HybridChoice

            state = self._hybrid_state()
            if (
                state is not None
                and state.decision.choice is not HybridChoice.REWRITE
            ):
                return self._hybrid_answer(
                    prepared,
                    state,
                    backend=backend,
                    require_complete=require_complete,
                )
        if backend == "sql":
            if database is not None:
                raise ReproError(
                    "backend='sql' evaluates over the session's own "
                    "data; pass databases only with backend='memory'"
                )
            result = prepared.result
            FORewritingEngine._check_complete(result, require_complete)
            ucq = result.ucq
            pruned = prepared.pruned
            if pruned is not None:
                if pruned.ucq is None:
                    # Every disjunct was statically empty: no database
                    # reachable through the mappings satisfies any of
                    # them, so the certain answers are empty.
                    return frozenset()
                ucq = pruned.ucq
            sql_backend = self.sql_backend()
            sql_backend.ensure_ucq(ucq)
            with obs.span(
                "obda.answer", backend="sqlite"
            ) as span:
                answers = sql_backend.execute_ucq(ucq)
                span.set(answers=len(answers))
            return answers
        result = prepared.result
        FORewritingEngine._check_complete(result, require_complete)
        ucq = result.ucq
        if database is not None:
            # An explicitly passed database bypasses the mappings, so
            # the session-level supported set does not apply; prune
            # against *that* database's own (non-empty) relations.
            target = database
            if self._options.prune_empty:
                from repro.checkers.pruning import (
                    prune_statically_empty,
                    supported_relations,
                )

                pruned = prune_statically_empty(
                    ucq, supported_relations(None, database)
                )
                if pruned.ucq is None:
                    return frozenset()
                ucq = pruned.ucq
        else:
            target = self.abox()
            pruned = prepared.pruned
            if pruned is not None:
                if pruned.ucq is None:
                    return frozenset()
                ucq = pruned.ucq
        with obs.span("obda.answer", backend="memory") as span:
            from repro.data.evaluation import evaluate_ucq

            answers = evaluate_ucq(ucq, target)
            span.set(answers=len(answers))
        return answers

    def _execute_datalog(
        self,
        prepared: PreparedQuery,
        *,
        database: Database | None,
        backend: str,
        require_complete: bool,
    ) -> frozenset[tuple[Term, ...]]:
        """Datalog-target evaluation: materialize the rule program
        in-memory, or run the compiled ``WITH``-CTE SQL on SQLite.

        Static disjunct pruning does not apply here (the program's
        intermediate predicates are populated during evaluation, not
        stored), so ``prune_empty`` is a no-op for this target.
        """
        rewriting = prepared.datalog
        FORewritingEngine._check_complete(rewriting, require_complete)
        if backend == "sql":
            if database is not None:
                raise ReproError(
                    "backend='sql' evaluates over the session's own "
                    "data; pass databases only with backend='memory'"
                )
            sql_backend = self.sql_backend()
            # The CTE SQL references base (non-intermediate) relations
            # only through the rule bodies; make sure each has a table.
            sql_backend.ensure_atoms(rewriting.base_atoms())
            with obs.span(
                "obda.answer", backend="sqlite", target="datalog"
            ) as span:
                answers = sql_backend.execute_sql(prepared.sql)
                span.set(answers=len(answers))
            return answers
        data = database if database is not None else self.abox()
        with obs.span(
            "obda.answer", backend="memory", target="datalog"
        ) as span:
            answers = rewriting.answer(data)
            span.set(answers=len(answers))
        return answers

    # ----------------------------------------------------------------- #
    # Introspection / lifecycle                                           #
    # ----------------------------------------------------------------- #

    def warm_up(self, *, limit: int | None = None) -> int:
        """Re-prepare every persisted rewriting of this ontology.

        Enumerates the persistent tier's stored queries for this
        session's (ontology, budget, engine version) context -- both
        the UCQ and Datalog tables -- and prepares each under its
        stored target, so every compilation is a disk hit and steady
        state is reached with zero fresh rewrites.  This is the serving
        layer's boot path: a restarted server warms its in-memory cache
        from what previous processes compiled.

        Returns the number of entries warmed.  Entries written by
        schema versions before 3 (no stored query text) are skipped;
        undecodable entries are counted on ``session.warmup.errors``
        and skipped.  No-op (0) without a persistent cache.
        """
        if self._cache is None:
            return 0
        from repro.lang.parser import parse_ucq
        from repro.rewriting import engine as engine_module

        stored = self._cache.stored_queries(
            ontology_digest=self.ontology_digest,
            budget_digest=budget_digest(self._options.budget),
            engine_version=str(engine_module.ENGINE_VERSION),
        )
        if limit is not None:
            stored = stored[:limit]
        warmed = 0
        with obs.span("session.warm_up", stored=len(stored)) as span:
            for query_text, target in stored:
                try:
                    prepared = self.prepare(
                        parse_ucq(query_text), target=target
                    )
                    if prepared.target_selected == "datalog":
                        prepared.datalog  # noqa: B018 - forces compilation
                    else:
                        prepared.result  # noqa: B018 - forces compilation
                    warmed += 1
                except Exception:  # noqa: BLE001 - warm-up must not boot-loop
                    obs.count("session.warmup.errors")
            span.set(warmed=warmed)
        return warmed

    def cache_stats(self) -> dict[str, object]:
        """Combined statistics of the in-memory and persistent tiers.

        Both tiers report per-target entry counts (``ucq_entries`` /
        ``datalog_entries``); ``size`` and ``entries`` remain the
        combined totals.
        """
        info = self._engine.cache_info()
        sizes = self._engine.cache_sizes()
        stats: dict[str, object] = {
            "memory": {
                "hits": info.hits,
                "misses": info.misses,
                "size": info.size,
                "ucq_entries": sizes["ucq"],
                "datalog_entries": sizes["datalog"],
            },
            "persistent": None,
        }
        if self._cache is not None:
            disk: CacheStats = self._cache.stats()
            counts = self._cache.counts()
            stats["persistent"] = {
                "hits": disk.hits,
                "misses": disk.misses,
                "writes": disk.writes,
                "errors": disk.errors,
                "entries": counts["ucq"] + counts["datalog"],
                "ucq_entries": counts["ucq"],
                "datalog_entries": counts["datalog"],
                "core_entries": counts.get("cores", 0),
                "path": str(self._cache.path),
            }
        return stats

    def close(self) -> None:
        """Release the evaluation backend and cache handle (idempotent).

        Safe against a backend something else already closed (e.g. a
        shared backend handed to several sessions): close is only
        forwarded while the backend reports itself open.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._sql_backend is not None:
                if not getattr(self._sql_backend, "closed", False):
                    self._sql_backend.close()
                self._sql_backend = None
            if self._hybrid is not None and self._hybrid.backend is not None:
                if not getattr(self._hybrid.backend, "closed", False):
                    self._hybrid.backend.close()
                self._hybrid.backend = None
            if self._cache is not None:
                self._cache.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        cached = f", cache_dir={str(self._cache_dir)!r}" if self._cache_dir else ""
        return (
            f"Session({len(self._ontology)} rules, "
            f"data={'yes' if self._source is not None else 'no'}{cached})"
        )
