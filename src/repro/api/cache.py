"""Persistent on-disk cache of compiled query rewritings.

OBDA deployments compile a query once and serve it for the lifetime of
the ontology; the compilation (UCQ rewriting) is the expensive step and
depends only on the (ontology, query, budget, rewriter-version)
quadruple -- never on the data.  :class:`RewritingCache` persists that
mapping in a single SQLite file so every later process (another CLI
invocation, a pool worker, tomorrow's server restart) skips the
rewriting entirely.

Keying and invalidation
-----------------------

Every entry is addressed by a :class:`CacheKey` combining four content
digests (see :mod:`repro.rewriting.store`):

* ``ontology_digest`` -- SHA-256 over the sorted rule texts.  Editing,
  adding or removing any rule changes the digest, so a changed ontology
  can never serve stale rewritings; old entries are simply unreachable
  (and can be vacuumed with :meth:`RewritingCache.evict_ontologies`).
* ``query_digest``    -- SHA-256 over the sorted canonical forms of the
  UCQ's disjuncts; alpha-renamed / atom-reordered / disjunct-permuted
  variants of a query share one entry.
* ``budget_digest``   -- the budget's limit fields (``strict`` excluded:
  it affects error reporting, not the computed UCQ).
* ``engine_version``  -- :data:`repro.rewriting.engine.ENGINE_VERSION`;
  bumping it invalidates every previously compiled rewriting at once.

plus the *rewriting target* (``"ucq"`` or ``"datalog"``): the two
targets compile to different artifact kinds (an exploded UCQ vs. a
stratified rule program), stored in separate tables and addressed by
keys that can never collide.  A session opened with ``target="auto"``
stores entries under the *resolved* target, so the estimator-driven
choice -- which is a pure function of (ontology, query, budget) --
hits the same entries in every process.

Robustness
----------

A cache must never take answering down with it.  All read/write paths
swallow storage and decode errors (counted on the
``api.cache.errors`` obs counter) and degrade to recomputation; a
corrupt cache file is moved aside to ``<name>.corrupt`` and a fresh
cache is started in its place.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro import obs
from repro.lang.parser import parse_program, parse_ucq
from repro.lang.printer import format_program, format_ucq
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.datalog_target import DatalogRewriting
from repro.rewriting.rewriter import RewritingResult
from repro.rewriting.store import budget_digest, ontology_digest, query_digest

CACHE_SCHEMA_VERSION = 4
"""On-disk layout version; a mismatch resets the cache file.

Version 2 added the ``datalog_rewritings`` table (the nonrecursive-
Datalog target's artifacts) and the target discriminator in cache keys.
Version 3 added the ``query_text`` column to both tables: the canonical
text of the *input* query, which makes stored entries enumerable --
the serving layer's boot warm-up (:meth:`repro.api.Session.warm_up`)
re-prepares every stored query of an ontology so a restarted server
reaches steady state with zero fresh rewrites.
Version 4 added the ``materialized_cores`` table: chased-core
snapshots of the hybrid answering layer (:mod:`repro.hybrid.store`),
keyed by (core rules, ABox, budget) and carrying the full ontology
digest so :meth:`RewritingCache.evict_ontologies` retires them
together with the ontology's rewritings.
"""

DEFAULT_CACHE_FILENAME = "rewritings.sqlite"


def _engine_version() -> str:
    # Read dynamically (not at import time) so a monkeypatched version
    # bump in tests -- or a hot-reloaded engine -- is honoured per call.
    from repro.rewriting import engine

    return str(engine.ENGINE_VERSION)


@dataclass(frozen=True)
class CacheKey:
    """The full address of one compiled rewriting.

    ``target`` discriminates the artifact kind (``"ucq"`` or
    ``"datalog"``); keys of different targets never collide even
    though both embed the same content digests.
    """

    ontology_digest: str
    query_digest: str
    budget_digest: str
    engine_version: str
    target: str = "ucq"

    @classmethod
    def of(
        cls,
        rules: Sequence[TGD],
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        budget: RewritingBudget,
        target: str = "ucq",
    ) -> "CacheKey":
        """Build the key for (ontology, query, budget, target) at the
        current engine version."""
        return cls(
            ontology_digest=ontology_digest(rules),
            query_digest=query_digest(query),
            budget_digest=budget_digest(budget),
            engine_version=_engine_version(),
            target=target,
        )

    @property
    def combined(self) -> str:
        """The single string primary key used in the SQLite tables."""
        return "/".join(
            (
                self.engine_version,
                self.target,
                self.ontology_digest,
                self.budget_digest,
                self.query_digest,
            )
        )


@dataclass(frozen=True)
class CacheStats:
    """Lifetime statistics of one :class:`RewritingCache` handle."""

    hits: int
    misses: int
    writes: int
    errors: int


class RewritingCache:
    """SQLite-backed persistent map ``CacheKey -> RewritingResult``.

    One cache file serves any number of ontologies, budgets and engine
    versions concurrently (the key embeds all of them), from any number
    of threads or processes (SQLite's file locking plus a generous busy
    timeout).  Construction never raises on a broken file -- see the
    module docstring.
    """

    def __init__(
        self, directory: str | Path, filename: str = DEFAULT_CACHE_FILENAME
    ) -> None:
        self._directory = Path(directory)
        self._path = self._directory / filename
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._errors = 0
        self._connection: sqlite3.Connection | None = None
        self._open()

    # ----------------------------------------------------------------- #
    # Lifecycle                                                           #
    # ----------------------------------------------------------------- #

    @property
    def path(self) -> Path:
        """The cache file (``<cache-dir>/rewritings.sqlite``)."""
        return self._path

    @property
    def available(self) -> bool:
        """False when the cache is closed or could not be opened."""
        return self._connection is not None

    def _open(self) -> None:
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            # audit: ok[RL302] runs from __init__ before the object is shared
            self._connection = self._connect()
        except (sqlite3.Error, OSError):
            self._quarantine()

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(
            self._path, check_same_thread=False, timeout=30.0
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS meta "
            "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is not None and row[0] != str(CACHE_SCHEMA_VERSION):
            connection.executescript(
                "DROP TABLE IF EXISTS rewritings; "
                "DROP TABLE IF EXISTS datalog_rewritings; "
                "DROP TABLE IF EXISTS materialized_cores; "
                "DELETE FROM meta;"
            )
            row = None
        if row is None:
            connection.execute(
                "INSERT OR REPLACE INTO meta VALUES "
                "('schema_version', ?)",
                (str(CACHE_SCHEMA_VERSION),),
            )
        connection.execute(
            """
            CREATE TABLE IF NOT EXISTS rewritings (
                cache_key       TEXT PRIMARY KEY,
                ontology_digest TEXT NOT NULL,
                query_digest    TEXT NOT NULL,
                budget_digest   TEXT NOT NULL,
                engine_version  TEXT NOT NULL,
                complete        INTEGER NOT NULL,
                depth_reached   INTEGER NOT NULL,
                generated       INTEGER NOT NULL,
                explored        INTEGER NOT NULL,
                per_depth       TEXT NOT NULL,
                ucq             TEXT NOT NULL,
                query_text      TEXT NOT NULL DEFAULT '',
                created_at      TEXT NOT NULL DEFAULT (datetime('now'))
            )
            """
        )
        connection.execute(
            "CREATE INDEX IF NOT EXISTS ix_rewritings_ontology "
            "ON rewritings (ontology_digest)"
        )
        connection.execute(
            """
            CREATE TABLE IF NOT EXISTS datalog_rewritings (
                cache_key       TEXT PRIMARY KEY,
                ontology_digest TEXT NOT NULL,
                payload         TEXT NOT NULL,
                query_text      TEXT NOT NULL DEFAULT '',
                created_at      TEXT NOT NULL DEFAULT (datetime('now'))
            )
            """
        )
        connection.execute(
            "CREATE INDEX IF NOT EXISTS ix_datalog_rewritings_ontology "
            "ON datalog_rewritings (ontology_digest)"
        )
        connection.execute(
            """
            CREATE TABLE IF NOT EXISTS materialized_cores (
                cache_key       TEXT PRIMARY KEY,
                ontology_digest TEXT NOT NULL,
                payload         TEXT NOT NULL,
                created_at      TEXT NOT NULL DEFAULT (datetime('now'))
            )
            """
        )
        connection.execute(
            "CREATE INDEX IF NOT EXISTS ix_materialized_cores_ontology "
            "ON materialized_cores (ontology_digest)"
        )
        connection.commit()
        return connection

    def _quarantine(self) -> None:
        """Move a broken cache file aside and start a fresh one.

        Every caller already holds ``self._lock`` (or runs from
        ``__init__`` before the object is shared), so the connection
        swaps below cannot race.
        """
        self._record_error("open")
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            # audit: ok[RL302] callers hold self._lock (see docstring)
            self._connection = None
        try:
            if self._path.exists():
                self._path.replace(self._path.with_suffix(".corrupt"))
            # audit: ok[RL302] callers hold self._lock (see docstring)
            self._connection = self._connect()
            obs.event("api.cache.reset", path=str(self._path))
        except (sqlite3.Error, OSError):
            # Even the fresh file failed (unwritable directory, ...):
            # stay disabled; every lookup is a miss, every put a no-op.
            # audit: ok[RL302] callers hold self._lock (see docstring)
            self._connection = None

    def close(self) -> None:
        """Release the SQLite handle (idempotent)."""
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                finally:
                    self._connection = None

    def __enter__(self) -> "RewritingCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------------- #
    # Lookup / store                                                      #
    # ----------------------------------------------------------------- #

    def get(self, key: CacheKey) -> RewritingResult | None:
        """The stored rewriting under *key*, or None.  Never raises."""
        with self._lock:
            if self._connection is None:
                self._misses += 1
                obs.count("api.cache.misses")
                return None
            try:
                row = self._connection.execute(
                    "SELECT complete, depth_reached, generated, explored, "
                    "per_depth, ucq FROM rewritings WHERE cache_key = ?",
                    (key.combined,),
                ).fetchone()
            except sqlite3.DatabaseError:
                self._quarantine()
                row = None
            if row is None:
                self._misses += 1
                obs.count("api.cache.misses")
                return None
            try:
                result = _decode_result(row)
            except Exception:
                # Undecodable entry (torn write, hand-edited file):
                # drop it and recompute.
                self._record_error("decode")
                self._delete(key)
                self._misses += 1
                obs.count("api.cache.misses")
                return None
            self._hits += 1
            obs.count("api.cache.hits")
            return result

    def put(
        self,
        key: CacheKey,
        result: RewritingResult,
        query_text: str = "",
    ) -> None:
        """Persist *result* under *key*.  Never raises.

        *query_text* is the canonical text of the input query; storing
        it makes the entry reachable by :meth:`stored_queries` (warm-up
        enumeration).  Empty is allowed -- the entry still serves
        lookups, it just cannot be re-prepared by digest alone.
        """
        with self._lock:
            if self._connection is None:
                return
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO rewritings "
                    "(cache_key, ontology_digest, query_digest, "
                    " budget_digest, engine_version, complete, "
                    " depth_reached, generated, explored, per_depth, ucq, "
                    " query_text) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        key.combined,
                        key.ontology_digest,
                        key.query_digest,
                        key.budget_digest,
                        key.engine_version,
                        int(result.complete),
                        result.depth_reached,
                        result.generated,
                        result.explored,
                        json.dumps(list(result.per_depth)),
                        format_ucq(result.ucq),
                        query_text,
                    ),
                )
                self._connection.commit()
                self._writes += 1
                obs.count("api.cache.writes")
            except sqlite3.DatabaseError:
                self._quarantine()

    def get_datalog(self, key: CacheKey) -> DatalogRewriting | None:
        """The stored Datalog-target rewriting under *key*, or None.
        Never raises."""
        with self._lock:
            if self._connection is None:
                self._misses += 1
                obs.count("api.cache.misses")
                return None
            try:
                row = self._connection.execute(
                    "SELECT payload FROM datalog_rewritings "
                    "WHERE cache_key = ?",
                    (key.combined,),
                ).fetchone()
            except sqlite3.DatabaseError:
                self._quarantine()
                row = None
            if row is None:
                self._misses += 1
                obs.count("api.cache.misses")
                return None
            try:
                result = _decode_datalog(row[0])
            except Exception:
                self._record_error("decode")
                self._delete(key, table="datalog_rewritings")
                self._misses += 1
                obs.count("api.cache.misses")
                return None
            self._hits += 1
            obs.count("api.cache.hits")
            return result

    def put_datalog(
        self,
        key: CacheKey,
        result: DatalogRewriting,
        query_text: str = "",
    ) -> None:
        """Persist the Datalog-target *result* under *key*.  Never
        raises."""
        with self._lock:
            if self._connection is None:
                return
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO datalog_rewritings "
                    "(cache_key, ontology_digest, payload, query_text) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        key.combined,
                        key.ontology_digest,
                        _encode_datalog(result),
                        query_text,
                    ),
                )
                self._connection.commit()
                self._writes += 1
                obs.count("api.cache.writes")
            except sqlite3.DatabaseError:
                self._quarantine()

    def get_core(self, cache_key: str) -> str | None:
        """The stored materialized-core snapshot payload, or None.

        Keys come from :func:`repro.hybrid.store.core_key`; the payload
        is the opaque JSON produced by ``encode_core``.  Never raises.
        """
        with self._lock:
            if self._connection is None:
                self._misses += 1
                obs.count("api.cache.misses")
                return None
            try:
                row = self._connection.execute(
                    "SELECT payload FROM materialized_cores "
                    "WHERE cache_key = ?",
                    (cache_key,),
                ).fetchone()
            except sqlite3.DatabaseError:
                self._quarantine()
                row = None
            if row is None:
                self._misses += 1
                obs.count("api.cache.misses")
                return None
            self._hits += 1
            obs.count("api.cache.hits")
            return str(row[0])

    def put_core(
        self, cache_key: str, ontology_digest: str, payload: str
    ) -> None:
        """Persist a materialized-core snapshot.  Never raises.

        *ontology_digest* is the **full** ontology's digest -- not the
        core subset's -- so :meth:`evict_ontologies` retires core
        snapshots together with the ontology's rewritings.
        """
        with self._lock:
            if self._connection is None:
                return
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO materialized_cores "
                    "(cache_key, ontology_digest, payload) "
                    "VALUES (?, ?, ?)",
                    (cache_key, ontology_digest, payload),
                )
                self._connection.commit()
                self._writes += 1
                obs.count("api.cache.writes")
            except sqlite3.DatabaseError:
                self._quarantine()

    def _delete(self, key: CacheKey, table: str = "rewritings") -> None:
        if self._connection is None:
            return
        try:
            self._connection.execute(
                f"DELETE FROM {table} WHERE cache_key = ?", (key.combined,)
            )
            self._connection.commit()
        except sqlite3.DatabaseError:
            self._quarantine()

    def _record_error(self, kind: str) -> None:
        self._errors += 1
        obs.count("api.cache.errors")
        obs.event("api.cache.error", kind=kind, path=str(self._path))

    # ----------------------------------------------------------------- #
    # Maintenance / introspection                                         #
    # ----------------------------------------------------------------- #

    def stats(self) -> CacheStats:
        """Hit/miss/write/error totals of this handle's lifetime."""
        with self._lock:
            return CacheStats(self._hits, self._misses, self._writes, self._errors)

    def __len__(self) -> int:
        with self._lock:
            if self._connection is None:
                return 0
            try:
                row = self._connection.execute(
                    "SELECT (SELECT COUNT(*) FROM rewritings) + "
                    "(SELECT COUNT(*) FROM datalog_rewritings) + "
                    "(SELECT COUNT(*) FROM materialized_cores)"
                ).fetchone()
                return int(row[0])
            except sqlite3.DatabaseError:
                self._quarantine()
                return 0

    def ontologies(self) -> Iterator[tuple[str, int]]:
        """(ontology digest, entry count) pairs currently stored."""
        with self._lock:
            if self._connection is None:
                return iter(())
            try:
                rows = self._connection.execute(
                    "SELECT ontology_digest, COUNT(*) FROM ("
                    "SELECT ontology_digest FROM rewritings "
                    "UNION ALL "
                    "SELECT ontology_digest FROM datalog_rewritings "
                    "UNION ALL "
                    "SELECT ontology_digest FROM materialized_cores) "
                    "GROUP BY ontology_digest ORDER BY ontology_digest"
                ).fetchall()
            except sqlite3.DatabaseError:
                self._quarantine()
                return iter(())
        return iter([(str(d), int(n)) for d, n in rows])

    def counts(self) -> dict[str, int]:
        """Per-table entry counts: ``{"ucq": n, "datalog": m, "cores": k}``.

        Never raises; a closed or broken cache reports zeros.
        """
        with self._lock:
            if self._connection is None:
                return {"ucq": 0, "datalog": 0, "cores": 0}
            try:
                row = self._connection.execute(
                    "SELECT (SELECT COUNT(*) FROM rewritings), "
                    "(SELECT COUNT(*) FROM datalog_rewritings), "
                    "(SELECT COUNT(*) FROM materialized_cores)"
                ).fetchone()
                return {
                    "ucq": int(row[0]),
                    "datalog": int(row[1]),
                    "cores": int(row[2]),
                }
            except sqlite3.DatabaseError:
                self._quarantine()
                return {"ucq": 0, "datalog": 0, "cores": 0}

    def stored_queries(
        self,
        ontology_digest: str | None = None,
        budget_digest: str | None = None,
        engine_version: str | None = None,
    ) -> list[tuple[str, str]]:
        """(query text, target) pairs of enumerable stored entries.

        The warm-up path: a restarting server lists what previous
        processes compiled for its ontology and re-prepares each entry,
        so steady state is reached with zero fresh rewrites.  Entries
        written before schema v3 (empty ``query_text``) are skipped --
        they still serve digest lookups, they just cannot be enumerated.
        Filters narrow by ontology digest and -- via the structured key
        prefix -- budget digest and engine version.  Never raises.
        """
        with self._lock:
            if self._connection is None:
                return []
            results: list[tuple[str, str]] = []
            try:
                for table, target in (
                    ("rewritings", "ucq"),
                    ("datalog_rewritings", "datalog"),
                ):
                    sql = (
                        f"SELECT cache_key, query_text FROM {table} "
                        "WHERE query_text != ''"
                    )
                    params: list[str] = []
                    if ontology_digest is not None:
                        sql += " AND ontology_digest = ?"
                        params.append(ontology_digest)
                    for row in self._connection.execute(sql, params):
                        # combined key: version/target/ontology/budget/query
                        parts = str(row[0]).split("/")
                        if len(parts) != 5:
                            continue
                        if engine_version is not None and parts[0] != engine_version:
                            continue
                        if budget_digest is not None and parts[3] != budget_digest:
                            continue
                        results.append((str(row[1]), target))
            except sqlite3.DatabaseError:
                self._quarantine()
                return []
        return sorted(set(results))

    def evict_ontologies(self, keep: set[str] | frozenset[str]) -> int:
        """Drop entries whose ontology digest is not in *keep*.

        Stale entries are unreachable anyway (the digest is part of the
        key); this reclaims their disk space.  Returns rows deleted.
        """
        with self._lock:
            if self._connection is None:
                return 0
            try:
                before = len(self)
                placeholders = ",".join("?" for _ in keep) or "''"
                for table in (
                    "rewritings",
                    "datalog_rewritings",
                    "materialized_cores",
                ):
                    self._connection.execute(
                        f"DELETE FROM {table} WHERE ontology_digest "
                        f"NOT IN ({placeholders})",
                        tuple(sorted(keep)),
                    )
                self._connection.commit()
                return before - len(self)
            except sqlite3.DatabaseError:
                self._quarantine()
                return 0


class EngineTier:
    """Adapter binding a :class:`RewritingCache` to one engine's context.

    Implements the :class:`repro.rewriting.engine.PersistentTier`
    protocol: the ontology/budget digests are fixed at construction
    (they are per-session), the query digest is computed per call, and
    the engine version is read at call time.
    """

    def __init__(
        self,
        cache: RewritingCache,
        rules: Sequence[TGD],
        budget: RewritingBudget,
    ) -> None:
        self._cache = cache
        self._ontology_digest = ontology_digest(rules)
        self._budget_digest = budget_digest(budget)

    def _key(
        self, ucq: UnionOfConjunctiveQueries, target: str = "ucq"
    ) -> CacheKey:
        return CacheKey(
            ontology_digest=self._ontology_digest,
            query_digest=query_digest(ucq),
            budget_digest=self._budget_digest,
            engine_version=_engine_version(),
            target=target,
        )

    def get(self, ucq: UnionOfConjunctiveQueries) -> RewritingResult | None:
        return self._cache.get(self._key(ucq))

    def put(self, ucq: UnionOfConjunctiveQueries, result: RewritingResult) -> None:
        self._cache.put(self._key(ucq), result, query_text=format_ucq(ucq))

    def get_datalog(
        self, ucq: UnionOfConjunctiveQueries
    ) -> DatalogRewriting | None:
        return self._cache.get_datalog(self._key(ucq, target="datalog"))

    def put_datalog(
        self, ucq: UnionOfConjunctiveQueries, result: DatalogRewriting
    ) -> None:
        self._cache.put_datalog(
            self._key(ucq, target="datalog"), result, query_text=format_ucq(ucq)
        )


def _decode_result(row: Any) -> RewritingResult:
    complete, depth_reached, generated, explored, per_depth, ucq_text = row
    return RewritingResult(
        ucq=parse_ucq(ucq_text),
        complete=bool(complete),
        depth_reached=int(depth_reached),
        generated=int(generated),
        explored=int(explored),
        per_depth=tuple(json.loads(per_depth)),
        # Derivation lineage is not persisted; disk-served results
        # answer queries identically but cannot explain disjuncts.
        lineage={},
    )


def _encode_datalog(result: DatalogRewriting) -> str:
    """Serialise a Datalog-target rewriting to a JSON payload.

    The rules round-trip through the textual program syntax (every
    aux/goal rule is a full TGD, so :func:`parse_program` accepts it);
    rule labels are not preserved, which is harmless -- they play no
    role in evaluation, SQL compilation or equality of answers.
    """
    return json.dumps(
        {
            "goal": result.goal,
            "arity": result.arity,
            "complete": result.complete,
            "depth_reached": result.depth_reached,
            "generated": result.generated,
            "fallback_disjuncts": result.fallback_disjuncts,
            "aux_rules": format_program(result.aux_rules),
            "goal_rules": format_program(result.goal_rules),
        }
    )


def _parse_rules(text: str) -> tuple[TGD, ...]:
    # parse_program labels unlabelled rules R1, R2, ...; the emitter
    # leaves rules unlabelled, so strip the synthetic labels to make
    # disk-served programs print byte-identically to fresh ones.
    from repro.lang.tgd import TGD

    return tuple(TGD(r.body, r.head) for r in parse_program(text))


def _decode_datalog(payload: str) -> DatalogRewriting:
    data = json.loads(payload)
    return DatalogRewriting(
        goal=str(data["goal"]),
        arity=int(data["arity"]),
        aux_rules=_parse_rules(data["aux_rules"]),
        goal_rules=_parse_rules(data["goal_rules"]),
        complete=bool(data["complete"]),
        depth_reached=int(data["depth_reached"]),
        generated=int(data["generated"]),
        fallback_disjuncts=int(data["fallback_disjuncts"]),
    )
