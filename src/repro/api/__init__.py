"""Public session API: compile-once / serve-many OBDA query answering.

This package is the stable programmatic surface of the library:

* :class:`Session` -- an ontology (plus optional mappings and data)
  with its classification, rewriting engine, persistent compilation
  cache and evaluation backends, all computed once and shared;
* :class:`PreparedQuery` -- a canonicalized conjunctive query bound to
  a session, compiled (rewritten) at most once, reusable for in-memory
  and SQL evaluation;
* :class:`RewritingCache` -- the on-disk (SQLite) rewriting cache
  behind ``Session(cache_dir=...)``, shared safely across sessions,
  threads and processes;
* :func:`answer_many` plumbing (:class:`BatchResult`) -- parallel batch
  answering that streams results as they complete.

The legacy entry points (:class:`repro.obda.OBDASystem`, direct calls
to :meth:`repro.rewriting.FORewritingEngine.rewrite` / ``answer``) are
deprecated shims over this layer; ``docs/api.md`` has the migration
guide.  ``repro.api.__all__`` is a snapshot-tested contract: names
listed here do not change meaning or disappear without a major
version bump.
"""

from __future__ import annotations

from repro.api.cache import (
    CACHE_SCHEMA_VERSION,
    CacheKey,
    CacheStats,
    RewritingCache,
)
from repro.api.options import EngineOptions
from repro.api.pool import BatchResult, resolve_workers
from repro.api.prepared import PreparedQuery
from repro.api.session import Session

__all__ = [
    "BatchResult",
    "CACHE_SCHEMA_VERSION",
    "CacheKey",
    "CacheStats",
    "EngineOptions",
    "PreparedQuery",
    "RewritingCache",
    "Session",
    "resolve_workers",
]
