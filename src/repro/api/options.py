"""One frozen bundle for every engine-tuning option of a session.

Before this module the options steering a :class:`~repro.api.Session`'s
rewriting engine -- budget, rewriting target, parallel-minimization
knobs, pruning and pre-flight switches -- were threaded positionally
through ``Session.__init__``, the batch pool's worker initializer and
every CLI subcommand, each spelling the defaults again.
:class:`EngineOptions` collects them in a single immutable value:

* one definition of the defaults, shared by API, pool workers and CLI;
* picklable, so process-pool workers and the serving layer rebuild an
  identical engine from one object;
* a single :meth:`EngineOptions.from_args` adapter mapping the CLI's
  shared *engine options* argument group onto the dataclass.

Passing the old keyword arguments to ``Session`` still works but emits
a :class:`DeprecationWarning` (once per process); ``docs/api.md`` has
the migration table.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.rewriting.budget import RewritingBudget

if TYPE_CHECKING:  # pragma: no cover - typing only
    import argparse

_MINIMIZE_MODES = ("thread", "process")
_HYBRID_MODES = ("off", "auto", "rewrite", "split", "materialize")

#: The ``Session.__init__`` keywords superseded by :class:`EngineOptions`.
LEGACY_OPTION_KEYS = (
    "budget",
    "filter_relevant",
    "prune_empty",
    "preflight_estimate",
    "minimize_workers",
    "minimize_mode",
    "target",
)

# Deprecation is announced once per process, not once per Session: a
# server opening hundreds of sessions through a legacy call site should
# log one actionable warning, not a flood.
_legacy_warned = False


@dataclass(frozen=True)
class EngineOptions:
    """Everything that tunes a session's rewriting engine, in one value.

    Attributes:
        budget: rewriting budget every compilation runs under
            (default: :meth:`RewritingBudget.default`).
        filter_relevant: backward-reachability rule filtering before
            each rewriting run.
        prune_empty: drop statically-empty disjuncts from compiled
            rewritings before evaluation (see
            :mod:`repro.checkers.pruning`).
        preflight_estimate: run the static rewriting-size estimator
            before each cold compilation and warn on projected blowup.
        minimize_workers: opt-in parallel UCQ minimization worker count
            (None = sequential, 0 = one per CPU); never changes the
            compiled rewriting, so it is outside all cache keys.
        minimize_mode: ``"thread"`` or ``"process"`` pool for the
            parallel minimization.
        target: rewriting target -- ``"ucq"``, ``"datalog"`` or
            ``"auto"`` (see :data:`repro.rewriting.engine.TARGETS`).
        hybrid: hybrid answering mode -- ``"off"`` (default; pure
            rewriting), ``"auto"`` (cost model picks REWRITE / SPLIT /
            MATERIALIZE per workload), or one of ``"rewrite"`` /
            ``"split"`` / ``"materialize"`` to pin the regime (see
            :mod:`repro.hybrid`).
        hybrid_threshold: delta fraction of the materialized instance
            above which incremental maintenance falls back to a full
            re-chase (in ``(0, 1]``).
    """

    budget: RewritingBudget = field(default_factory=RewritingBudget.default)
    filter_relevant: bool = True
    prune_empty: bool = False
    preflight_estimate: bool = False
    minimize_workers: int | None = None
    minimize_mode: str = "thread"
    target: str = "ucq"
    hybrid: str = "off"
    hybrid_threshold: float = 0.5

    def __post_init__(self) -> None:
        from repro.rewriting.engine import TARGETS

        if self.target not in TARGETS:
            raise ValueError(
                f"unknown rewriting target {self.target!r}; "
                f"expected one of {TARGETS}"
            )
        if self.hybrid not in _HYBRID_MODES:
            raise ValueError(
                f"unknown hybrid mode {self.hybrid!r}; "
                f"expected one of {_HYBRID_MODES}"
            )
        if not 0.0 < self.hybrid_threshold <= 1.0:
            raise ValueError(
                "hybrid_threshold must be in (0, 1], got "
                f"{self.hybrid_threshold!r}"
            )
        if self.minimize_mode not in _MINIMIZE_MODES:
            raise ValueError(
                f"unknown minimize mode {self.minimize_mode!r}; "
                f"expected one of {_MINIMIZE_MODES}"
            )
        if not isinstance(self.budget, RewritingBudget):
            raise TypeError(
                f"budget must be a RewritingBudget, got {self.budget!r}"
            )

    def replace(self, **changes: Any) -> "EngineOptions":
        """A copy with *changes* applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def with_deadline(self, seconds: float | None) -> "EngineOptions":
        """A copy whose budget's wall-clock ceiling is at most *seconds*.

        The serving layer maps per-request deadlines onto the budget
        machinery with this: a compilation admitted under a deadline
        must not run past it, so the budget's ``max_seconds`` is
        tightened (never loosened) to the deadline.
        """
        if seconds is None:
            return self
        current = self.budget.max_seconds
        ceiling = seconds if current is None else min(current, seconds)
        if ceiling == current:
            return self
        return self.replace(
            budget=dataclasses.replace(self.budget, max_seconds=ceiling)
        )

    @classmethod
    def from_args(cls, args: "argparse.Namespace") -> "EngineOptions":
        """Build options from the CLI's shared *engine options* group.

        The single adapter between ``argparse`` and the engine: every
        subcommand that accepts engine flags (answer, batch, trace,
        rewrite, serve) resolves them here, so flag semantics cannot
        drift between commands.  Absent attributes fall back to the
        dataclass defaults, which lets callers reuse the adapter with
        partial namespaces (e.g. ``lint``'s budget-only subset).
        """
        budget = RewritingBudget(
            max_depth=getattr(args, "max_depth", None),
            max_cqs=getattr(args, "max_cqs", 100_000),
            max_seconds=getattr(args, "max_seconds", None),
            strict=False,
        )
        return cls(
            budget=budget,
            filter_relevant=getattr(args, "filter_relevant", True),
            prune_empty=getattr(args, "prune_empty", False),
            preflight_estimate=getattr(args, "preflight_estimate", False),
            minimize_workers=getattr(args, "minimize_workers", None),
            minimize_mode=getattr(args, "minimize_mode", "thread"),
            target=getattr(args, "target", "ucq"),
            hybrid=getattr(args, "hybrid", "off"),
            hybrid_threshold=getattr(args, "hybrid_threshold", 0.5),
        )


def merge_legacy_options(
    options: EngineOptions | None, legacy: dict[str, Any]
) -> EngineOptions:
    """Resolve the deprecated ``Session`` keyword sprawl into options.

    *legacy* holds whatever engine keywords a caller still passes
    directly (``budget=``, ``target=``, ...).  Unknown keys raise
    ``TypeError`` exactly like a wrong keyword argument would; mixing
    the old keywords with an explicit *options* value raises
    ``ValueError`` (there would be no well-defined precedence).  The
    first legacy use in a process emits one :class:`DeprecationWarning`.
    """
    unknown = set(legacy) - set(LEGACY_OPTION_KEYS)
    if unknown:
        raise TypeError(
            "Session() got unexpected keyword argument(s): "
            + ", ".join(sorted(unknown))
        )
    if not legacy:
        return options if options is not None else EngineOptions()
    if options is not None:
        raise ValueError(
            "pass engine options either as Session(options=EngineOptions(...)) "
            "or as the deprecated keywords, not both"
        )
    global _legacy_warned
    if not _legacy_warned:
        _legacy_warned = True
        warnings.warn(
            "passing engine options as individual Session keywords "
            f"({', '.join(sorted(legacy))}) is deprecated; use "
            "Session(..., options=EngineOptions(...)) instead "
            "(see docs/api.md for the migration table)",
            DeprecationWarning,
            stacklevel=3,
        )
    # None always meant "use the default" for these keywords; dropping
    # them lets the dataclass defaults apply.
    cleaned = {key: value for key, value in legacy.items() if value is not None}
    return EngineOptions(**cleaned)
