"""Parallel batch answering over ``concurrent.futures`` worker pools.

Two execution modes, one result shape:

* **thread** (default) -- workers share the calling session's engine,
  caches and SQLite backend.  Compilations of the same canonical query
  are single-flighted by the engine, the persistent cache is consulted
  under its own lock, and SQLite evaluation releases the GIL, so warm
  workloads stream at cache speed.
* **process** -- each worker process builds its own session from the
  pickled ontology/data (spawn start method: nothing is inherited
  across ``fork``, which keeps SQLite handles safe).  Cold compilations
  then really run on multiple cores, and every worker shares the same
  persistent cache *file*, so work done by one process warms all later
  ones.

Results stream back as :class:`BatchResult` items as they complete
(or in input order with ``ordered=True``).  A failing query never takes
the batch down: its item carries the error text instead of answers.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro import obs
from repro.data.database import Database
from repro.lang.errors import ReproError
from repro.lang.terms import Term

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session

_MODES = ("thread", "process")


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one query of a batch.

    ``answers`` is None in two cases: the query failed (``error`` holds
    the message) or the batch ran compile-only (no database).
    ``disjuncts``/``complete`` describe the compiled rewriting whenever
    compilation succeeded; under the Datalog target ``disjuncts``
    counts the program's rules instead of UCQ disjuncts.
    """

    index: int
    query: str
    answers: frozenset[tuple[Term, ...]] | None
    complete: bool
    disjuncts: int
    seconds: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True iff this query compiled (and, if asked, answered)."""
        return self.error is None


def run_batch(
    session: "Session",
    queries: Sequence,
    *,
    database: Database | None = None,
    max_workers: int | None = None,
    mode: str = "thread",
    backend: str = "memory",
    require_complete: bool = True,
    ordered: bool = False,
    target: str | None = None,
) -> Iterator[BatchResult]:
    """Fan the batch out on a worker pool; yield results as they finish.

    *database* overrides the session's own data for evaluation; when
    the session has no data and none is passed, the batch is
    compile-only (rewritings are still computed and cached, answers
    are None).  *target* overrides the session's rewriting target for
    every query of the batch (None keeps the session default).
    """
    if mode not in _MODES:
        raise ReproError(f"unknown batch mode {mode!r}; expected one of {_MODES}")
    if target is None:
        # Worker processes rebuild their sessions from scratch, so the
        # calling session's target must travel explicitly.
        target = session.engine.target
    queries = list(queries)
    obs.event(
        "api.batch.start",
        queries=len(queries),
        mode=mode,
        backend=backend,
        workers=max_workers or 0,
    )
    if mode == "process":
        yield from _run_process_batch(
            session,
            queries,
            database=database,
            max_workers=max_workers,
            backend=backend,
            require_complete=require_complete,
            ordered=ordered,
            target=target,
        )
        return
    executor = ThreadPoolExecutor(
        max_workers=max_workers, thread_name_prefix="repro-batch"
    )
    try:
        futures = {
            executor.submit(
                _thread_task,
                session,
                index,
                query,
                database,
                backend,
                require_complete,
                target,
            ): index
            for index, query in enumerate(queries)
        }
        yield from _stream(futures, ordered)
    finally:
        executor.shutdown(wait=True)


def _thread_task(
    session: "Session",
    index: int,
    query: Any,
    database: Database | None,
    backend: str,
    require_complete: bool,
    target: str | None = None,
) -> BatchResult:
    started = time.perf_counter()
    text = query if isinstance(query, str) else str(query)
    try:
        prepared = session.prepare(query, target=target)
        answers = None
        compile_only = database is None and session.data is None
        if not compile_only:
            answers = prepared.answer(
                database, backend=backend, require_complete=require_complete
            )
        else:
            # Compile-only batches still honour require_complete so
            # truncated rewritings surface as per-item errors.
            if require_complete and not prepared.complete:
                raise ReproError(
                    "rewriting incomplete within budget; rerun with "
                    "require_complete=False for a sound approximation"
                )
        return BatchResult(
            index=index,
            query=text,
            answers=answers,
            complete=prepared.complete,
            disjuncts=prepared.size,
            seconds=time.perf_counter() - started,
        )
    except Exception as error:  # noqa: BLE001 - one bad query != dead batch
        return BatchResult(
            index=index,
            query=text,
            answers=None,
            complete=False,
            disjuncts=0,
            seconds=time.perf_counter() - started,
            error=str(error) or error.__class__.__name__,
        )


def _stream(futures: dict, ordered: bool) -> Iterator[BatchResult]:
    if not ordered:
        for future in as_completed(futures):
            # audit: ok[RL312] as_completed only yields finished futures
            yield future.result()
        return
    pending: dict[int, BatchResult] = {}
    next_index = 0
    for future in as_completed(futures):
        # audit: ok[RL312] as_completed only yields finished futures
        result = future.result()
        pending[result.index] = result
        while next_index in pending:
            yield pending.pop(next_index)
            next_index += 1


# --------------------------------------------------------------------- #
# Process mode                                                            #
# --------------------------------------------------------------------- #
#
# Worker processes rebuild a session once (pool initializer) and then
# answer queries from their input pickled as plain text.  The spawn
# start method is used deliberately: forked children would inherit the
# parent's open SQLite handles, which SQLite documents as unsafe.

_WORKER_SESSION: "Session | None" = None
_WORKER_CONFIG: dict | None = None


def _init_worker(
    rules: Any,
    database: Database | None,
    options: Any,
    cache_dir: str | None,
    backend: str,
    require_complete: bool,
    target: str | None = None,
) -> None:
    # One picklable EngineOptions rebuilds an identical engine in every
    # spawned worker -- no per-knob plumbing through initargs.
    global _WORKER_SESSION, _WORKER_CONFIG
    from repro.api.session import Session

    _WORKER_SESSION = Session(
        rules,
        database,
        cache_dir=cache_dir,
        options=options,
    )
    _WORKER_CONFIG = {
        "backend": backend,
        "require_complete": require_complete,
        "target": target,
    }


def _process_task(item: tuple[int, object]) -> BatchResult:
    index, query = item
    assert _WORKER_SESSION is not None and _WORKER_CONFIG is not None
    return _thread_task(
        _WORKER_SESSION,
        index,
        query,
        None,
        _WORKER_CONFIG["backend"],
        _WORKER_CONFIG["require_complete"],
        _WORKER_CONFIG.get("target"),
    )


def _run_process_batch(
    session: "Session",
    queries: Sequence,
    *,
    database: Database | None,
    max_workers: int | None,
    backend: str,
    require_complete: bool,
    ordered: bool,
    target: str | None = None,
) -> Iterator[BatchResult]:
    # Ship the *virtual ABox* (mappings already applied), so worker
    # sessions need no mapping layer of their own.  With backend="sql"
    # each worker loads its own SQLite copy of it.
    if database is not None:
        data = database
    else:
        data = session.abox() if session.data is not None else None
    cache_dir = str(session.cache_dir) if session.cache_dir is not None else None
    context = multiprocessing.get_context("spawn")
    executor: Executor = ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(
            session.ontology,
            data,
            session.options,
            cache_dir,
            backend,
            require_complete,
            target,
        ),
    )
    try:
        futures = {
            executor.submit(_process_task, (index, query)): index
            for index, query in enumerate(queries)
        }
        yield from _stream(futures, ordered)
    finally:
        executor.shutdown(wait=True)


def resolve_workers(requested: int | None, batch_size: int) -> int:
    """The worker count a batch will actually use (for logs/benches)."""
    import os

    if requested is not None:
        return max(1, requested)
    return max(1, min(batch_size, os.cpu_count() or 1))
