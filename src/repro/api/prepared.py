"""Prepared (compile-once, execute-many) queries.

A :class:`PreparedQuery` is the session-API analogue of a prepared
statement in a classical DBMS: the conjunctive query is canonicalized
and bound to a session at construction, the expensive compilation (UCQ
rewriting w.r.t. the session's ontology) happens at most once -- served
from the session's in-memory or persistent cache whenever possible --
and the compiled artifacts (the UCQ, the SQL text) are reusable against
any database with the right signature.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.data.database import Database
from repro.data.sql import ucq_to_sql
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.rewriting.rewriter import RewritingResult
from repro.rewriting.store import query_digest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session
    from repro.checkers.pruning import PruneResult


class PreparedQuery:
    """A query bound to a :class:`~repro.api.Session`, compiled lazily.

    Obtained from :meth:`Session.prepare`; two prepares of queries that
    are equal up to variable renaming / atom reordering / disjunct
    permutation return the *same* object.  Compilation is deferred to
    the first use of :attr:`result` / :attr:`ucq` / :attr:`sql` /
    :meth:`answer` and is thread-safe.
    """

    __slots__ = (
        "_session",
        "_query",
        "_digest",
        "_result",
        "_pruned",
        "_sql",
        "_lock",
    )

    def __init__(self, session: "Session", query: ConjunctiveQuery | UnionOfConjunctiveQueries):
        self._session = session
        self._query = UnionOfConjunctiveQueries.of(query)
        self._digest = query_digest(self._query)
        self._result: RewritingResult | None = None
        self._pruned: "PruneResult | None" = None
        self._sql: str | None = None
        self._lock = threading.Lock()

    @property
    def query(self) -> UnionOfConjunctiveQueries:
        """The input query (as a UCQ)."""
        return self._query

    @property
    def digest(self) -> str:
        """The canonical content digest keying this query in caches."""
        return self._digest

    @property
    def session(self) -> "Session":
        """The session this query is bound to."""
        return self._session

    # ----------------------------------------------------------------- #
    # Compiled artifacts                                                  #
    # ----------------------------------------------------------------- #

    @property
    def result(self) -> RewritingResult:
        """The full rewriting result (compiles on first access)."""
        result = self._result
        if result is None:
            # The engine single-flights concurrent compilations of the
            # same canonical query, so racing threads here do no
            # duplicate work.
            result = self._session.engine._rewrite(self._query)
            with self._lock:
                if self._result is None:
                    self._result = result
                result = self._result
        return result

    @property
    def ucq(self) -> UnionOfConjunctiveQueries:
        """The compiled UCQ rewriting."""
        return self.result.ucq

    @property
    def complete(self) -> bool:
        """True iff the rewriting finished within the session budget."""
        return self.result.complete

    @property
    def pruned(self) -> "PruneResult | None":
        """The rewriting after the session's static pruning (cached).

        None when the session was opened without ``prune_empty=True``
        (or has neither mappings nor data to prune against); the
        unpruned :attr:`ucq` is then what every backend evaluates.
        """
        supported = self._session.pruning_relations()
        if supported is None:
            return None
        with self._lock:
            pruned = self._pruned
        if pruned is None:
            from repro.checkers.pruning import prune_statically_empty

            pruned = prune_statically_empty(self.ucq, supported)
            with self._lock:
                if self._pruned is None:
                    self._pruned = pruned
                pruned = self._pruned
        return pruned

    @property
    def sql(self) -> str:
        """The SQL text the (pruned) rewriting compiles to (cached)."""
        with self._lock:
            sql = self._sql
        if sql is None:
            pruned = self.pruned
            if pruned is None:
                sql = ucq_to_sql(self.ucq)
            elif pruned.ucq is None:
                # Every disjunct is statically empty: an arity-correct
                # SELECT that yields no rows.
                columns = ", ".join(
                    f"NULL AS a{i}" for i in range(self._query.arity)
                ) or "1 AS a0"
                sql = f"SELECT {columns} WHERE 1 = 0"
            else:
                sql = ucq_to_sql(pruned.ucq)
            with self._lock:
                if self._sql is None:
                    self._sql = sql
        return sql

    def explain(self) -> dict[str, Any]:
        """A plain-dict summary of the compilation, for logs and CLIs."""
        result = self.result
        pruned = self.pruned
        return {
            "query": str(self._query),
            "digest": self._digest,
            "disjuncts": result.size,
            "complete": result.complete,
            "depth_reached": result.depth_reached,
            "generated": result.generated,
            "max_body_atoms": result.max_body_atoms,
            "pruned_disjuncts": pruned.dropped if pruned is not None else 0,
            "effective_disjuncts": (
                pruned.kept if pruned is not None else result.size
            ),
        }

    # ----------------------------------------------------------------- #
    # Execution                                                           #
    # ----------------------------------------------------------------- #

    def answer(
        self,
        database: Database | None = None,
        *,
        backend: str = "memory",
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers over *database* (default: the session's data).

        ``backend="memory"`` evaluates the UCQ in-process;
        ``backend="sql"`` executes the compiled SQL on the session's
        SQLite backend (only for the session's own data).  With
        ``require_complete=True`` (default) an incomplete rewriting
        raises :class:`~repro.lang.errors.RewritingBudgetExceeded`.
        """
        return self._session._execute(
            self,
            database=database,
            backend=backend,
            require_complete=require_complete,
        )

    def __repr__(self) -> str:
        state = "compiled" if self._result is not None else "pending"
        return f"PreparedQuery({str(self._query)!r}, {state})"
