"""Prepared (compile-once, execute-many) queries.

A :class:`PreparedQuery` is the session-API analogue of a prepared
statement in a classical DBMS: the conjunctive query is canonicalized
and bound to a session at construction, the expensive compilation
(rewriting w.r.t. the session's ontology, to the UCQ or the
nonrecursive-Datalog target) happens at most once -- served from the
session's in-memory or persistent cache whenever possible -- and the
compiled artifacts (the UCQ or rule program, the SQL text) are reusable
against any database with the right signature.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.data.database import Database
from repro.data.sql import datalog_to_sql, ucq_to_sql
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.rewriting.datalog_target import DatalogRewriting
from repro.rewriting.rewriter import RewritingResult
from repro.rewriting.store import query_digest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session
    from repro.checkers.pruning import PruneResult


class PreparedQuery:
    """A query bound to a :class:`~repro.api.Session`, compiled lazily.

    Obtained from :meth:`Session.prepare`; two prepares of queries that
    are equal up to variable renaming / atom reordering / disjunct
    permutation return the *same* object.  Compilation is deferred to
    the first use of :attr:`result` / :attr:`ucq` / :attr:`sql` /
    :meth:`answer` and is thread-safe.
    """

    __slots__ = (
        "_session",
        "_query",
        "_digest",
        "_target",
        "_result",
        "_datalog",
        "_pruned",
        "_sql",
        "_lock",
    )

    def __init__(
        self,
        session: "Session",
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        target: str | None = None,
    ) -> None:
        from repro.rewriting.engine import TARGETS

        self._session = session
        self._query = UnionOfConjunctiveQueries.of(query)
        self._digest = query_digest(self._query)
        if target is None:
            target = session.engine.target
        elif target not in TARGETS:
            raise ValueError(
                f"unknown rewriting target {target!r}; "
                f"expected one of {TARGETS}"
            )
        self._target = target
        self._result: RewritingResult | None = None
        self._datalog: DatalogRewriting | None = None
        self._pruned: "PruneResult | None" = None
        self._sql: str | None = None
        self._lock = threading.Lock()

    @property
    def query(self) -> UnionOfConjunctiveQueries:
        """The input query (as a UCQ)."""
        return self._query

    @property
    def digest(self) -> str:
        """The canonical content digest keying this query in caches."""
        return self._digest

    @property
    def session(self) -> "Session":
        """The session this query is bound to."""
        return self._session

    @property
    def target(self) -> str:
        """The requested rewriting target (``ucq``/``datalog``/``auto``)."""
        return self._target

    @property
    def target_selected(self) -> str:
        """The concrete target compilation uses (``ucq`` or ``datalog``).

        For ``target="auto"`` this is the estimator-driven per-query
        choice (see :meth:`FORewritingEngine.resolve_target`); cheap to
        call -- resolving never compiles anything.
        """
        return self._session.engine.resolve_target(self._query, self._target)

    # ----------------------------------------------------------------- #
    # Compiled artifacts                                                  #
    # ----------------------------------------------------------------- #

    @property
    def result(self) -> RewritingResult:
        """The full rewriting result (compiles on first access)."""
        result = self._result
        if result is None:
            # The engine single-flights concurrent compilations of the
            # same canonical query, so racing threads here do no
            # duplicate work.
            result = self._session.engine._rewrite(self._query)
            with self._lock:
                if self._result is None:
                    self._result = result
                result = self._result
        return result

    @property
    def datalog(self) -> DatalogRewriting:
        """The nonrecursive-Datalog rewriting (compiles on first access).

        Available regardless of :attr:`target` -- accessing it on a
        ucq-target handle simply compiles (and caches) the other
        artifact kind.
        """
        rewriting = self._datalog
        if rewriting is None:
            rewriting = self._session.engine._rewrite_datalog(self._query)
            with self._lock:
                if self._datalog is None:
                    self._datalog = rewriting
                rewriting = self._datalog
        return rewriting

    @property
    def ucq(self) -> UnionOfConjunctiveQueries:
        """The compiled UCQ rewriting."""
        return self.result.ucq

    @property
    def complete(self) -> bool:
        """True iff the selected target's rewriting finished within the
        session budget."""
        if self.target_selected == "datalog":
            return self.datalog.complete
        return self.result.complete

    @property
    def size(self) -> int:
        """Size of the selected target's artifact: UCQ disjuncts, or
        Datalog rules."""
        if self.target_selected == "datalog":
            return self.datalog.size
        return self.result.size

    @property
    def pruned(self) -> "PruneResult | None":
        """The rewriting after the session's static pruning (cached).

        None when the session was opened without ``prune_empty=True``
        (or has neither mappings nor data to prune against), and always
        None for the Datalog target -- its intermediate predicates are
        populated by the program itself, so per-disjunct static pruning
        does not apply; the unpruned artifact is then what every
        backend evaluates.
        """
        if self.target_selected == "datalog":
            return None
        supported = self._session.pruning_relations()
        if supported is None:
            return None
        with self._lock:
            pruned = self._pruned
        if pruned is None:
            from repro.checkers.pruning import prune_statically_empty

            pruned = prune_statically_empty(self.ucq, supported)
            with self._lock:
                if self._pruned is None:
                    self._pruned = pruned
                pruned = self._pruned
        return pruned

    @property
    def sql(self) -> str:
        """The SQL text the (pruned) rewriting compiles to (cached).

        For the Datalog target this is the ``WITH``-CTE form (one CTE
        per intermediate predicate); for the UCQ target the classical
        ``UNION`` of per-disjunct ``SELECT`` blocks.
        """
        with self._lock:
            sql = self._sql
        if sql is None:
            if self.target_selected == "datalog":
                sql = datalog_to_sql(self.datalog)
                with self._lock:
                    if self._sql is None:
                        self._sql = sql
                return self._sql
            pruned = self.pruned
            if pruned is None:
                sql = ucq_to_sql(self.ucq)
            elif pruned.ucq is None:
                # Every disjunct is statically empty: an arity-correct
                # SELECT that yields no rows.
                columns = ", ".join(
                    f"NULL AS a{i}" for i in range(self._query.arity)
                ) or "1 AS a0"
                sql = f"SELECT {columns} WHERE 1 = 0"
            else:
                sql = ucq_to_sql(pruned.ucq)
            with self._lock:
                if self._sql is None:
                    self._sql = sql
        return sql

    def explain(self) -> dict[str, Any]:
        """A plain-dict summary of the compilation, for logs and CLIs."""
        selected = self.target_selected
        if selected == "datalog":
            rewriting = self.datalog
            return {
                "query": str(self._query),
                "digest": self._digest,
                "target": self._target,
                "target_selected": selected,
                "rules": rewriting.size,
                "aux_predicates": len(rewriting.predicates),
                "fallback_disjuncts": rewriting.fallback_disjuncts,
                "complete": rewriting.complete,
                "depth_reached": rewriting.depth_reached,
                "generated": rewriting.generated,
                "max_body_atoms": rewriting.max_body_atoms,
            }
        result = self.result
        pruned = self.pruned
        return {
            "query": str(self._query),
            "digest": self._digest,
            "target": self._target,
            "target_selected": selected,
            "disjuncts": result.size,
            "complete": result.complete,
            "depth_reached": result.depth_reached,
            "generated": result.generated,
            "max_body_atoms": result.max_body_atoms,
            "pruned_disjuncts": pruned.dropped if pruned is not None else 0,
            "effective_disjuncts": (
                pruned.kept if pruned is not None else result.size
            ),
        }

    def _invalidate_data_caches(self) -> None:
        """Drop artifacts derived from the session's *data*.

        Called by :meth:`Session.insert` / :meth:`Session.delete`: the
        rewriting itself depends only on the ontology and survives, but
        the static pruning (and the SQL compiled from the pruned UCQ)
        was computed against the old ABox vocabulary — a disjunct that
        was statically empty may now match.
        """
        with self._lock:
            self._pruned = None
            self._sql = None

    # ----------------------------------------------------------------- #
    # Execution                                                           #
    # ----------------------------------------------------------------- #

    def answer(
        self,
        database: Database | None = None,
        *,
        backend: str = "memory",
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers over *database* (default: the session's data).

        ``backend="memory"`` evaluates the UCQ in-process;
        ``backend="sql"`` executes the compiled SQL on the session's
        SQLite backend (only for the session's own data).  With
        ``require_complete=True`` (default) an incomplete rewriting
        raises :class:`~repro.lang.errors.RewritingBudgetExceeded`.
        """
        return self._session._execute(
            self,
            database=database,
            backend=backend,
            require_complete=require_complete,
        )

    def __repr__(self) -> str:
        compiled = self._result is not None or self._datalog is not None
        state = "compiled" if compiled else "pending"
        return f"PreparedQuery({str(self._query)!r}, {state})"
