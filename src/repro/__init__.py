"""repro: Weakly Recursive TGDs and FO-rewritable ontology query answering.

A reproduction of *Query Answering over Ontologies Specified via
Database Dependencies* (Cristina Civili, SIGMOD'14 PhD Symposium):
graph-based sufficient conditions for the first-order rewritability of
conjunctive-query answering over tuple-generating dependencies, plus
every substrate required to exercise them -- a relational engine, a
chase, a sound-and-complete UCQ rewriter, baseline class recognizers,
a DL-Lite translation and an OBDA facade.

Typical usage::

    from repro import parse_program, parse_query, classify, Session
    from repro.data import Database

    ontology = parse_program("professor(X) -> teaches(X, C). ...")
    report = classify(ontology)          # SWR? WR? linear? sticky? ...
    with Session(ontology, Database(facts), cache_dir=".repro-cache") as s:
        prepared = s.prepare("q(X) :- teaches(X, C)")   # compiled once
        answers = prepared.answer()

(:class:`OBDASystem` remains available as a deprecated shim over
:class:`Session`; see ``docs/api.md`` for the migration guide.)
"""

from repro.api import BatchResult, PreparedQuery, RewritingCache, Session
from repro.chase import certain_answers, restricted_chase
from repro.core import classify, is_swr, is_wr
from repro.data import Database, evaluate_cq, evaluate_ucq
from repro.graphs import build_pnode_graph, build_position_graph
from repro.lang import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Signature,
    TGD,
    UnionOfConjunctiveQueries,
    Variable,
    parse_atom,
    parse_database,
    parse_program,
    parse_query,
    parse_ucq,
)
from repro.lint import LintReport, lint_program, lint_source
from repro.obda import OBDASystem
from repro.rewriting import FORewritingEngine, RewritingBudget, rewrite

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "BatchResult",
    "ConjunctiveQuery",
    "Constant",
    "Database",
    "FORewritingEngine",
    "LintReport",
    "OBDASystem",
    "PreparedQuery",
    "RewritingBudget",
    "RewritingCache",
    "Session",
    "Signature",
    "TGD",
    "UnionOfConjunctiveQueries",
    "Variable",
    "__version__",
    "build_pnode_graph",
    "build_position_graph",
    "certain_answers",
    "classify",
    "evaluate_cq",
    "evaluate_ucq",
    "is_swr",
    "is_wr",
    "lint_program",
    "lint_source",
    "parse_atom",
    "parse_database",
    "parse_program",
    "parse_query",
    "parse_ucq",
    "restricted_chase",
    "rewrite",
]
