"""A curated corpus of TGD sets with known classifications.

Fifteen small rule sets drawn from the paper and the surrounding
literature (linear/sticky examples in the style of Calì–Gottlob–Pieris,
dependency-graph examples in the style of Baget et al., chase
folklore), each annotated with its expected membership in every class
this library implements.  The corpus serves three purposes:

* a regression net for all recognizers at once
  (``tests/workloads/test_corpus.py``);
* a demonstration set for the classification bench and CLI;
* executable documentation of how the classes relate on concrete
  inputs.

``expected`` maps class names (as produced by
:meth:`repro.core.classify.ClassificationReport.memberships`) to the
expected verdict; classes not listed are not pinned by that entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.lang.parser import parse_program
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class CorpusEntry:
    """One annotated rule set."""

    name: str
    description: str
    program: str
    expected: Mapping[str, bool] = field(default_factory=dict)

    def rules(self) -> tuple[TGD, ...]:
        """Parse the program text."""
        return parse_program(self.program)


CORPUS: tuple[CorpusEntry, ...] = (
    CorpusEntry(
        name="id-chain",
        description="plain inclusion dependencies (CLR 2003 style)",
        program="""
            emp(X, D) -> person(X).
            person(X) -> hasName(X, N).
            hasName(X, N) -> name(N).
        """,
        expected={
            "inclusion-dependencies": True,
            "linear": True,
            "multilinear": True,
            "sticky": True,
            "sticky-join": True,
            "SWR": True,
            "WR": True,
            "aGRD": True,
        },
    ),
    CorpusEntry(
        name="linear-cycle",
        description="cyclic linear TGDs: recursion without splitting",
        program="""
            r(X, Y) -> s(Y, X).
            s(X, Y) -> r(X, Y).
        """,
        expected={
            "linear": True,
            "SWR": True,
            "WR": True,
            "aGRD": False,
            "datalog": True,
        },
    ),
    CorpusEntry(
        name="linear-invention-cycle",
        description="linear with value invention around a cycle",
        program="""
            person(X) -> hasParent(X, Y).
            hasParent(X, Y) -> person(Y).
        """,
        expected={
            "linear": True,
            "sticky": True,
            "SWR": True,
            "WR": True,
            "weakly-acyclic": False,
        },
    ),
    CorpusEntry(
        name="multilinear-guarded",
        description="every body atom carries the frontier",
        program="""
            a(X, Y2), b(X, Z2) -> c(X).
            c(X) -> a(X, W).
        """,
        expected={
            "linear": False,
            "multilinear": True,
            "SWR": True,
            "WR": True,
        },
    ),
    CorpusEntry(
        name="sticky-join-rules",
        description="joins on variables that survive into the head",
        program="""
            r(X, Y), s(Y, Z) -> t(X, Y, Z).
            t(X, Y, Z) -> r(X, Y).
        """,
        expected={
            "sticky": True,
            "sticky-join": True,
            "linear": False,
            "SWR": True,
            "WR": True,
        },
    ),
    CorpusEntry(
        name="sticky-violation",
        description="a dropped variable joined across atoms",
        program="""
            r(X, Y), s(Y, Z) -> t(X, Z).
        """,
        expected={
            "sticky": False,
            "sticky-join": False,
            "multilinear": False,
            "SWR": True,
            "WR": True,
            "aGRD": True,
        },
    ),
    CorpusEntry(
        name="transitivity",
        description="the classic non-FO-rewritable datalog rule",
        program="""
            edge(X, Y) -> path(X, Y).
            path(X, Y), path(Y, Z) -> path(X, Z).
        """,
        expected={
            "datalog": True,
            "SWR": False,
            "linear": False,
            "weakly-acyclic": True,
        },
    ),
    CorpusEntry(
        name="dangerous-split",
        description="m+s self-loop: splitting plus a missing frontier",
        program="""
            r(Y2, X), t(Y2, V) -> r(X, V).
        """,
        expected={"SWR": False, "WR": False, "sticky": False},
    ),
    CorpusEntry(
        name="paper-example-1",
        description="the paper's Example 1 (Figure 1)",
        program="""
            s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).
            v(Y1, Y2), q0(Y2) -> s(Y1, Y3, Y2).
            r(Y1, Y2) -> v(Y1, Y2).
        """,
        expected={
            "SWR": True,
            "WR": True,
            "linear": False,
            "multilinear": False,
            "sticky-join": True,
        },
    ),
    CorpusEntry(
        name="paper-example-2",
        description="the paper's Example 2 (Figures 2-3): not WR",
        program="""
            t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
            s(Y1, Y1, Y2) -> r(Y2, Y3).
        """,
        expected={"SWR": False, "WR": False, "weakly-acyclic": True},
    ),
    CorpusEntry(
        name="paper-example-3",
        description="the paper's Example 3: weak recursion, WR only",
        program="""
            r(Y1, Y2) -> t(Y3, Y1, Y1).
            s(Y1, Y2, Y3) -> r(Y1, Y2).
            u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).
        """,
        expected={
            "SWR": False,
            "WR": True,
            "linear": False,
            "multilinear": False,
            "sticky": False,
            "sticky-join": False,
            "aGRD": True,
            "weakly-acyclic": False,
        },
    ),
    CorpusEntry(
        name="domain-restricted-only",
        description="head atoms carry all or none of the body variables",
        program="""
            a(X, Y) -> pair(X, Y), tag(Z).
        """,
        expected={
            "domain-restricted": True,
            "linear": True,
            "SWR": False,
            "WR": True,
        },
    ),
    CorpusEntry(
        name="agrd-pipeline",
        description="acyclic rule dependencies: a one-shot pipeline",
        program="""
            raw(X) -> stage1(X, Y).
            stage1(X, Y) -> stage2(Y).
            stage2(Y) -> done(Y).
        """,
        expected={
            "aGRD": True,
            "linear": True,
            "SWR": True,
            "WR": True,
            "weakly-acyclic": True,
        },
    ),
    CorpusEntry(
        name="constants-guard",
        description="constants restrict applicability (not simple)",
        program="""
            status(X, "active") -> user(X).
            user(X) -> status(X, "known").
        """,
        expected={
            "SWR": False,
            "WR": True,
            "linear": True,
            "datalog": True,
        },
    ),
    CorpusEntry(
        name="multi-head-invention",
        description="a shared invented value across two head atoms",
        program="""
            person(X) -> account(X, A), owner(A).
            owner(A) -> audited(A).
        """,
        expected={
            "SWR": False,
            "WR": True,
            "linear": True,
            "weakly-acyclic": True,
        },
    ),
    CorpusEntry(
        name="frontier-guarded-not-guarded",
        description="the frontier has a guard atom, the body does not",
        program="""
            big(X, Y), side(Z, W) -> head(X, Y).
        """,
        expected={
            "guarded": False,
            "frontier-guarded": True,
            "multilinear": False,
            "SWR": True,
            "WR": True,
        },
    ),
    CorpusEntry(
        name="guarded-recursion",
        description="guarded but value-inventing recursion (not AC0)",
        program="""
            node(X) -> edge(X, Y).
            edge(X, Y) -> node(Y).
        """,
        expected={
            "guarded": True,
            "linear": True,
            "SWR": True,
            "WR": True,
            "weakly-acyclic": False,
        },
    ),
    CorpusEntry(
        name="harmless-split",
        description="an s-cycle with no m-edge stays SWR",
        program="""
            s(X, Y2), t(Y2) -> r(X).
            r(X) -> u(X).
            u(X) -> s(X, Z).
        """,
        expected={
            "SWR": True,
            "WR": True,
            "sticky": False,
            "sticky-join": False,
            "multilinear": False,
        },
    ),
    CorpusEntry(
        name="isolated-atom",
        description="a body atom sharing no variables (i-edge material)",
        program="""
            trigger(Y4), payload(X) -> out(X).
            out(X) -> payload(X).
        """,
        expected={
            "SWR": True,
            "WR": True,
            "multilinear": False,
            "guarded": False,
        },
    ),
    CorpusEntry(
        name="sticky-but-not-swr",
        description="stickiness does not require simplicity",
        program="""
            r(X, X) -> p(X).
            p(X) -> r(X, Y).
        """,
        expected={
            "sticky": True,
            "SWR": False,
            "WR": True,
            "linear": True,
        },
    ),
)


def entry(name: str) -> CorpusEntry:
    """Look one corpus entry up by name."""
    for candidate in CORPUS:
        if candidate.name == name:
            return candidate
    raise KeyError(name)
