"""The clinic workload: an extended-DL domain (experiment E13).

A healthcare domain written in DL-Lite_R *plus qualified existential
restrictions* -- the concrete "new FO-rewritable DL" of Section 6.
Provides the TBox (text and parsed), its TGD translation, a seeded
ABox generator and a query workload, mirroring the structure of the
university and transport workloads.
"""

from __future__ import annotations

import random

from repro.data.csvio import facts_from_rows
from repro.data.database import Database
from repro.dlite.extended import ExtendedTBox, extended_tbox_to_tgds
from repro.dlite.parser import parse_extended_tbox
from repro.lang.parser import parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.tgd import TGD

CLINIC_TBOX_TEXT = """
Doctor <= Clinician
Nurse <= Clinician
Clinician <= exists worksIn.Ward         % qualified: beyond DL-Lite
Patient <= exists assignedTo.Ward
exists treats.Patient <= Clinician       % qualified on the left
Doctor <= exists treats
exists treats- <= Patient
exists assignedTo <= Patient
Ward <= not Patient
Doctor <= not Patient
"""


def clinic_tbox() -> ExtendedTBox:
    """The parsed clinic TBox."""
    return parse_extended_tbox(CLINIC_TBOX_TEXT)


def clinic_ontology() -> tuple[TGD, ...]:
    """The clinic TBox translated to TGDs (WR, not SWR)."""
    return extended_tbox_to_tgds(clinic_tbox())


def clinic_data(size: int, seed: int = 0) -> Database:
    """A random, consistent clinic ABox with ~``3*size`` facts."""
    rng = random.Random(seed)
    abox = Database()
    doctors = [f"doc{i}" for i in range(max(1, size // 3))]
    nurses = [f"nurse{i}" for i in range(max(1, size // 3))]
    patients = [f"pat{i}" for i in range(size)]
    wards = [f"ward{i}" for i in range(max(1, size // 5))]

    abox.add_all(facts_from_rows("Doctor", [(d,) for d in doctors]))
    abox.add_all(facts_from_rows("Nurse", [(n,) for n in nurses]))
    abox.add_all(facts_from_rows("Patient", [(p,) for p in patients]))
    abox.add_all(facts_from_rows("Ward", [(w,) for w in wards]))
    abox.add_all(
        facts_from_rows(
            "treats",
            [
                (rng.choice(doctors), rng.choice(patients))
                for _ in range(size)
            ],
        )
    )
    abox.add_all(
        facts_from_rows(
            "worksIn",
            [
                (rng.choice(doctors + nurses), rng.choice(wards))
                for _ in range(size)
            ],
        )
    )
    abox.add_all(
        facts_from_rows(
            "assignedTo",
            [
                (rng.choice(patients), rng.choice(wards))
                for _ in range(size // 2)
            ],
        )
    )
    return abox


def clinic_queries() -> tuple[tuple[str, ConjunctiveQuery], ...]:
    """Named query workload over the clinic vocabulary."""
    return (
        ("CQ1-clinicians", parse_query("q(X) :- Clinician(X)")),
        ("CQ2-patients", parse_query("q(X) :- Patient(X)")),
        (
            "CQ3-treating-clinicians",
            parse_query("q(X) :- treats(X, P), Patient(P)"),
        ),
        (
            "CQ4-shared-ward",
            parse_query("q(C, P) :- worksIn(C, W), assignedTo(P, W)"),
        ),
        ("CQ5-someone-works", parse_query("q() :- worksIn(X, W), Ward(W)")),
    )
