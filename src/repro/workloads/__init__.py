"""Workloads: the paper's examples, synthetic generators, ontologies.

* :mod:`repro.workloads.paper` -- the exact TGD sets of the paper's
  Examples 1, 2 and 3 and the queries its narrative uses.
* :mod:`repro.workloads.generators` -- seeded random TGD-set generators
  targeted at specific classes (linear, sticky-ish, ...), used by the
  classification-matrix and scaling experiments.
* :mod:`repro.workloads.ontologies` -- hand-written OBDA-style
  ontologies (a LUBM-flavoured university domain and a transport
  domain) with data generators and query workloads.
"""

from repro.workloads.clinic import (
    clinic_data,
    clinic_ontology,
    clinic_queries,
    clinic_tbox,
)
from repro.workloads.corpus import CORPUS, CorpusEntry
from repro.workloads.ontologies import (
    transport_data,
    transport_ontology,
    transport_queries,
    university_data,
    university_ontology,
    university_queries,
)
from repro.workloads.paper import (
    EXAMPLE1_QUERY,
    EXAMPLE2_QUERY,
    example1,
    example2,
    example3,
)

__all__ = [
    "CORPUS",
    "CorpusEntry",
    "EXAMPLE1_QUERY",
    "EXAMPLE2_QUERY",
    "example1",
    "example2",
    "example3",
    "clinic_data",
    "clinic_ontology",
    "clinic_queries",
    "clinic_tbox",
    "transport_data",
    "transport_ontology",
    "transport_queries",
    "university_data",
    "university_ontology",
    "university_queries",
]
