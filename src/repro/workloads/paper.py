"""The TGD sets of the paper's Examples 1, 2 and 3, verbatim.

The relation ``q`` of Example 1 is spelled ``q0`` here so it cannot be
confused with query names; this is a pure renaming.

Expected classifications (asserted by the test suite):

* **Example 1** (simple TGDs): no ``s``-edges in the position graph ⇒
  SWR ⇒ FO-rewritable (Theorem 1).  Figure 1.
* **Example 2** (repeated variable in ``body(R2)``): the position
  graph has no dangerous cycle -- wrongly suggesting FO-rewritability
  -- but the boolean query ``q() :- r("a", X)`` has an unbounded
  rewriting chain; the P-node graph detects the dangerous cycle and
  rejects the set (Figures 2 and 3).
* **Example 3**: outside Linear, Multilinear, Sticky, Sticky-Join and
  SWR, yet FO-rewritable ("the recursion is only apparent"); WR.
"""

from __future__ import annotations

from repro.lang.parser import parse_program, parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.tgd import TGD


def example1() -> tuple[TGD, ...]:
    """Example 1: SWR (and hence FO-rewritable) simple TGDs."""
    return parse_program(
        """
        R1: s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3).
        R2: v(Y1, Y2), q0(Y2) -> s(Y1, Y3, Y2).
        R3: r(Y1, Y2) -> v(Y1, Y2).
        """
    )


def example2() -> tuple[TGD, ...]:
    """Example 2: not FO-rewritable; the position graph misses it."""
    return parse_program(
        """
        R1: t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
        R2: s(Y1, Y1, Y2) -> r(Y2, Y3).
        """
    )


def example3() -> tuple[TGD, ...]:
    """Example 3: FO-rewritable but outside all baseline classes."""
    return parse_program(
        """
        R1: r(Y1, Y2) -> t(Y3, Y1, Y1).
        R2: s(Y1, Y2, Y3) -> r(Y1, Y2).
        R3: u(Y1), t(Y1, Y1, Y2) -> s(Y1, Y1, Y2).
        """
    )


#: The query the paper's Example 1 narrative implies (an atomic query
#: on the head relation of R1).
EXAMPLE1_QUERY: ConjunctiveQuery = parse_query("q(X) :- r(X, Y)")

#: The boolean query of Example 2 whose rewriting has an unbounded
#: chain: ``q() ← r("a", x)``.
EXAMPLE2_QUERY: ConjunctiveQuery = parse_query('q() :- r("a", X)')
