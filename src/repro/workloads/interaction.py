"""Workloads exercising the constraint-interaction analyzer.

Hand-verified rule sets separating the termination lattice's levels,
plus ready-made (rules, query, database) workloads that drive the new
Section-7 strategy cells:

* :func:`ja_not_wa` -- jointly acyclic but not weakly acyclic: the
  invention cycle ``s -> r -> t -> s`` is guarded by ``u``, which no
  rule derives, so invented nulls can never re-enter ``s`` (the
  paper's Example 3 shows the same phenomenon in the wild).
* :func:`swa_not_ja` -- super-weakly but not jointly acyclic: the
  invented value flows back *positionally*, but the head constant
  ``"b"`` clashes with the body constant ``"c"``, so the trigger can
  never actually fire; only the unification-aware analysis sees this.
* :func:`lattice_chase_workload` -- Example 2 (whose chain query makes
  every rewriting probe diverge) unioned with one of the above, so the
  decision procedure must fall through to the chase, which only the
  JA/SWA lattice members admit.
* :func:`split_workload` -- Example 2 plus an audit/delegate invention
  cycle: not terminating at any lattice level, not FO-rewritable, but
  separable into a chase-safe core {R1, R2, R3} and a rewritable
  residual {R4, R5}.
"""

from __future__ import annotations

from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.tgd import TGD
from repro.workloads.paper import example2


def ja_not_wa() -> tuple[TGD, ...]:
    """Jointly acyclic, not weakly acyclic: a guarded invention cycle."""
    return parse_program(
        """
        C1: s(X) -> r(X, Y).
        C2: r(X, Y) -> t(Y).
        C3: t(X), u(X) -> s(X).
        """
    )


def swa_not_ja() -> tuple[TGD, ...]:
    """Super-weakly but not jointly acyclic: constants block the loop."""
    return parse_program(
        """
        S1: a(X) -> r(X, Y, "b").
        S2: r(X, Y, "c") -> a(Y).
        """
    )


def _renamed_ja_rules() -> tuple[TGD, ...]:
    # ja_not_wa over fresh relation names, so it can be unioned with
    # Example 2 without capturing its relations.
    return parse_program(
        """
        C1: f(X) -> g(X, Y).
        C2: g(X, Y) -> h(Y).
        C3: h(X), e(X) -> f(X).
        """
    )


def _renamed_swa_rules() -> tuple[TGD, ...]:
    return parse_program(
        """
        S1: aa(X) -> rr(X, Y, "b").
        S2: rr(X, Y, "c") -> aa(Y).
        """
    )


def lattice_chase_workload(
    level: str,
) -> tuple[tuple[TGD, ...], ConjunctiveQuery, Database]:
    """A workload only the lattice-admitted CHASE branch answers exactly.

    *level* is ``"ja"`` or ``"swa"``.  The fragment unions Example 2
    (so the query's rewriting diverges and the probe cannot help) with
    a set that breaks weak acyclicity but terminates at the requested
    lattice level; the chase over the union terminates.
    """
    if level == "ja":
        extra = _renamed_ja_rules()
        query = parse_query('q() :- r("a", X), f(Z)')
        data = "t(b, a). r(b, e). f(m). e(m)."
    elif level == "swa":
        extra = _renamed_swa_rules()
        query = parse_query('q() :- r("a", X), aa(Z)')
        data = "t(b, a). r(b, e). aa(m)."
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown lattice level {level!r}")
    return (
        example2() + extra,
        query,
        Database(parse_database(data)),
    )


#: The rules of :func:`split_workload`: Example 2 (diverging rewriting,
#: terminating chase) feeding an audit/delegate invention cycle
#: (diverging chase, terminating rewriting).
SPLIT_RULES_TEXT = """
R1: t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
R2: s(Y1, Y1, Y2) -> r(Y2, Y3).
R3: r(X, Y) -> audit(Y).
R4: audit(X) -> delegate(X, Y).
R5: delegate(X, Y) -> audit(Y).
"""


def split_workload() -> tuple[tuple[TGD, ...], ConjunctiveQuery, Database]:
    """A workload answerable exactly only by the SPLIT strategy.

    The full set terminates at no lattice level (R4/R5 feed each other
    fresh nulls) and the query's rewriting diverges through Example
    2's chain, but the set separates into the chase-safe core
    {R1, R2, R3} and the rewritable residual {R4, R5}.
    """
    rules = parse_program(SPLIT_RULES_TEXT)
    # The constant anchor "a" keeps the Example-2 chain from being
    # folded away by UCQ subsumption, so the full-set probe diverges;
    # the delegate/audit atoms pull R4 and R5 into the fragment.
    query = parse_query('q(W) :- r("a", X), delegate(W, Z)')
    database = Database(
        parse_database("t(b, a). r(b, e). audit(m). delegate(d, k).")
    )
    return rules, query, database
