"""Seeded random TGD-set generators, one family per target class.

The classification-matrix experiment (E7) and the membership-scaling
experiment (E8) need many TGD sets with known or controllable
properties.  Each generator takes an explicit ``random.Random`` seed so
every bench run is reproducible.

Construction-by-design is preferred over rejection sampling: e.g.
:func:`random_multilinear` *builds* bodies in which every atom contains
the whole frontier rather than filtering random rules.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.lang.atoms import Atom
from repro.lang.terms import Constant, Term, Variable
from repro.lang.tgd import TGD


def _relation_pool(
    rng: random.Random, count: int, max_arity: int
) -> list[tuple[str, int]]:
    return [
        (f"p{i}", rng.randint(1, max_arity)) for i in range(count)
    ]


def _variables(count: int) -> list[Variable]:
    return [Variable(f"V{i}") for i in range(count)]


def random_simple(
    rng: random.Random,
    n_rules: int = 5,
    n_relations: int = 6,
    max_arity: int = 3,
    max_body_atoms: int = 3,
) -> tuple[TGD, ...]:
    """Random *simple* TGDs: single head, no constants, no repeats.

    Per rule: a body of 1..max_body_atoms atoms over a shared variable
    pool (each atom uses distinct variables, as simplicity requires)
    and a single-atom head mixing frontier and existential variables.
    """
    relations = _relation_pool(rng, n_relations, max_arity)
    rules: list[TGD] = []
    for index in range(n_rules):
        n_body = rng.randint(1, max_body_atoms)
        pool = _variables(max_arity * (n_body + 1))
        body: list[Atom] = []
        used: list[Variable] = []
        for _ in range(n_body):
            relation, arity = rng.choice(relations)
            # Mix fresh variables with already-used ones (joins), but
            # never repeat a variable inside one atom.
            atom_vars: list[Variable] = []
            candidates = [v for v in pool if v not in atom_vars]
            for _ in range(arity):
                reuse = used and rng.random() < 0.5
                choices = (
                    [v for v in used if v not in atom_vars]
                    if reuse
                    else [v for v in candidates if v not in used and v not in atom_vars]
                )
                if not choices:
                    choices = [v for v in pool if v not in atom_vars]
                var = rng.choice(choices)
                atom_vars.append(var)
            used.extend(v for v in atom_vars if v not in used)
            body.append(Atom(relation, atom_vars))
        relation, arity = rng.choice(relations)
        head_vars: list[Variable] = []
        fresh_counter = 0
        for _ in range(arity):
            if used and rng.random() < 0.7:
                choices = [v for v in used if v not in head_vars]
                if choices:
                    head_vars.append(rng.choice(choices))
                    continue
            fresh_counter += 1
            fresh = Variable(f"E{index}_{fresh_counter}")
            head_vars.append(fresh)
        rules.append(TGD(body, [Atom(relation, head_vars)], label=f"G{index + 1}"))
    return tuple(rules)


def random_linear(
    rng: random.Random,
    n_rules: int = 6,
    n_relations: int = 6,
    max_arity: int = 3,
) -> tuple[TGD, ...]:
    """Random linear TGDs (single body atom, single head atom)."""
    return tuple(
        _strip_to_linear(rule, i)
        for i, rule in enumerate(
            random_simple(
                rng,
                n_rules=n_rules,
                n_relations=n_relations,
                max_arity=max_arity,
                max_body_atoms=1,
            ),
            start=1,
        )
    )


def _strip_to_linear(rule: TGD, index: int) -> TGD:
    return TGD(rule.body[:1], rule.head, label=f"L{index}")


def random_multilinear(
    rng: random.Random,
    n_rules: int = 5,
    n_relations: int = 5,
    max_arity: int = 4,
    max_body_atoms: int = 3,
) -> tuple[TGD, ...]:
    """Random multilinear TGDs: every body atom contains the frontier.

    The frontier is drawn first and injected into every body atom (so
    arities must accommodate it); remaining argument places take fresh
    existential body variables.
    """
    rules: list[TGD] = []
    for index in range(n_rules):
        frontier_size = rng.randint(1, max(1, max_arity - 1))
        frontier = [Variable(f"F{index}_{k}") for k in range(frontier_size)]
        n_body = rng.randint(1, max_body_atoms)
        body: list[Atom] = []
        for a in range(n_body):
            extra = rng.randint(0, max_arity - frontier_size)
            terms: list[Term] = list(frontier) + [
                Variable(f"B{index}_{a}_{k}") for k in range(extra)
            ]
            rng.shuffle(terms)
            body.append(Atom(f"m{rng.randint(0, n_relations - 1)}_{len(terms)}", terms))
        head_arity = rng.randint(1, max_arity)
        # Sample head variables without replacement so the rule stays
        # simple (no repeated variable inside the head atom).
        available = list(frontier)
        rng.shuffle(available)
        head_terms: list[Term] = []
        for k in range(head_arity):
            if available and rng.random() < 0.7:
                head_terms.append(available.pop())
            else:
                head_terms.append(Variable(f"H{index}_{k}"))
        head = Atom(f"m{rng.randint(0, n_relations - 1)}_{head_arity}", head_terms)
        rules.append(TGD(body, [head], label=f"M{index + 1}"))
    return tuple(rules)


def random_arbitrary(
    rng: random.Random,
    n_rules: int = 5,
    n_relations: int = 6,
    max_arity: int = 3,
    max_body_atoms: int = 3,
    constant_probability: float = 0.15,
    repeat_probability: float = 0.2,
) -> tuple[TGD, ...]:
    """Random arbitrary TGDs: constants and repeated variables allowed."""
    relations = _relation_pool(rng, n_relations, max_arity)
    constants = [Constant(c) for c in ("a", "b", "c")]
    rules: list[TGD] = []
    for index in range(n_rules):
        n_body = rng.randint(1, max_body_atoms)
        used: list[Variable] = []
        body: list[Atom] = []
        for a in range(n_body):
            relation, arity = rng.choice(relations)
            terms: list[Term] = []
            for k in range(arity):
                roll = rng.random()
                if roll < constant_probability:
                    terms.append(rng.choice(constants))
                elif roll < constant_probability + repeat_probability and used:
                    terms.append(rng.choice(used))
                else:
                    var = Variable(f"V{index}_{a}_{k}")
                    used.append(var)
                    terms.append(var)
            body.append(Atom(relation, terms))
        relation, arity = rng.choice(relations)
        head_terms: list[Term] = []
        for k in range(arity):
            if used and rng.random() < 0.7:
                head_terms.append(rng.choice(used))
            else:
                head_terms.append(Variable(f"E{index}_{k}"))
        rules.append(TGD(body, [Atom(relation, head_terms)], label=f"A{index + 1}"))
    return tuple(rules)


def concept_hierarchy(depth: int) -> tuple[TGD, ...]:
    """A linear concept chain ``c0 ⊑ c1 ⊑ ... ⊑ c_depth`` as TGDs.

    The canonical scaling family: SWR, linear, sticky -- everything --
    with position graphs of size Θ(depth).
    """
    x = Variable("X")
    return tuple(
        TGD([Atom(f"c{i}", [x])], [Atom(f"c{i + 1}", [x])], label=f"H{i + 1}")
        for i in range(depth)
    )


def role_chain(depth: int) -> tuple[TGD, ...]:
    """``r_i(x,y) -> r_{i+1}(x,z)`` chains: existential propagation.

    Still SWR (no splitting), with m-edges along the whole chain.
    """
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    return tuple(
        TGD(
            [Atom(f"r{i}", [x, y])],
            [Atom(f"r{i + 1}", [x, z])],
            label=f"C{i + 1}",
        )
        for i in range(depth)
    )


def swr_but_not_baselines(copies: int = 1) -> tuple[TGD, ...]:
    """SWR sets outside Linear/Multilinear/Sticky/Sticky-Join.

    Each copy joins two body atoms on a variable that is *dropped*
    from the head (so the sticky marking rejects it, cross-atom, which
    also kills sticky-join), with one atom missing the frontier (not
    multilinear) and two-atom bodies (not linear).  The recursion
    ``r -> u -> s -> r`` keeps the position graph cyclic, but its only
    dangerous label is the ``s`` from the dropped-variable split --
    the cycle carries no ``m``-edge, so the set stays SWR.  *copies*
    disjoint copies scale the set up for the E8 experiment.
    """
    rules: list[TGD] = []
    for c in range(copies):
        x, y2, z = Variable(f"X{c}"), Variable(f"Y{c}"), Variable(f"Z{c}")
        rules.extend(
            [
                TGD(
                    [Atom(f"s{c}", [x, y2]), Atom(f"t{c}", [y2])],
                    [Atom(f"r{c}", [x])],
                    label=f"W{c}_1",
                ),
                TGD(
                    [Atom(f"r{c}", [x])],
                    [Atom(f"u{c}", [x])],
                    label=f"W{c}_2",
                ),
                TGD(
                    [Atom(f"u{c}", [x])],
                    [Atom(f"s{c}", [x, z])],
                    label=f"W{c}_3",
                ),
            ]
        )
    return tuple(rules)


def dangerous_family(copies: int = 1) -> tuple[TGD, ...]:
    """Disjoint copies of the paper's Example 2 (not FO-rewritable)."""
    rules: list[TGD] = []
    for c in range(copies):
        y1, y2, y3, y4 = (Variable(f"Y{c}_{k}") for k in range(1, 5))
        rules.extend(
            [
                TGD(
                    [Atom(f"t{c}", [y1, y2]), Atom(f"r{c}", [y3, y4])],
                    [Atom(f"s{c}", [y1, y3, y2])],
                    label=f"D{c}_1",
                ),
                TGD(
                    [Atom(f"s{c}", [y1, y1, y2])],
                    [Atom(f"r{c}", [y2, y3])],
                    label=f"D{c}_2",
                ),
            ]
        )
    return tuple(rules)


def context_blocked_family() -> tuple[TGD, ...]:
    """A set whose safety only the P-node context check can see.

    The apparent cycle ``r -> t -> r`` is broken in real rewriting
    because continuing it would unify a *shared* query variable (also
    constrained by the ``u``-atom of the context) with the invented
    null of ``Ra`` -- and ``u`` cannot join the piece (it matches no
    head atom).  The reconstruction's context check blocks exactly
    that expansion; with the check ablated away, the P-node graph
    contains a spurious dangerous (d+m+s) cycle and the set is wrongly
    rejected.  Used by the ablation bench.
    """
    x = Variable("X")
    v, v2 = Variable("V"), Variable("V2")
    y2, z = Variable("Y2"), Variable("Z")
    return (
        TGD(
            [Atom("t", [y2, x]), Atom("w", [y2, v2])],
            [Atom("r", [x, v2, z])],
            label="Ra",
        ),
        TGD(
            [Atom("r", [x, v2, v]), Atom("u", [v])],
            [Atom("t", [x, v])],
            label="Rb",
        ),
    )


def generate_database(
    rng: random.Random,
    rules: Sequence[TGD],
    facts_per_relation: int = 5,
    domain_size: int = 8,
):
    """Random facts over the body relations of *rules*.

    Returns a list of ground atoms usable to seed a chase or a
    database; every constant is drawn from ``d0..d<domain_size-1>``.
    """
    from repro.lang.signature import Signature

    signature = Signature.from_rules(list(rules))
    domain = [Constant(f"d{i}") for i in range(domain_size)]
    facts = []
    for relation in signature.relations():
        arity = signature[relation]
        for _ in range(facts_per_relation):
            facts.append(
                Atom(relation, [rng.choice(domain) for _ in range(arity)])
            )
    return facts
