"""Hand-written OBDA-style ontologies with data and query workloads.

Two domains, both designed to be SWR (hence FO-rewritable):

* **university** -- a LUBM-flavoured academic domain with concept
  hierarchies, role typing and existential "value invention"
  (every faculty member teaches *something*);
* **transport** -- a mobility-aid/transport domain in the spirit of
  the ontologies used by rewriting-engine evaluations, exercising
  inverse-role-style rules.

Each domain provides the TGD set, a seeded data generator producing a
source database, and a list of named conjunctive queries.
"""

from __future__ import annotations

import random

from repro.data.database import Database
from repro.lang.parser import parse_program, parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.tgd import TGD


def university_ontology() -> tuple[TGD, ...]:
    """The university TGD set (SWR by construction)."""
    return parse_program(
        """
        U1: assistantProfessor(X) -> professor(X).
        U2: fullProfessor(X) -> professor(X).
        U3: professor(X) -> faculty(X).
        U4: lecturer(X) -> faculty(X).
        U5: faculty(X) -> employee(X).
        U6: faculty(X) -> teaches(X, C).
        U7: teaches(X, C) -> course(C).
        U8: teaches(X, C) -> faculty(X).
        U9: gradStudent(X) -> student(X).
        U10: undergradStudent(X) -> student(X).
        U11: gradStudent(X) -> takes(X, C).
        U12: takes(X, C) -> student(X).
        U13: takes(X, C) -> course(C).
        U14: hasAdvisor(X, Y) -> gradStudent(X).
        U15: hasAdvisor(X, Y) -> professor(Y).
        U16: department(D) -> hasChair(D, P).
        U17: hasChair(D, P) -> professor(P).
        U18: hasChair(D, P) -> memberOf(P, D).
        U19: worksFor(X, D) -> memberOf(X, D).
        U20: memberOf(X, D) -> affiliated(X, D).
        U21: teaches(X, C), takes(Y, C) -> instructs(X, Y).
        U22: hasAdvisor(X, Y), memberOf(Y, D) -> researchGroup(D, G).
        U23: instructs(X, Y) -> knows(X, Y).
        """
    )


def university_data(size: int, seed: int = 0) -> Database:
    """A random university source database with ~``6*size`` facts."""
    rng = random.Random(seed)
    database = Database()
    from repro.data.csvio import facts_from_rows

    people = [f"person{i}" for i in range(size)]
    departments = [f"dept{i}" for i in range(max(1, size // 5))]
    courses = [f"course{i}" for i in range(max(1, size // 2))]

    rows_full = [(p,) for p in people[: size // 4]]
    rows_assistant = [(p,) for p in people[size // 4: size // 2]]
    rows_grad = [(p,) for p in people[size // 2: (3 * size) // 4]]
    rows_undergrad = [(p,) for p in people[(3 * size) // 4:]]
    database.add_all(facts_from_rows("fullProfessor", rows_full))
    database.add_all(facts_from_rows("assistantProfessor", rows_assistant))
    database.add_all(facts_from_rows("gradStudent", rows_grad))
    database.add_all(facts_from_rows("undergradStudent", rows_undergrad))
    database.add_all(facts_from_rows("department", [(d,) for d in departments]))

    professors = [r[0] for r in rows_full + rows_assistant]
    grads = [r[0] for r in rows_grad]
    teach_rows = [
        (rng.choice(professors), rng.choice(courses))
        for _ in range(size)
        if professors and courses
    ]
    take_rows = [
        (rng.choice(grads), rng.choice(courses))
        for _ in range(size)
        if grads and courses
    ]
    advisor_rows = [
        (rng.choice(grads), rng.choice(professors))
        for _ in range(max(1, size // 2))
        if grads and professors
    ]
    work_rows = [
        (rng.choice(professors), rng.choice(departments))
        for _ in range(size)
        if professors and departments
    ]
    database.add_all(facts_from_rows("teaches", teach_rows))
    database.add_all(facts_from_rows("takes", take_rows))
    database.add_all(facts_from_rows("hasAdvisor", advisor_rows))
    database.add_all(facts_from_rows("worksFor", work_rows))
    return database


def university_queries() -> tuple[tuple[str, ConjunctiveQuery], ...]:
    """Named query workload over the university ontology."""
    return (
        ("UQ1-employees", parse_query("q(X) :- employee(X)")),
        ("UQ2-students", parse_query("q(X) :- student(X)")),
        (
            "UQ3-advised-by-faculty",
            parse_query("q(X, Y) :- hasAdvisor(X, Y), faculty(Y)"),
        ),
        (
            "UQ4-teaching-members",
            parse_query("q(X) :- teaches(X, C), memberOf(X, D)"),
        ),
        (
            "UQ5-course-exists",
            parse_query("q(X) :- faculty(X), teaches(X, C), course(C)"),
        ),
        (
            "UQ6-dept-affiliates",
            parse_query("q(D) :- department(D), affiliated(P, D)"),
        ),
    )


def transport_ontology() -> tuple[TGD, ...]:
    """The transport/mobility TGD set (SWR by construction)."""
    return parse_program(
        """
        T1: bus(X) -> publicTransport(X).
        T2: tram(X) -> publicTransport(X).
        T3: publicTransport(X) -> vehicle(X).
        T4: wheelchair(X) -> mobilityAid(X).
        T5: mobilityAid(X) -> device(X).
        T6: publicTransport(X) -> servesRoute(X, R).
        T7: servesRoute(X, R) -> route(R).
        T8: accessible(X) -> vehicle(X).
        T9: rampEquipped(X) -> accessible(X).
        T10: assists(D, P) -> mobilityAid(D).
        T11: assists(D, P) -> person(P).
        T12: usesTransport(P, X) -> person(P).
        T13: usesTransport(P, X) -> vehicle(X).
        """
    )


def transport_data(size: int, seed: int = 1) -> Database:
    """A random transport source database."""
    rng = random.Random(seed)
    from repro.data.csvio import facts_from_rows

    database = Database()
    vehicles = [f"veh{i}" for i in range(size)]
    people = [f"pers{i}" for i in range(size)]
    devices = [f"dev{i}" for i in range(max(1, size // 2))]

    database.add_all(
        facts_from_rows("bus", [(v,) for v in vehicles[: size // 2]])
    )
    database.add_all(
        facts_from_rows("tram", [(v,) for v in vehicles[size // 2:]])
    )
    database.add_all(
        facts_from_rows(
            "rampEquipped", [(v,) for v in vehicles if rng.random() < 0.3]
        )
    )
    database.add_all(
        facts_from_rows("wheelchair", [(d,) for d in devices])
    )
    database.add_all(
        facts_from_rows(
            "assists",
            [(rng.choice(devices), rng.choice(people)) for _ in range(size)],
        )
    )
    database.add_all(
        facts_from_rows(
            "usesTransport",
            [(rng.choice(people), rng.choice(vehicles)) for _ in range(size)],
        )
    )
    return database


def transport_queries() -> tuple[tuple[str, ConjunctiveQuery], ...]:
    """Named query workload over the transport ontology."""
    return (
        ("TQ1-vehicles", parse_query("q(X) :- vehicle(X)")),
        (
            "TQ2-aided-travellers",
            parse_query("q(P) :- assists(D, P), usesTransport(P, X)"),
        ),
        (
            "TQ3-accessible-public",
            parse_query("q(X) :- accessible(X), publicTransport(X)"),
        ),
        (
            "TQ4-routes-exist",
            parse_query("q(X, R) :- publicTransport(X), servesRoute(X, R)"),
        ),
    )
