"""Cross-artifact static analysis: the ``repro check`` subsystem.

``repro lint`` (RL0xx, :mod:`repro.lint`) validates one TGD program.
This package validates a whole OBDA *project* -- ontology, query
workload, GAV mappings and source data -- against each other (RL1xx):
dead rules, unmapped relations, mapping arity mismatches and
predictable rewriting blowups, all caught before any rewriting or data
access runs.  It reuses the lint diagnostic/report/renderer
infrastructure, so the output formats, ``--strict`` behaviour and exit
codes match ``repro lint`` exactly.

Entry points: :func:`load_project` + :func:`check_project` (the CLI's
``repro check``), :meth:`repro.api.Session.check` (the API surface),
:func:`estimate_disjunct_bound` (the engine pre-flight) and
:func:`prune_statically_empty` (the ``Session(prune_empty=True)``
optimisation).
"""

from repro.checkers.estimator import (
    BlowupEstimate,
    RewritingBlowupWarning,
    estimate_disjunct_bound,
)
from repro.checkers.passes import (
    CHECK_REGISTRY,
    CheckConfig,
    CheckContext,
    CheckSpec,
    all_check_codes,
    check_code_names,
    check_project,
    render_check,
)
from repro.checkers.project import Project, load_project, parse_queries
from repro.checkers.pruning import (
    PruneResult,
    prune_statically_empty,
    supported_relations,
)

__all__ = [
    "BlowupEstimate",
    "CHECK_REGISTRY",
    "CheckConfig",
    "CheckContext",
    "CheckSpec",
    "Project",
    "PruneResult",
    "RewritingBlowupWarning",
    "all_check_codes",
    "check_code_names",
    "check_project",
    "estimate_disjunct_bound",
    "load_project",
    "parse_queries",
    "prune_statically_empty",
    "render_check",
    "supported_relations",
]
