"""Safe pruning of statically-empty UCQ disjuncts.

A rewriting is evaluated over the virtual ABox, and the ABox can only
ever hold facts over *supported* relations: the targets of the mapping
assertions (in a mapped OBDA setting) or the relations actually present
in the source database (identity mapping).  A disjunct mentioning any
other relation is statically empty -- no database reachable through the
mappings can satisfy it -- so dropping it cannot change the certain
answers.  That is the soundness argument; the differential harness
(in-memory == SQL == chase, pruned vs unpruned) enforces it end to end.

Used by ``Session(prune_empty=True)`` and reported (as ``RL106``) by
``repro check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.data.database import Database
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.obda.mappings import MappingAssertion


@dataclass(frozen=True)
class PruneResult:
    """Outcome of pruning one UCQ.

    Attributes:
        ucq: the pruned UCQ, or None when *every* disjunct was
            statically empty (the query then has no certain answers
            over the session's data).
        kept: number of disjuncts retained.
        dropped: number of disjuncts removed.
        empty_relations: the unsupported relations that caused drops.
    """

    ucq: UnionOfConjunctiveQueries | None
    kept: int
    dropped: int
    empty_relations: frozenset[str]


def supported_relations(
    mappings: Sequence[MappingAssertion] | None,
    source: Database | None,
) -> frozenset[str]:
    """Relations the virtual ABox can hold facts over.

    Mirrors :meth:`repro.api.Session.abox`: with mappings, the ABox is
    the mappings' output (targets of assertions whose source relations
    all exist non-empty, when the source is known); without mappings the
    source database *is* the ABox, so its non-empty relations count.
    """
    nonempty: frozenset[str] | None = None
    if source is not None:
        nonempty = frozenset(
            relation
            for relation in source.relations()
            if source.count(relation) > 0
        )
    if mappings is not None:
        out: set[str] = set()
        for mapping in mappings:
            if nonempty is not None and any(
                atom.relation not in nonempty
                for atom in mapping.source_body
            ):
                continue
            out.add(mapping.target.relation)
        return frozenset(out)
    if nonempty is not None:
        return nonempty
    raise ValueError(
        "supported_relations needs mappings and/or a source database"
    )


def prune_statically_empty(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    supported: frozenset[str],
) -> PruneResult:
    """Drop disjuncts containing an atom over an unsupported relation."""
    ucq = UnionOfConjunctiveQueries.of(query)
    kept: list[ConjunctiveQuery] = []
    empty: set[str] = set()
    for cq in ucq:
        missing = {
            atom.relation
            for atom in cq.body
            if atom.relation not in supported
        }
        if missing:
            empty |= missing
        else:
            kept.append(cq)
    dropped = len(ucq) - len(kept)
    if dropped:
        obs.count("session.pruned_disjuncts", dropped)
    pruned = (
        UnionOfConjunctiveQueries(kept, name=ucq.name) if kept else None
    )
    return PruneResult(
        ucq=pruned,
        kept=len(kept),
        dropped=dropped,
        empty_relations=frozenset(empty),
    )
