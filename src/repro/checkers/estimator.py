"""Static rewriting-size estimation from ``AG(P)`` fan-out.

PerfectRef-style saturation multiplies the UCQ frontier by (at most)
the number of applicable rules per atom each round; the number of
effective rounds is bounded by the longest derivation chain of the
query's relations.  Both quantities are readable off the dependency
structure *before* any rewriting runs, which is exactly the
succinctness observation of Gottlob & Schwentick (*Rewriting
Ontological Queries into Small Nonrecursive Datalog Programs*) and
Kikot et al. (*On the Succinctness of Query Rewriting ...*): blowup is
predictable from the rule graph.

:func:`estimate_disjunct_bound` turns that into a concrete (crude but
sound-as-an-upper-bound) disjunct-count estimate together with the
*offending rule chain* -- the derivation path realising the depth --
so a blowup warning can name the rules to restructure.  It backs the
``RL105`` check pass and the optional engine pre-flight
(``FORewritingEngine(preflight_estimate=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.tgd import TGD
from repro.rewriting.budget import RewritingBudget

#: Cap on the estimate so the arithmetic stays exact but bounded.
ESTIMATE_CAP = 10**18


class RewritingBlowupWarning(UserWarning):
    """Pre-flight estimate says the rewriting will exceed its budget."""


@dataclass(frozen=True)
class BlowupEstimate:
    """Outcome of the static disjunct-count estimation.

    Attributes:
        bound: estimated upper bound on the UCQ disjunct count
            (capped at :data:`ESTIMATE_CAP`).
        per_round: the per-round multiplier ``1 + Σ_α b(rel(α))``.
        depth: assumed number of rewriting rounds.
        cyclic: True when the derivation graph of the query's relations
            is cyclic (the depth is then a configured assumption, not a
            structural bound).
        chain: labels of the rules along the derivation path realising
            *depth* (for cyclic inputs: the rules closing the cycle).
    """

    bound: int
    per_round: int
    depth: int
    cyclic: bool
    chain: tuple[str, ...]

    @property
    def capped(self) -> bool:
        """True when the bound saturated at :data:`ESTIMATE_CAP`."""
        return self.bound >= ESTIMATE_CAP

    def render_bound(self) -> str:
        """``~N`` or ``>=10^18`` when saturated."""
        return ">=10^18" if self.capped else f"~{self.bound}"


def _rule_label(rule: TGD, index: int) -> str:
    return rule.label or f"#{index}"


def _derivers(rules: Sequence[TGD]) -> dict[str, list[tuple[str, TGD]]]:
    """relation -> (label, rule) pairs with that head relation."""
    out: dict[str, list[tuple[str, TGD]]] = {}
    for index, rule in enumerate(rules, start=1):
        label = _rule_label(rule, index)
        for atom in rule.head:
            entries = out.setdefault(atom.relation, [])
            if all(existing != label for existing, _ in entries):
                entries.append((label, rule))
    return out


def _longest_chain(
    roots: Sequence[str],
    derivers: dict[str, list[tuple[str, TGD]]],
) -> tuple[int, tuple[str, ...], bool]:
    """(depth, rule chain, cyclic) of the longest derivation path.

    Depth counts "is rewritten into" steps: a relation depends on the
    body relations of every rule deriving it.  On a cycle the depth is
    unbounded; the chain then names the rules traversed up to (and
    closing) the first cycle found, and ``cyclic`` is True.
    """
    memo: dict[str, tuple[int, tuple[str, ...]]] = {}
    in_progress: dict[str, str | None] = {}
    cycle_chain: list[str] = []

    def visit(relation: str) -> tuple[int, tuple[str, ...]] | None:
        if relation in in_progress:
            # Close the witness chain with the labels currently on the
            # recursion stack from the repeated relation onwards.
            stack = list(in_progress)
            for rel in stack[stack.index(relation):]:
                label = in_progress[rel]
                if label is not None and label not in cycle_chain:
                    cycle_chain.append(label)
            return None
        if relation in memo:
            return memo[relation]
        in_progress[relation] = None
        best = 0
        best_chain: tuple[str, ...] = ()
        for label, rule in derivers.get(relation, ()):
            in_progress[relation] = label
            for atom in rule.body:
                sub = visit(atom.relation)
                if sub is None:
                    in_progress.pop(relation, None)
                    return None
                depth, chain = sub
                if 1 + depth > best:
                    best = 1 + depth
                    best_chain = (label,) + chain
        in_progress.pop(relation, None)
        memo[relation] = (best, best_chain)
        return memo[relation]

    depth = 0
    chain: tuple[str, ...] = ()
    for root in sorted(set(roots)):
        result = visit(root)
        if result is None:
            return 0, tuple(cycle_chain), True
        if result[0] > depth:
            depth, chain = result
    return depth, chain, False


def _alternatives(
    relation: str,
    derivers: dict[str, list[tuple[str, TGD]]],
    memo: dict[str, int],
    in_progress: set[str],
) -> int:
    """Number of alternative rewritten forms of one atom over *relation*.

    ``A(r) = 1 + Σ_{rules deriving r} Π_{body atoms} A(rel)`` -- the
    size of the UCQ rewriting of the atomic query over ``r`` (each rule
    application replaces the atom with its body, whose atoms rewrite
    independently).  Cycles saturate at :data:`ESTIMATE_CAP`.
    """
    if relation in memo:
        return memo[relation]
    if relation in in_progress:
        return ESTIMATE_CAP
    in_progress.add(relation)
    total = 1
    for _, rule in derivers.get(relation, ()):
        contribution = 1
        for atom in rule.body:
            contribution = min(
                contribution
                * _alternatives(atom.relation, derivers, memo, in_progress),
                ESTIMATE_CAP,
            )
        total = min(total + contribution, ESTIMATE_CAP)
    in_progress.discard(relation)
    memo[relation] = total
    return total


def estimate_combination_bound(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
) -> int:
    """Per-atom combination estimate of the UCQ rewriting size.

    The round-based bound of :func:`estimate_disjunct_bound` tracks
    derivation *depth* and misses the cross-product blowup of wide
    conjunctions: ``n`` joined atoms with ``k`` derivers each explode
    to ``(k+1)^n`` disjuncts while every derivation chain has length 1.
    This estimate multiplies the per-atom alternative counts instead
    (summed over disjuncts), which is exact for factorizable queries --
    the family the nonrecursive-Datalog target collapses to
    ``n(k+1) + 1`` rules.  Deterministic in (query, rules), so the
    engine's ``target="auto"`` resolves identically in every process.
    """
    derivers = _derivers(tuple(rules))
    ucq = UnionOfConjunctiveQueries.of(query)
    memo: dict[str, int] = {}
    total = 0
    for cq in ucq:
        product = 1
        for atom in cq.body:
            product = min(
                product
                * _alternatives(atom.relation, derivers, memo, set()),
                ESTIMATE_CAP,
            )
        total = min(total + product, ESTIMATE_CAP)
    return total


def estimate_disjunct_bound(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    budget: RewritingBudget | None = None,
    default_depth: int = 10,
) -> BlowupEstimate:
    """Static upper-bound estimate of the rewriting's disjunct count.

    One rewriting round can rewrite each atom of a disjunct with any
    rule deriving its relation, multiplying the frontier by at most
    ``1 + Σ_α b(rel(α))``; the number of effective rounds is the
    longest derivation chain of the query's relations.  When that chain
    is cyclic, the budget's ``max_depth`` (or *default_depth*) is
    assumed instead.  For a UCQ the per-disjunct estimates add up and
    the reported chain is the worst disjunct's.
    """
    budget = budget or RewritingBudget.default()
    rules = tuple(rules)
    derivers = _derivers(rules)
    ucq = UnionOfConjunctiveQueries.of(query)

    total = 0
    worst: BlowupEstimate | None = None
    for cq in ucq:
        per_round = 1 + sum(
            len(derivers.get(atom.relation, ())) for atom in cq.body
        )
        depth, chain, cyclic = _longest_chain(
            [atom.relation for atom in cq.body], derivers
        )
        if cyclic:
            depth = (
                budget.max_depth
                if budget.max_depth is not None
                else default_depth
            )
        bound = 1
        for _ in range(depth):
            bound *= per_round
            if bound > ESTIMATE_CAP:
                bound = ESTIMATE_CAP
                break
        estimate = BlowupEstimate(
            bound=bound,
            per_round=per_round,
            depth=depth,
            cyclic=cyclic,
            chain=chain,
        )
        total = min(total + bound, ESTIMATE_CAP)
        if worst is None or estimate.bound > worst.bound:
            worst = estimate
    assert worst is not None  # a UCQ has at least one disjunct
    return BlowupEstimate(
        bound=total,
        per_round=worst.per_round,
        depth=worst.depth,
        cyclic=worst.cyclic,
        chain=worst.chain,
    )
