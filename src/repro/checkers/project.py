"""Project manifests: the unit ``repro check`` analyzes.

A *project* bundles the artifacts of one OBDA deployment -- ontology,
query workload, mapping assertions and source data -- so the checkers
can validate them *against each other* (a single-file lint cannot see
that a rule is dead for this workload, or that a mapping's target
disagrees with the ontology's arity).

On disk a project is a ``project.json`` manifest::

    {
      "ontology": "ontology.dlp",
      "queries": "queries.dlp",
      "mappings": "mappings.dlp",
      "data": "data.dlp"
    }

Paths are relative to the manifest; only ``ontology`` is required.  A
directory containing a ``project.json`` is accepted wherever a manifest
path is.  Member files use the DLGP-style syntax of
:mod:`repro.lang.parser` (mappings: ``source_body ~> target_atom``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.errors import ParseError, ReproError
from repro.lang.parser import _Parser, parse_database, parse_program
from repro.lang.queries import ConjunctiveQuery
from repro.lang.tgd import TGD
from repro.obda.mappings import MappingAssertion, parse_mappings

MANIFEST_NAME = "project.json"

_MANIFEST_KEYS = frozenset({"ontology", "queries", "mappings", "data"})


@dataclass(frozen=True)
class Project:
    """One OBDA project: the cross-artifact input of ``repro check``.

    Attributes:
        rules: the ontology (TGDs).
        queries: the query workload (possibly empty, possibly of mixed
            arities -- this is a *set of queries*, not a UCQ).
        mappings: GAV assertions, or None when the project states its
            data directly in the ontology vocabulary.
        data: the source database, or None when unknown.
        path: display path for reports.
        source_text: the ontology text (rule spans index into it).
    """

    rules: tuple[TGD, ...]
    queries: tuple[ConjunctiveQuery, ...]
    mappings: tuple[MappingAssertion, ...] | None = None
    data: Database | None = None
    path: str = "<project>"
    source_text: str | None = None


def parse_queries(text: str) -> tuple[ConjunctiveQuery, ...]:
    """Parse a workload file: CQs separated by periods/newlines.

    Unlike :func:`repro.lang.parser.parse_ucq`, the queries are kept
    separate and may have different arities -- a workload is a set of
    independent queries, not one union.
    """
    parser = _Parser(text)
    queries: list[ConjunctiveQuery] = []
    while not parser.at_end():
        queries.append(parser.query())
        parser.statement_separator()
    return tuple(queries)


def _resolve_manifest(path: Path) -> Path:
    if path.is_dir():
        path = path / MANIFEST_NAME
    if not path.is_file():
        raise ReproError(f"cannot read project manifest: {path}")
    return path


def _read_member(base: Path, relative: object, key: str) -> tuple[Path, str]:
    if not isinstance(relative, str):
        raise ReproError(
            f"project manifest key {key!r} must be a path string, "
            f"got {relative!r}"
        )
    member = base / relative
    try:
        return member, member.read_text()
    except OSError as error:
        raise ReproError(f"cannot read project {key} file: {error}") from None


def load_project(path: str | Path) -> Project:
    """Load a project from a manifest (or a directory containing one).

    Raises :class:`~repro.lang.errors.ReproError` on unreadable or
    malformed input (the CLI maps this to exit code 2), including parse
    errors in member files -- a project that does not parse has no
    cross-artifact structure to check.
    """
    manifest_path = _resolve_manifest(Path(path))
    try:
        manifest = json.loads(manifest_path.read_text())
    except OSError as error:
        raise ReproError(f"cannot read project manifest: {error}") from None
    except json.JSONDecodeError as error:
        raise ReproError(
            f"malformed project manifest {manifest_path}: {error}"
        ) from None
    if not isinstance(manifest, dict):
        raise ReproError(
            f"project manifest {manifest_path} must be a JSON object"
        )
    unknown = set(manifest) - _MANIFEST_KEYS
    if unknown:
        raise ReproError(
            f"unknown project manifest keys: {', '.join(sorted(unknown))} "
            f"(expected a subset of {', '.join(sorted(_MANIFEST_KEYS))})"
        )
    if "ontology" not in manifest:
        raise ReproError(
            f"project manifest {manifest_path} lacks the required "
            "'ontology' key"
        )

    base = manifest_path.parent

    def fail_parse(member: Path, error: ParseError) -> ReproError:
        return ReproError(f"{member}: {error}")

    member, ontology_text = _read_member(base, manifest["ontology"], "ontology")
    ontology_path = member
    try:
        rules = parse_program(ontology_text)
    except ParseError as error:
        raise fail_parse(member, error) from None

    queries: tuple[ConjunctiveQuery, ...] = ()
    if "queries" in manifest:
        member, text = _read_member(base, manifest["queries"], "queries")
        try:
            queries = parse_queries(text)
        except ParseError as error:
            raise fail_parse(member, error) from None

    mappings: tuple[MappingAssertion, ...] | None = None
    if "mappings" in manifest:
        member, text = _read_member(base, manifest["mappings"], "mappings")
        try:
            mappings = parse_mappings(text)
        except ParseError as error:
            raise fail_parse(member, error) from None

    data: Database | None = None
    if "data" in manifest:
        member, text = _read_member(base, manifest["data"], "data")
        try:
            facts: tuple[Atom, ...] = parse_database(text)
        except ParseError as error:
            raise fail_parse(member, error) from None
        data = Database(facts)

    # Reports display the ontology member: that is the file the rule
    # spans index into (the manifest itself carries no checked syntax).
    return Project(
        rules=rules,
        queries=queries,
        mappings=mappings,
        data=data,
        path=str(ontology_path),
        source_text=ontology_text,
    )
