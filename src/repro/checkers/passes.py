"""The cross-artifact analysis passes behind ``repro check``.

Where ``repro lint`` (RL0xx) validates one TGD program in isolation,
these passes (RL1xx) validate a whole :class:`~repro.checkers.project.
Project` -- ontology, query workload, mappings and source data --
*against each other*:

* **workload** (``RL100``/``RL101``/``RL107``): rules unreachable from
  any workload query via position-graph reachability (dead rules) and
  relations produced but never consumed;
* **coverage** (``RL102``-``RL104``, ``RL106``): relations with no
  mapping and no backing facts (statically-empty disjuncts), arity
  mismatches between mapping assertions and the ontology / source
  schema, mappings whose source relations do not exist;
* **estimate** (``RL105``): the static rewriting-size bound of
  :mod:`repro.checkers.estimator`, flagged when it exceeds the budget;
* **interaction** (``RL200``-``RL203``, :mod:`repro.analysis.passes`):
  whole-ruleset constraint interaction -- where the ontology sits in
  the chase-termination lattice and whether a non-terminating set
  separates into a chase-safe core plus a rewriting residual.

Diagnostics, reports, severities and renderers are shared with the
lint subsystem (:mod:`repro.lint`); the code catalogue lives in
``docs/lint.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.passes import (
    pass_inseparable,
    pass_lattice_admitted,
    pass_non_terminating,
    pass_separable_core,
)
from repro.checkers.estimator import estimate_disjunct_bound
from repro.checkers.project import Project
from repro.checkers.pruning import supported_relations
from repro.graphs.analysis import reachable
from repro.graphs.position_graph import build_position_graph
from repro.lang.atoms import Position
from repro.lang.errors import NotSupportedError
from repro.lang.spans import Span
from repro.lang.tgd import TGD
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.formats import render
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.relevance import relevant_rules


@dataclass
class CheckContext:
    """Shared (memoized) state of one ``repro check`` run."""

    project: Project
    budget: RewritingBudget = field(default_factory=RewritingBudget.default)
    default_depth: int = 10
    _reachable: frozenset[str] | None = field(default=None, repr=False)
    _supported: frozenset[str] | None = field(default=None, repr=False)

    def rule_label(self, rule: TGD, index: int) -> str:
        return rule.label or f"#{index}"

    def derivers(self) -> dict[str, list[str]]:
        """relation -> labels of the rules deriving it."""
        out: dict[str, list[str]] = {}
        for index, rule in enumerate(self.project.rules, start=1):
            label = self.rule_label(rule, index)
            for atom in rule.head:
                entries = out.setdefault(atom.relation, [])
                if label not in entries:
                    entries.append(label)
        return out

    def consumed_relations(self) -> frozenset[str]:
        """Relations read by rule bodies or workload queries."""
        out: set[str] = set()
        for rule in self.project.rules:
            out.update(atom.relation for atom in rule.body)
        for query in self.project.queries:
            out.update(atom.relation for atom in query.body)
        return frozenset(out)

    def queried_relations(self) -> frozenset[str]:
        return frozenset(
            atom.relation
            for query in self.project.queries
            for atom in query.body
        )

    def ontology_arities(self) -> dict[str, int]:
        """relation -> arity at first use in the ontology/workload."""
        out: dict[str, int] = {}
        for rule in self.project.rules:
            for atom in rule.body + rule.head:
                out.setdefault(atom.relation, atom.arity)
        for query in self.project.queries:
            for atom in query.body:
                out.setdefault(atom.relation, atom.arity)
        return out

    def reachable_relations(self) -> frozenset[str] | None:
        """Relations a rewriting of the workload can mention.

        Computed by forward reachability in the position graph
        ``AG(P)`` from the workload's (generic) query positions; on
        ontologies outside the position graph's fragment (multi-atom
        heads) it falls back to per-query backward-reachability
        filtering.  None when the project has no workload.
        """
        if not self.project.queries:
            return None
        if self._reachable is None:
            roots = self.queried_relations()
            try:
                pg = build_position_graph(self.project.rules)
            except NotSupportedError:
                relations = set(roots)
                for query in self.project.queries:
                    relations |= relevant_rules(
                        query, self.project.rules
                    ).reachable_relations
                self._reachable = frozenset(relations)
            else:
                nodes = reachable(
                    pg.graph, [Position(r) for r in sorted(roots)]
                )
                self._reachable = frozenset(
                    node.relation
                    for node in nodes
                    if isinstance(node, Position)
                ) | roots
        return self._reachable

    def supported(self) -> frozenset[str] | None:
        """Relations the virtual ABox can hold facts over, or None
        when the project declares neither mappings nor data."""
        if self.project.mappings is None and self.project.data is None:
            return None
        if self._supported is None:
            self._supported = supported_relations(
                self.project.mappings, self.project.data
            )
        return self._supported


CheckPass = Callable[[CheckContext], Iterator[Diagnostic]]


def _rule_span(rule: TGD) -> Span | None:
    return rule.span


# --------------------------------------------------------------------- #
# Workload passes (RL100, RL101, RL107)                                  #
# --------------------------------------------------------------------- #


def pass_no_workload(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL107: the project declares no queries; workload passes skip."""
    if ctx.project.queries:
        return
    yield Diagnostic(
        code="RL107",
        severity=Severity.INFO,
        message=(
            "project declares no query workload; dead-rule and "
            "blowup analysis are skipped"
        ),
        hint='add a "queries" entry to project.json',
    )


def pass_dead_rules(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL100: a rule unreachable from every workload query is dead.

    A rewriting step can only apply a rule whose head relation the
    (rewritten) query mentions; if no position reachable from the
    workload's query positions carries the head relation, the rule can
    never fire for this workload.
    """
    relations = ctx.reachable_relations()
    if relations is None:
        return
    for index, rule in enumerate(ctx.project.rules, start=1):
        head_relations = {atom.relation for atom in rule.head}
        if head_relations & relations:
            continue
        label = ctx.rule_label(rule, index)
        heads = ", ".join(sorted(head_relations))
        yield Diagnostic(
            code="RL100",
            severity=Severity.WARNING,
            message=(
                f"rule {label} is dead for this workload: head "
                f"relation(s) {heads} unreachable from any query"
            ),
            span=_rule_span(rule),
            rule=label,
            hint="drop the rule or add the query that needs it",
        )


def pass_unconsumed_relations(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL101: a relation produced by rules but consumed by nothing."""
    if not ctx.project.queries:
        return
    consumed = ctx.consumed_relations()
    seen: set[str] = set()
    for index, rule in enumerate(ctx.project.rules, start=1):
        label = ctx.rule_label(rule, index)
        for atom in rule.head:
            relation = atom.relation
            if relation in consumed or relation in seen:
                continue
            seen.add(relation)
            yield Diagnostic(
                code="RL101",
                severity=Severity.WARNING,
                message=(
                    f"relation {relation} is produced (by {label}) but "
                    "never consumed by any rule body or workload query"
                ),
                span=_rule_span(rule),
                rule=label,
                hint="dead derivation output; drop it or query it",
            )


# --------------------------------------------------------------------- #
# Coverage passes (RL102-RL104, RL106)                                   #
# --------------------------------------------------------------------- #


def pass_unmapped_relations(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL102: an underivable relation with no mapping and no facts.

    Atoms over such a relation can match nothing: the ABox cannot hold
    facts for it and no rule can rewrite it away.  Every rewritten
    disjunct mentioning it is statically empty.
    """
    supported = ctx.supported()
    if supported is None:
        return
    derivers = ctx.derivers()
    for relation in sorted(ctx.consumed_relations()):
        if relation in derivers or relation in supported:
            continue
        yield Diagnostic(
            code="RL102",
            severity=Severity.WARNING,
            message=(
                f"relation {relation} has no deriving rule, no mapping "
                "and no source facts; disjuncts mentioning it are "
                "statically empty"
            ),
            hint=f"add a mapping with target {relation} or load facts",
        )


def pass_mapping_arity(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL103: a mapping's arities disagree with the schemas around it.

    Checked on both sides of each assertion: the target atom against
    the ontology's use of the relation, and the source atoms against
    the source database's columns.
    """
    mappings = ctx.project.mappings
    if mappings is None:
        return
    arities = ctx.ontology_arities()
    data = ctx.project.data
    target_arity: dict[str, tuple[int, str]] = {}
    for mapping in mappings:
        target = mapping.target
        declared = arities.get(target.relation)
        if declared is not None and declared != target.arity:
            yield Diagnostic(
                code="RL103",
                severity=Severity.ERROR,
                message=(
                    f"mapping target {target} has arity {target.arity} "
                    f"but the ontology uses {target.relation}/{declared}"
                ),
                notes=(f"mapping: {mapping}",),
                hint="align the mapping target with the ontology arity",
            )
        previous = target_arity.setdefault(
            target.relation, (target.arity, str(mapping))
        )
        if previous[0] != target.arity:
            yield Diagnostic(
                code="RL103",
                severity=Severity.ERROR,
                message=(
                    f"mappings disagree on the arity of "
                    f"{target.relation}: {previous[0]} vs {target.arity}"
                ),
                notes=(f"first: {previous[1]}", f"then: {mapping}"),
            )
        if data is None:
            continue
        for atom in mapping.source_body:
            if atom.relation not in data.relations():
                continue  # RL104's finding
            declared_source = data.signature[atom.relation]
            if declared_source != atom.arity:
                yield Diagnostic(
                    code="RL103",
                    severity=Severity.ERROR,
                    message=(
                        f"mapping source atom {atom} has arity "
                        f"{atom.arity} but source relation "
                        f"{atom.relation} has {declared_source} columns"
                    ),
                    notes=(f"mapping: {mapping}",),
                )


def pass_mapping_sources(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL104: a mapping over a source relation that does not exist."""
    mappings = ctx.project.mappings
    data = ctx.project.data
    if mappings is None or data is None:
        return
    present = set(data.relations())
    for mapping in mappings:
        missing = sorted(
            {
                atom.relation
                for atom in mapping.source_body
                if atom.relation not in present
            }
        )
        if not missing:
            continue
        yield Diagnostic(
            code="RL104",
            severity=Severity.WARNING,
            message=(
                f"mapping for {mapping.target.relation} can never fire: "
                f"source relation(s) {', '.join(missing)} absent from "
                "the source database"
            ),
            notes=(f"mapping: {mapping}",),
            hint="fix the source relation name or load the table",
        )


def pass_statically_empty(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL106: derivable relations whose own atoms are statically empty.

    Unlike RL102 these relations *are* rewritten away by rules, so the
    query still has answers -- but every rewritten disjunct that keeps
    an atom over them evaluates to nothing.  They are exactly what
    ``Session(prune_empty=True)`` prunes.
    """
    supported = ctx.supported()
    if supported is None:
        return
    derivers = ctx.derivers()
    interesting = ctx.reachable_relations()
    candidates = (
        interesting
        if interesting is not None
        else ctx.consumed_relations() | frozenset(derivers)
    )
    for relation in sorted(candidates):
        if relation in supported or relation not in derivers:
            continue
        rules = ", ".join(derivers[relation])
        yield Diagnostic(
            code="RL106",
            severity=Severity.INFO,
            message=(
                f"relation {relation} has no mapping and no source "
                "facts; rewritten disjuncts keeping an atom over it "
                "are statically empty (prunable)"
            ),
            notes=(f"derived by: {rules}",),
            hint="Session(prune_empty=True) drops such disjuncts",
        )


# --------------------------------------------------------------------- #
# Estimate pass (RL105)                                                  #
# --------------------------------------------------------------------- #


def pass_rewriting_blowup(ctx: CheckContext) -> Iterator[Diagnostic]:
    """RL105: the static disjunct bound exceeds the rewriting budget."""
    for query in ctx.project.queries:
        estimate = estimate_disjunct_bound(
            query,
            ctx.project.rules,
            budget=ctx.budget,
            default_depth=ctx.default_depth,
        )
        if estimate.bound <= ctx.budget.max_cqs:
            continue
        chain = " -> ".join(estimate.chain) if estimate.chain else "(none)"
        depth_kind = "assumed" if estimate.cyclic else "derivation"
        yield Diagnostic(
            code="RL105",
            severity=Severity.WARNING,
            message=(
                f"rewriting of query {query.name} may blow up: "
                f"estimated {estimate.render_bound()} disjuncts "
                f"exceeds the budget of {ctx.budget.max_cqs}"
            ),
            rule=f"query {query.name}",
            notes=(
                f"per-round fan-out: x{estimate.per_round}, "
                f"{depth_kind} depth: {estimate.depth}",
                f"offending rule chain: {chain}",
                "datalog target available: target='datalog' (or "
                "'auto') compiles to a nonrecursive rule program "
                "whose size grows per atom, not per disjunct "
                "combination",
            ),
            hint=(
                "restructure the chain, shrink the workload query, "
                "switch the rewriting target to 'datalog'/'auto', or "
                "raise the budget"
            ),
        )


# --------------------------------------------------------------------- #
# Registry and drivers                                                   #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CheckSpec:
    """One registered check pass: its primary code, stage and callable."""

    code: str
    name: str
    stage: str  # "workload" | "coverage" | "estimate" | "interaction"
    run: CheckPass


#: Every check pass, in pipeline order.  Codes are stable public API.
CHECK_REGISTRY: tuple[CheckSpec, ...] = (
    CheckSpec("RL100", "dead-rule", "workload", pass_dead_rules),
    CheckSpec("RL101", "unconsumed-relation", "workload", pass_unconsumed_relations),
    CheckSpec("RL102", "unmapped-relation", "coverage", pass_unmapped_relations),
    CheckSpec("RL103", "mapping-arity-mismatch", "coverage", pass_mapping_arity),
    CheckSpec("RL104", "mapping-source-missing", "coverage", pass_mapping_sources),
    CheckSpec("RL105", "rewriting-blowup", "estimate", pass_rewriting_blowup),
    CheckSpec("RL106", "statically-empty-relation", "coverage", pass_statically_empty),
    CheckSpec("RL107", "no-workload", "workload", pass_no_workload),
    CheckSpec("RL200", "lattice-admitted-termination", "interaction", pass_lattice_admitted),
    CheckSpec("RL201", "chase-non-terminating", "interaction", pass_non_terminating),
    CheckSpec("RL202", "separable-core", "interaction", pass_separable_core),
    CheckSpec("RL203", "inseparable-interaction", "interaction", pass_inseparable),
)


def all_check_codes() -> tuple[str, ...]:
    """Every diagnostic code ``repro check`` can emit, sorted."""
    return tuple(sorted(spec.code for spec in CHECK_REGISTRY))


def check_code_names() -> dict[str, str]:
    """code -> short kebab-case name, for SARIF rule metadata."""
    return dict(
        sorted((spec.code, spec.name) for spec in CHECK_REGISTRY)
    )


@dataclass(frozen=True)
class CheckConfig:
    """Knobs of one check run.

    Attributes:
        budget: the rewriting budget RL105 estimates against.
        default_depth: assumed rounds for RL105 on cyclic programs.
        stages: which pass stages run.
        disabled: diagnostic codes to suppress.
    """

    budget: RewritingBudget = field(default_factory=RewritingBudget.default)
    default_depth: int = 10
    stages: tuple[str, ...] = (
        "workload",
        "coverage",
        "estimate",
        "interaction",
    )
    disabled: frozenset[str] = frozenset()


def check_project(
    project: Project, config: CheckConfig | None = None
) -> LintReport:
    """Run every registered check pass over *project*."""
    config = config or CheckConfig()
    ctx = CheckContext(
        project=project,
        budget=config.budget,
        default_depth=config.default_depth,
    )
    diagnostics: list[Diagnostic] = []
    for spec in CHECK_REGISTRY:
        if spec.stage not in config.stages:
            continue
        diagnostics.extend(
            d for d in spec.run(ctx) if d.code not in config.disabled
        )
    return LintReport.of(
        diagnostics, path=project.path, source=project.source_text
    )


def render_check(report: LintReport, fmt: str) -> str:
    """Render a check report (text/json/sarif) with the RL1xx catalogue."""
    return render(
        report, fmt, names=check_code_names(), tool="repro-check"
    )
