"""Atoms and positions.

An atom is an expression ``r(t1, ..., tk)`` where ``r`` is a relation
symbol of arity ``k`` and each ``ti`` is a term (Section 3 of the
paper).  A *position* (Definition 2) is either ``r[i]`` -- the *i*-th
argument place of relation ``r`` -- or the "generic" position ``r[ ]``
denoting the relation as a whole; positions are the nodes of the
position graph.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.lang.spans import Span
from repro.lang.terms import (
    Constant,
    Null,
    Term,
    Variable,
    is_ground,
    term_sort_key,
)


class Atom:
    """An atom ``relation(terms...)``; immutable and hashable.

    Positions inside an atom are numbered from 1, following the paper's
    convention (``α[i]`` is the term at position ``i``).

    The optional *span* records where the atom was parsed from; it is
    provenance only and does not participate in equality or hashing
    (two occurrences of ``r(X)`` at different source locations are the
    same atom).
    """

    __slots__ = ("relation", "terms", "span", "_hash")

    def __init__(
        self,
        relation: str,
        terms: Sequence[Term],
        span: Span | None = None,
    ):
        if not relation:
            raise ValueError("relation symbol must be non-empty")
        self.relation = relation
        self.terms = tuple(terms)
        self.span = span
        self._hash = hash((self.relation, self.terms))

    @property
    def arity(self) -> int:
        """Number of argument places of this atom's relation symbol."""
        return len(self.terms)

    def __getitem__(self, i: int) -> Term:
        """Return the term at 1-based position *i* (paper convention)."""
        if not 1 <= i <= len(self.terms):
            raise IndexError(f"position {i} out of range for {self}")
        return self.terms[i - 1]

    def variables(self) -> tuple[Variable, ...]:
        """All variables, in order of first occurrence, without repeats."""
        seen: dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable):
                seen.setdefault(term)
        return tuple(seen)

    def constants(self) -> tuple[Constant, ...]:
        """All constants, in order of first occurrence, without repeats."""
        seen: dict[Constant, None] = {}
        for term in self.terms:
            if isinstance(term, Constant):
                seen.setdefault(term)
        return tuple(seen)

    def nulls(self) -> tuple[Null, ...]:
        """All labeled nulls, in order of first occurrence."""
        seen: dict[Null, None] = {}
        for term in self.terms:
            if isinstance(term, Null):
                seen.setdefault(term)
        return tuple(seen)

    def positions_of(self, term: Term) -> tuple[int, ...]:
        """All 1-based positions at which *term* occurs in this atom.

        With repeated variables an atom may contain the same term more
        than once; the paper's ``Pos(x, β)`` is single-valued only for
        *simple* TGDs, so the library exposes the full tuple.
        """
        return tuple(i for i, t in enumerate(self.terms, start=1) if t == term)

    def has_repeated_variable(self) -> bool:
        """True iff some variable occurs at two positions of this atom.

        Simple TGDs (Section 5) forbid this.
        """
        seen: set[Variable] = set()
        for term in self.terms:
            if isinstance(term, Variable):
                if term in seen:
                    return True
                seen.add(term)
        return False

    def is_ground(self) -> bool:
        """True iff the atom contains no variables (it is a *fact*)."""
        return all(is_ground(t) for t in self.terms)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self._hash == other._hash
            and self.relation == other.relation
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Atom") -> bool:
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """Deterministic sorting key (relation, then term keys)."""
        return (self.relation, tuple(term_sort_key(t) for t in self.terms))

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {list(self.terms)!r})"

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({args})"


class Position:
    """A position ``r[i]`` or the generic position ``r[ ]`` (Definition 2).

    ``index is None`` encodes the generic form ``r[ ]``.
    """

    __slots__ = ("relation", "index", "_hash")

    def __init__(self, relation: str, index: int | None = None):
        if not relation:
            raise ValueError("relation symbol must be non-empty")
        if index is not None and index < 1:
            raise ValueError(f"position index must be >= 1, got {index}")
        self.relation = relation
        self.index = index
        self._hash = hash(("Position", relation, index))

    @property
    def is_generic(self) -> bool:
        """True for the ``r[ ]`` form, False for ``r[i]``."""
        return self.index is None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Position)
            and self.relation == other.relation
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Position") -> bool:
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        return (self.relation, -1 if self.index is None else self.index)

    def __repr__(self) -> str:
        return f"Position({self.relation!r}, {self.index!r})"

    def __str__(self) -> str:
        if self.index is None:
            return f"{self.relation}[ ]"
        return f"{self.relation}[{self.index}]"
