"""Substitutions: finite mappings from variables to terms.

A substitution is applied simultaneously (not iterated to fixpoint); use
:meth:`Substitution.compose` to chain substitutions.  Substitutions are
immutable so they can be shared safely across rewriting branches.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.lang.atoms import Atom
from repro.lang.terms import Term, Variable


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping ``{variable -> term}``.

    Identity bindings (``x -> x``) are dropped at construction, so the
    empty substitution is the unique identity element of composition.
    """

    __slots__ = ("_map", "_hash")

    def __init__(self, mapping: Mapping[Variable, Term] | Iterable[tuple[Variable, Term]] = ()):
        items = dict(mapping)
        for var in items:
            if not isinstance(var, Variable):
                raise TypeError(f"substitution domain must be variables, got {var!r}")
        self._map: dict[Variable, Term] = {
            var: term for var, term in items.items() if var != term
        }
        self._hash: int | None = None

    @classmethod
    def identity(cls) -> "Substitution":
        """The empty (identity) substitution."""
        return _IDENTITY

    def __getitem__(self, var: Variable) -> Term:
        return self._map[var]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and self._map == other._map

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._map.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {t}" for v, t in sorted(
            self._map.items(), key=lambda item: item[0].name))
        return f"{{{inner}}}"

    def apply_term(self, term: Term) -> Term:
        """Image of a single term (non-variables map to themselves)."""
        if isinstance(term, Variable):
            return self._map.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """Image of an atom under this substitution."""
        return Atom(atom.relation, [self.apply_term(t) for t in atom.terms])

    def apply_atoms(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        """Image of a sequence of atoms, preserving order."""
        return tuple(self.apply_atom(a) for a in atoms)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``other ∘ self``: apply *self* first, then *other*.

        ``(self.compose(other)).apply_term(t) ==
        other.apply_term(self.apply_term(t))`` for every term ``t``.
        """
        combined: dict[Variable, Term] = {
            var: other.apply_term(term) for var, term in self._map.items()
        }
        for var, term in other._map.items():
            combined.setdefault(var, term)
        return Substitution(combined)

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Return a copy with the extra binding ``var -> term``.

        Existing bindings of *var* are overwritten; prefer
        :meth:`compose` when triangularity must be preserved.
        """
        updated = dict(self._map)
        updated[var] = term
        return Substitution(updated)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Return the restriction of this substitution to *variables*."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v in keep})

    def is_renaming(self) -> bool:
        """True iff this substitution is an injective variable renaming."""
        images = list(self._map.values())
        if not all(isinstance(t, Variable) for t in images):
            return False
        return len(set(images)) == len(images)


_IDENTITY = Substitution()


def rename_apart(
    variables: Iterable[Variable], taken: Iterable[Variable], prefix: str = "R"
) -> Substitution:
    """Build a renaming of *variables* avoiding every name in *taken*.

    Used to standardize a rule apart from a query before unification.
    The renaming is deterministic given its inputs: each clashing
    variable ``x`` becomes ``x~1``, ``x~2``, ... choosing the first
    suffix free in *taken* (the ``~`` character cannot appear in parsed
    identifiers, so renamed variables never collide with user input).
    """
    taken_names = {v.name for v in taken}
    mapping: dict[Variable, Term] = {}
    for var in variables:
        if var.name not in taken_names:
            continue
        suffix = 1
        while f"{var.name}~{suffix}" in taken_names:
            suffix += 1
        fresh_name = f"{var.name}~{suffix}"
        taken_names.add(fresh_name)
        mapping[var] = Variable(fresh_name)
    return Substitution(mapping)
