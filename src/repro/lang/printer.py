"""Pretty-printing helpers shared across the library.

``str()`` on the language objects already produces the concrete syntax
accepted by :mod:`repro.lang.parser`; this module adds multi-object
layouts (programs, rewritings, classification reports) used by the
examples and benchmark harnesses.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.tgd import TGD


def format_program(rules: Iterable[TGD]) -> str:
    """Render a TGD set one rule per line, with trailing periods."""
    return "\n".join(f"{rule}." for rule in rules)


def format_ucq(ucq: UnionOfConjunctiveQueries | Sequence[ConjunctiveQuery]) -> str:
    """Render a UCQ one disjunct per line."""
    disjuncts = list(ucq)
    return "\n".join(f"{cq}." for cq in disjuncts)


def format_answers(rows: Iterable[tuple]) -> str:
    """Render answer tuples one per line, deterministically sorted."""
    rendered = sorted(
        "(" + ", ".join(str(v) for v in row) + ")" for row in rows
    )
    return "\n".join(rendered)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a fixed-width text table (used by the bench harnesses)."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for cell, column in zip(row, columns):
            column.append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_mapping(mapping: Mapping[object, object], indent: str = "  ") -> str:
    """Render a mapping one ``key: value`` pair per line, sorted by key."""
    return "\n".join(
        f"{indent}{key}: {value}"
        for key, value in sorted(mapping.items(), key=lambda kv: str(kv[0]))
    )
