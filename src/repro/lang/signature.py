"""Relational signatures: relation symbols with fixed arities.

A signature records the arity of every relation symbol in use and
rejects inconsistent reuse (``SignatureError``).  Most library entry
points build signatures implicitly from the rules, queries and facts
they receive; the class is public so applications can validate inputs
eagerly and enumerate their schema.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.lang.atoms import Atom
from repro.lang.errors import SignatureError
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.tgd import TGD


class Signature(Mapping[str, int]):
    """A mapping ``relation symbol -> arity`` with consistency checks."""

    __slots__ = ("_arities",)

    def __init__(self, arities: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        self._arities: dict[str, int] = {}
        for relation, arity in dict(arities).items():
            self.declare(relation, arity)

    def declare(self, relation: str, arity: int) -> None:
        """Register *relation* with *arity*; reject inconsistent reuse."""
        if arity < 0:
            raise SignatureError(f"negative arity for {relation}: {arity}")
        known = self._arities.get(relation)
        if known is not None and known != arity:
            raise SignatureError(
                f"relation {relation} used with arity {arity} but declared {known}"
            )
        self._arities[relation] = arity

    def observe_atom(self, atom: Atom) -> None:
        """Declare the relation of *atom* from its argument count."""
        self.declare(atom.relation, atom.arity)

    def observe_tgd(self, rule: TGD) -> None:
        """Declare every relation occurring in *rule*."""
        for atom in rule.body + rule.head:
            self.observe_atom(atom)

    def observe_query(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> None:
        """Declare every relation occurring in *query*."""
        for cq in UnionOfConjunctiveQueries.of(query):
            for atom in cq.body:
                self.observe_atom(atom)

    @classmethod
    def from_rules(cls, rules: Iterable[TGD]) -> "Signature":
        """Signature of every relation mentioned in *rules*."""
        sig = cls()
        for rule in rules:
            sig.observe_tgd(rule)
        return sig

    def max_arity(self) -> int:
        """The largest declared arity (0 for an empty signature).

        Definition 6 uses this as the size ``k`` of the canonical
        variable pool ``XP = {z, x1, ..., xk}``.
        """
        return max(self._arities.values(), default=0)

    def relations(self) -> tuple[str, ...]:
        """All declared relation symbols, sorted."""
        return tuple(sorted(self._arities))

    def __getitem__(self, relation: str) -> int:
        return self._arities[relation]

    def __iter__(self) -> Iterator[str]:
        return iter(self._arities)

    def __len__(self) -> int:
        return len(self._arities)

    def __repr__(self) -> str:
        inner = ", ".join(f"{r}/{a}" for r, a in sorted(self._arities.items()))
        return f"Signature({{{inner}}})"
