"""Most-general unifiers for terms and atoms.

Unification here is first-order unification without function symbols,
so the occurs check is unnecessary: terms are variables, constants or
nulls, never compound.  Constants unify only with themselves (Unique
Name Assumption) and with variables; nulls likewise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lang.atoms import Atom
from repro.lang.substitution import Substitution
from repro.lang.terms import Term, Variable


def mgu(pairs: Iterable[tuple[Term, Term]]) -> Substitution | None:
    """Most general unifier of a set of term pairs, or None.

    Implemented as the standard Martelli–Montanari loop specialised to
    flat terms: maintain a triangular binding map and resolve each pair
    under the bindings accumulated so far.
    """
    bindings: dict[Variable, Term] = {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    for left, right in pairs:
        left = resolve(left)
        right = resolve(right)
        if left == right:
            continue
        if isinstance(left, Variable):
            bindings[left] = right
        elif isinstance(right, Variable):
            bindings[right] = left
        else:
            return None  # two distinct ground terms (UNA)

    # Flatten the triangular map into an idempotent substitution.
    flat = {var: resolve(var) for var in bindings}
    return Substitution(flat)


def mgu_atoms(first: Atom, second: Atom) -> Substitution | None:
    """Most general unifier of two atoms, or None.

    Atoms unify only when they share relation symbol and arity.
    """
    if first.relation != second.relation or first.arity != second.arity:
        return None
    return mgu(zip(first.terms, second.terms))


def mgu_atom_sets(pairs: Sequence[tuple[Atom, Atom]]) -> Substitution | None:
    """Simultaneous MGU of several atom pairs, or None.

    Used by piece unification, where a set of query atoms must unify
    with a set of head atoms under one substitution.
    """
    term_pairs: list[tuple[Term, Term]] = []
    for first, second in pairs:
        if first.relation != second.relation or first.arity != second.arity:
            return None
        term_pairs.extend(zip(first.terms, second.terms))
    return mgu(term_pairs)


def unifiable(first: Atom, second: Atom) -> bool:
    """True iff the two atoms have a unifier."""
    return mgu_atoms(first, second) is not None
