"""Tuple-generating dependencies (TGDs, a.k.a. existential rules).

A TGD (Section 3) is an expression ``β1, ..., βn -> α1, ..., αm`` with

* *distinguished variables*: occur in both body and head (elsewhere in
  the literature called the *frontier*);
* *existential body variables*: occur only in the body;
* *existential head variables*: occur only in the head (the
  "value-invention" variables, implicitly ∃-quantified).

A TGD is *simple* (Section 5) when (i) no atom contains a repeated
variable, (ii) no atom contains a constant, and (iii) the head is a
single atom.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError
from repro.lang.spans import Span
from repro.lang.substitution import Substitution, rename_apart
from repro.lang.terms import Constant, Variable


class TGD:
    """An immutable tuple-generating dependency.

    The optional *label* names the rule in printouts (``R1``, ``R2``,
    ...); it does not affect equality, which is structural over
    body and head treated as ordered tuples.  The optional *span*
    records where the rule was parsed from (provenance only, likewise
    ignored by equality and hashing).
    """

    __slots__ = (
        "body",
        "head",
        "label",
        "span",
        "_hash",
        "_body_vars",
        "_head_vars",
        "_distinguished",
    )

    def __init__(
        self,
        body: Sequence[Atom],
        head: Sequence[Atom],
        label: str | None = None,
        span: Span | None = None,
    ):
        if not body:
            raise SafetyError("a TGD must have a non-empty body")
        if not head:
            raise SafetyError("a TGD must have a non-empty head")
        self.body = tuple(body)
        self.head = tuple(head)
        self.label = label
        self.span = span
        self._hash = hash((self.body, self.head))
        self._body_vars = _ordered_variables(self.body)
        self._head_vars = _ordered_variables(self.head)
        body_set = set(self._body_vars)
        self._distinguished = tuple(
            v for v in self._head_vars if v in body_set
        )

    # ----------------------------------------------------------------- #
    # Variable classification (Section 3)                                #
    # ----------------------------------------------------------------- #

    def variables(self) -> tuple[Variable, ...]:
        """All variables of the rule, body first, in occurrence order."""
        seen: dict[Variable, None] = {}
        for var in self._body_vars + self._head_vars:
            seen.setdefault(var)
        return tuple(seen)

    def body_variables(self) -> tuple[Variable, ...]:
        """Variables occurring in the body, in occurrence order."""
        return self._body_vars

    def head_variables(self) -> tuple[Variable, ...]:
        """Variables occurring in the head, in occurrence order."""
        return self._head_vars

    def distinguished_variables(self) -> tuple[Variable, ...]:
        """Variables occurring in both head and body (the frontier)."""
        return self._distinguished

    def existential_body_variables(self) -> tuple[Variable, ...]:
        """Variables occurring only in the body."""
        head = set(self._head_vars)
        return tuple(v for v in self._body_vars if v not in head)

    def existential_head_variables(self) -> tuple[Variable, ...]:
        """Variables occurring only in the head (value invention)."""
        body = set(self._body_vars)
        return tuple(v for v in self._head_vars if v not in body)

    def constants(self) -> tuple[Constant, ...]:
        """All constants of the rule, in occurrence order."""
        seen: dict[Constant, None] = {}
        for atom in self.body + self.head:
            for const in atom.constants():
                seen.setdefault(const)
        return tuple(seen)

    # ----------------------------------------------------------------- #
    # Shape predicates                                                   #
    # ----------------------------------------------------------------- #

    def is_simple(self) -> bool:
        """True iff the rule is *simple* in the sense of Section 5."""
        return not self.simplicity_violations()

    def simplicity_violations(self) -> tuple[str, ...]:
        """Human-readable reasons why the rule is not simple (if any)."""
        return tuple(
            reason for reason, _atom in self.simplicity_violation_atoms()
        )

    def simplicity_violation_atoms(
        self,
    ) -> tuple[tuple[str, Atom | None], ...]:
        """Simplicity violations paired with the offending atom.

        Each entry is ``(reason, atom)``; the multi-atom-head violation
        carries ``None`` since it concerns the rule as a whole.  The
        atom gives diagnostics a precise source span when the rule was
        parsed from text.
        """
        reasons: list[tuple[str, Atom | None]] = []
        for atom in self.body + self.head:
            if atom.has_repeated_variable():
                reasons.append((f"repeated variable in atom {atom}", atom))
            if atom.constants():
                reasons.append((f"constant in atom {atom}", atom))
        if len(self.head) > 1:
            reasons.append(
                (f"head has {len(self.head)} atoms (must be 1)", None)
            )
        return tuple(reasons)

    def single_head(self) -> Atom:
        """The unique head atom; raises if the head has several atoms."""
        if len(self.head) != 1:
            raise SafetyError(
                f"rule {self.label or self} has a multi-atom head"
            )
        return self.head[0]

    def is_datalog(self) -> bool:
        """True iff the rule has no existential head variables."""
        return not self.existential_head_variables()

    def is_full(self) -> bool:
        """Synonym of :meth:`is_datalog` (a *full* dependency)."""
        return self.is_datalog()

    # ----------------------------------------------------------------- #
    # Renaming                                                           #
    # ----------------------------------------------------------------- #

    def rename_apart(self, taken: Iterable[Variable]) -> "TGD":
        """A variant of this rule sharing no variable name with *taken*."""
        renaming = rename_apart(self.variables(), taken)
        if not renaming:
            return self
        return self.apply(renaming)

    def apply(self, substitution: Substitution) -> "TGD":
        """Apply a substitution to both body and head."""
        return TGD(
            substitution.apply_atoms(self.body),
            substitution.apply_atoms(self.head),
            label=self.label,
            span=self.span,
        )

    # ----------------------------------------------------------------- #
    # Dunder plumbing                                                    #
    # ----------------------------------------------------------------- #

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TGD)
            and self._hash == other._hash
            and self.body == other.body
            and self.head == other.head
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"TGD({list(self.body)!r}, {list(self.head)!r}, label={self.label!r})"

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head = ", ".join(str(a) for a in self.head)
        rule = f"{body} -> {head}"
        if self.label:
            return f"{self.label}: {rule}"
        return rule


def _ordered_variables(atoms: Sequence[Atom]) -> tuple[Variable, ...]:
    seen: dict[Variable, None] = {}
    for atom in atoms:
        for var in atom.variables():
            seen.setdefault(var)
    return tuple(seen)


def normalize_to_single_head(rules: Sequence[TGD]) -> tuple[TGD, ...]:
    """Split multi-atom heads into single-head rules when harmless.

    A head ``α1, ..., αm`` can be split into ``m`` single-head rules
    only when no existential head variable is shared between two head
    atoms (otherwise splitting loses the join on the invented value).
    Rules whose head atoms share an existential variable are returned
    unchanged; callers that require single heads should check
    :meth:`TGD.single_head` afterwards.
    """
    out: list[TGD] = []
    for rule in rules:
        if len(rule.head) == 1:
            out.append(rule)
            continue
        existential = set(rule.existential_head_variables())
        shared = False
        seen: set[Variable] = set()
        for atom in rule.head:
            here = {v for v in atom.variables() if v in existential}
            if here & seen:
                shared = True
                break
            seen |= here
        if shared:
            out.append(rule)
            continue
        for i, atom in enumerate(rule.head, start=1):
            label = f"{rule.label}.{i}" if rule.label else None
            out.append(TGD(rule.body, [atom], label=label))
    return tuple(out)
