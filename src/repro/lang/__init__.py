"""Logical language: terms, atoms, TGDs, conjunctive queries and parsing.

This package implements the vocabulary of Section 3 of the paper
("Preliminaries"): constants, variables, atoms, tuple-generating
dependencies (TGDs, a.k.a. existential rules), conjunctive queries (CQs)
and unions of conjunctive queries (UCQs), together with substitutions,
most-general unifiers, a textual Datalog±-style syntax, and
pretty-printing.
"""

from repro.lang.atoms import Atom, Position
from repro.lang.errors import (
    ParseError,
    ReproError,
    SafetyError,
    SignatureError,
)
from repro.lang.parser import (
    parse_atom,
    parse_database,
    parse_program,
    parse_query,
    parse_tgd,
    parse_ucq,
)
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.signature import Signature
from repro.lang.spans import Span, offset_to_line_col
from repro.lang.substitution import Substitution
from repro.lang.terms import Constant, Null, Term, Variable, fresh_variable
from repro.lang.tgd import TGD
from repro.lang.unify import mgu, mgu_atoms, unifiable

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "Null",
    "ParseError",
    "Position",
    "ReproError",
    "SafetyError",
    "Signature",
    "SignatureError",
    "Span",
    "Substitution",
    "TGD",
    "Term",
    "UnionOfConjunctiveQueries",
    "Variable",
    "fresh_variable",
    "mgu",
    "mgu_atoms",
    "offset_to_line_col",
    "parse_atom",
    "parse_database",
    "parse_program",
    "parse_query",
    "parse_tgd",
    "parse_ucq",
    "unifiable",
]
