"""Source spans: line/column provenance for parsed syntax objects.

A :class:`Span` records where a syntactic object (atom, rule, query)
came from in its source text: 1-based start/end line and column plus
the raw character offsets.  Spans are attached by the parser and carried
-- but ignored for equality and hashing -- by :class:`~repro.lang.atoms.Atom`,
:class:`~repro.lang.tgd.TGD` and
:class:`~repro.lang.queries.ConjunctiveQuery`, so the static-analysis
layer (:mod:`repro.lint`) can point diagnostics at the offending
source text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """A half-open source region ``[start, end)`` with line/column info.

    Attributes:
        start: 0-based character offset of the first character.
        end: 0-based character offset one past the last character.
        line: 1-based line of the first character.
        column: 1-based column of the first character.
        end_line: 1-based line of the last character.
        end_column: 1-based column one past the last character.
    """

    start: int
    end: int
    line: int
    column: int
    end_line: int
    end_column: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span offsets [{self.start}, {self.end})")
        if self.line < 1 or self.column < 1:
            raise ValueError(f"span line/column must be 1-based: {self}")

    @classmethod
    def from_offsets(cls, text: str, start: int, end: int) -> "Span":
        """Build a span from character offsets into *text*."""
        line, column = offset_to_line_col(text, start)
        end_line, end_column = offset_to_line_col(text, end)
        return cls(
            start=start,
            end=end,
            line=line,
            column=column,
            end_line=end_line,
            end_column=end_column,
        )

    def merge(self, other: "Span") -> "Span":
        """The smallest span covering both *self* and *other*."""
        first = self if self.start <= other.start else other
        last = self if self.end >= other.end else other
        return Span(
            start=first.start,
            end=last.end,
            line=first.line,
            column=first.column,
            end_line=last.end_line,
            end_column=last.end_column,
        )

    def snippet(self, text: str) -> str:
        """The spanned source text."""
        return text[self.start:self.end]

    def __str__(self) -> str:
        if self.line == self.end_line:
            return f"{self.line}:{self.column}-{self.end_column}"
        return f"{self.line}:{self.column}-{self.end_line}:{self.end_column}"


def offset_to_line_col(text: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of a character *offset* into *text*."""
    offset = max(0, min(offset, len(text)))
    line = text.count("\n", 0, offset) + 1
    last_newline = text.rfind("\n", 0, offset)
    column = offset - last_newline
    return line, column
