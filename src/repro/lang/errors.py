"""Exception hierarchy for the repro library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when the textual Datalog±-style syntax cannot be parsed.

    Carries the offending text and, when available, the position at
    which parsing failed, so error messages can point at the problem.
    """

    def __init__(self, message: str, text: str | None = None, pos: int | None = None):
        self.text = text
        self.pos = pos
        if text is not None and pos is not None:
            snippet = text[max(0, pos - 20):pos + 20]
            message = f"{message} (at offset {pos}: ...{snippet!r}...)"
        super().__init__(message)


class SignatureError(ReproError):
    """Raised when a relation symbol is used with inconsistent arity."""


class SafetyError(ReproError):
    """Raised when a rule or query violates a safety condition.

    Examples: a TGD with an empty body or head, a CQ whose distinguished
    variable does not occur in its body (Section 3 requires every
    distinguished variable to occur at least once in the body).
    """


class RewritingBudgetExceeded(ReproError):
    """Raised when the UCQ rewriting engine exhausts its budget.

    FO-rewritability of an arbitrary TGD set is undecidable, so the
    rewriter accepts explicit budgets (maximum resolution depth and
    maximum number of generated CQs).  Exceeding a budget does *not*
    mean the input is not FO-rewritable -- only that this run could not
    confirm it within the allotted resources.
    """

    def __init__(self, message: str, partial_cqs: int = 0, depth_reached: int = 0):
        self.partial_cqs = partial_cqs
        self.depth_reached = depth_reached
        super().__init__(message)


class ChaseBudgetExceeded(ReproError):
    """Raised when the chase engine exceeds its step budget.

    The chase of a TGD set need not terminate; engines therefore take a
    maximum number of applications and raise this error when it runs
    out before reaching a fixpoint.
    """


class NotSupportedError(ReproError):
    """Raised when an operation is asked of an input outside its scope.

    For example, requesting the position graph of TGDs with multi-atom
    heads (the position graph is defined for single-head TGDs only).
    """
