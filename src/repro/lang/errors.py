"""Exception hierarchy for the repro library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.  Errors that can point at
a region of source text carry an optional
:class:`~repro.lang.spans.Span` in their ``span`` attribute, which the
diagnostics layer (:mod:`repro.lint`) uses to annotate findings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.lang.spans import Span


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    The optional *span* locates the error in its source text when the
    raiser knows it; it defaults to None and is ignored by ``str()``.
    """

    span: "Span | None"

    def __init__(self, *args: object, span: "Span | None" = None):
        self.span = span
        super().__init__(*args)


class ParseError(ReproError):
    """Raised when the textual Datalog±-style syntax cannot be parsed.

    Carries the offending text and, when available, the position at
    which parsing failed, so error messages can point at the problem;
    ``span`` is derived from them (a one-character span at *pos*).
    """

    def __init__(self, message: str, text: str | None = None, pos: int | None = None):
        self.text = text
        self.pos = pos
        span = None
        if text is not None and pos is not None:
            from repro.lang.spans import Span

            span = Span.from_offsets(text, pos, min(pos + 1, len(text)))
            snippet = text[max(0, pos - 20):pos + 20]
            message = (
                f"{message} (line {span.line}, column {span.column}, "
                f"at offset {pos}: ...{snippet!r}...)"
            )
        super().__init__(message, span=span)


class SignatureError(ReproError):
    """Raised when a relation symbol is used with inconsistent arity."""


class SafetyError(ReproError):
    """Raised when a rule or query violates a safety condition.

    Examples: a TGD with an empty body or head, a CQ whose distinguished
    variable does not occur in its body (Section 3 requires every
    distinguished variable to occur at least once in the body).
    """


class RewritingBudgetExceeded(ReproError):
    """Raised when the UCQ rewriting engine exhausts its budget.

    FO-rewritability of an arbitrary TGD set is undecidable, so the
    rewriter accepts explicit budgets (maximum resolution depth and
    maximum number of generated CQs).  Exceeding a budget does *not*
    mean the input is not FO-rewritable -- only that this run could not
    confirm it within the allotted resources.
    """

    def __init__(self, message: str, partial_cqs: int = 0, depth_reached: int = 0):
        self.partial_cqs = partial_cqs
        self.depth_reached = depth_reached
        super().__init__(message)


class ChaseBudgetExceeded(ReproError):
    """Raised when the chase engine exceeds its step budget.

    The chase of a TGD set need not terminate; engines therefore take a
    maximum number of applications and raise this error when it runs
    out before reaching a fixpoint.
    """


class NotSupportedError(ReproError):
    """Raised when an operation is asked of an input outside its scope.

    For example, requesting the position graph of TGDs with multi-atom
    heads (the position graph is defined for single-head TGDs only).
    """
