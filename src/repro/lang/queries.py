"""Conjunctive queries and unions of conjunctive queries.

A CQ (Section 3) has the form ``q(x) :- α1, ..., αn`` where ``x`` are
the distinguished (free) variables, each of which must occur in the
body.  Existential variables of the query occurring in more than one
body atom are the *NLE-variables* ("non-linear existential") -- the
variables whose "splitting" the position graph tracks.

The answer tuple is a tuple of *terms*, not necessarily distinct
variables: query rewriting specialises queries, so a rewriting step may
identify two answer variables (head ``r(u,u)``) or bind an answer
variable to a constant.  Surface-syntax queries written by users have
distinct-variable answer tuples; rewritten disjuncts may not.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError
from repro.lang.spans import Span
from repro.lang.substitution import Substitution, rename_apart
from repro.lang.terms import Constant, Null, Term, Variable


class ConjunctiveQuery:
    """An immutable conjunctive query.

    Equality is structural over the answer tuple and the body treated
    as an ordered tuple of atoms; use :meth:`canonical` for an order-
    and renaming-insensitive key.  The optional *span* is parse
    provenance, ignored by equality and hashing.
    """

    __slots__ = ("name", "answer_terms", "body", "span", "_hash")

    def __init__(
        self,
        answer_terms: Sequence[Term],
        body: Sequence[Atom],
        name: str = "q",
        span: Span | None = None,
    ):
        if not body:
            raise SafetyError("a CQ must have a non-empty body")
        self.name = name
        self.answer_terms = tuple(answer_terms)
        self.body = tuple(body)
        self.span = span
        body_vars = set(self.body_variables())
        for term in self.answer_terms:
            if isinstance(term, Null):
                raise SafetyError(f"labeled null {term} in answer tuple")
            if isinstance(term, Variable) and term not in body_vars:
                raise SafetyError(
                    f"answer variable {term} does not occur in the body"
                )
        self._hash = hash((self.answer_terms, self.body))

    @property
    def arity(self) -> int:
        """Number of answer positions."""
        return len(self.answer_terms)

    @property
    def answer_variables(self) -> tuple[Variable, ...]:
        """Distinct answer variables in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for term in self.answer_terms:
            if isinstance(term, Variable):
                seen.setdefault(term)
        return tuple(seen)

    def is_boolean(self) -> bool:
        """True iff the query has no answer positions."""
        return not self.answer_terms

    # ----------------------------------------------------------------- #
    # Variable classification                                            #
    # ----------------------------------------------------------------- #

    def body_variables(self) -> tuple[Variable, ...]:
        """All body variables in occurrence order, without repeats."""
        seen: dict[Variable, None] = {}
        for atom in self.body:
            for var in atom.variables():
                seen.setdefault(var)
        return tuple(seen)

    def existential_variables(self) -> tuple[Variable, ...]:
        """Body variables that are not answer variables."""
        answers = set(self.answer_variables)
        return tuple(v for v in self.body_variables() if v not in answers)

    def nle_variables(self) -> tuple[Variable, ...]:
        """Existential variables occurring in more than one body atom.

        These are the query's join variables on unknowns; the paper
        calls them NLE-variables.
        """
        counts: dict[Variable, int] = {}
        for atom in self.body:
            for var in set(atom.variables()):
                counts[var] = counts.get(var, 0) + 1
        answers = set(self.answer_variables)
        return tuple(
            v for v in self.body_variables()
            if v not in answers and counts[v] > 1
        )

    def constants(self) -> tuple[Constant, ...]:
        """All constants of the body and answer tuple, in order."""
        seen: dict[Constant, None] = {}
        for term in self.answer_terms:
            if isinstance(term, Constant):
                seen.setdefault(term)
        for atom in self.body:
            for const in atom.constants():
                seen.setdefault(const)
        return tuple(seen)

    def atom_occurrences(self, var: Variable) -> tuple[Atom, ...]:
        """The body atoms in which *var* occurs."""
        return tuple(a for a in self.body if var in a.variables())

    # ----------------------------------------------------------------- #
    # Transformation                                                     #
    # ----------------------------------------------------------------- #

    def apply(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to the body and the answer tuple."""
        new_answers = [substitution.apply_term(t) for t in self.answer_terms]
        return ConjunctiveQuery(
            new_answers,
            substitution.apply_atoms(self.body),
            name=self.name,
            span=self.span,
        )

    def rename_apart(self, taken: Iterable[Variable]) -> "ConjunctiveQuery":
        """A variant sharing no variable name with *taken*."""
        renaming = rename_apart(self.body_variables(), taken)
        if not renaming:
            return self
        return self.apply(renaming)

    def dedupe_body(self) -> "ConjunctiveQuery":
        """Remove duplicate body atoms, keeping first occurrences."""
        seen: dict[Atom, None] = {}
        for atom in self.body:
            seen.setdefault(atom)
        if len(seen) == len(self.body):
            return self
        return ConjunctiveQuery(
            self.answer_terms, tuple(seen), name=self.name, span=self.span
        )

    def canonical(self) -> tuple:
        """A renaming- and body-order-insensitive key for this CQ.

        Two CQs equal up to injective variable renaming and body
        reordering receive the same key; distinct keys imply the
        queries are not such variants of each other (the key is exact
        unless a pathological symmetry exceeds the permutation cap
        below, in which case it may split an isomorphism class --
        never merge two distinct ones).

        Construction: atoms are sorted by a rename-insensitive
        *invariant* (relation, constants, within-atom equality pattern,
        and the full occurrence profile of each variable); atoms whose
        invariants tie are disambiguated by trying every permutation of
        the tie groups and keeping the lexicographically smallest
        greedy encoding.
        """
        return self._encode_body(list(self.canonical_order()))

    def canonical_order(self) -> tuple[Atom, ...]:
        """The deduplicated body in the atom order :meth:`canonical` uses.

        Exposed so callers that need a concrete *representative* of the
        canonical form (not just the opaque key) -- e.g. the normal-form
        printer of :mod:`repro.rewriting.datalog_target` -- order and
        rename atoms exactly the way the canonical key does.
        """
        def shape_of(term: Term) -> str:
            return f"{type(term).__name__}:{term}"

        body = sorted(set(self.body), key=Atom.sort_key)

        # Rename-insensitive profile of each variable: where it occurs
        # in the answer tuple and at which (relation, position) sites.
        profiles: dict[Variable, tuple] = {}
        for var in {v for a in body for v in a.variables()}:
            answer_slots = tuple(
                i for i, t in enumerate(self.answer_terms) if t == var
            )
            sites = tuple(
                sorted(
                    (a.relation, p)
                    for a in body
                    for p in a.positions_of(var)
                )
            )
            profiles[var] = (answer_slots, sites)

        def atom_invariant(atom: Atom) -> tuple:
            locals_seen: dict[Term, int] = {}
            cells = []
            for term in atom.terms:
                locals_seen.setdefault(term, len(locals_seen))
                if isinstance(term, Variable):
                    cells.append(("v", locals_seen[term], profiles[term]))
                else:
                    cells.append(("c", locals_seen[term], shape_of(term)))
            return (atom.relation, tuple(cells))

        decorated = sorted(
            (atom_invariant(atom), atom) for atom in body
        )

        # Group atoms with identical invariants; only their relative
        # order is ambiguous.
        groups: list[list[Atom]] = []
        previous = None
        for invariant, atom in decorated:
            if invariant != previous:
                groups.append([])
                previous = invariant
            groups[-1].append(atom)

        import itertools
        import math

        permutations = math.prod(
            math.factorial(len(group)) for group in groups
        )
        # Exact tie-breaking is quadratic-ish in the permutation count
        # times the body size; cap it tightly so pathological symmetric
        # bodies (which arise in diverging rewritings) fall back to the
        # cheap greedy order instead of dominating the run time.
        if permutations == 1 or permutations > 24 or len(body) > 12:
            return tuple(atom for group in groups for atom in group)
        candidates = itertools.product(
            *(itertools.permutations(group) for group in groups)
        )
        return tuple(
            min(
                ([atom for group in candidate for atom in group]
                 for candidate in candidates),
                key=self._encode_body,
            )
        )

    def _encode_body(self, ordered: list[Atom]) -> tuple:
        """Greedy variable-numbering encoding of one body ordering."""
        def shape_of(term: Term) -> str:
            return f"{type(term).__name__}:{term}"

        order: dict[Variable, int] = {}
        for term in self.answer_terms:
            if isinstance(term, Variable):
                order.setdefault(term, len(order))
        rows = []
        for atom in ordered:
            cells: list = [atom.relation]
            for term in atom.terms:
                if isinstance(term, Variable):
                    order.setdefault(term, len(order))
                    cells.append(("v", order[term]))
                else:
                    cells.append(("c", shape_of(term)))
            rows.append(tuple(cells))
        answers = tuple(
            ("v", order[t])
            if isinstance(t, Variable)
            else ("c", shape_of(t))
            for t in self.answer_terms
        )
        return (answers, tuple(rows))

    # ----------------------------------------------------------------- #
    # Dunder plumbing                                                    #
    # ----------------------------------------------------------------- #

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self._hash == other._hash
            and self.answer_terms == other.answer_terms
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"ConjunctiveQuery({list(self.answer_terms)!r}, "
            f"{list(self.body)!r}, name={self.name!r})"
        )

    def __str__(self) -> str:
        answers = ", ".join(str(t) for t in self.answer_terms)
        body = ", ".join(str(a) for a in self.body)
        return f"{self.name}({answers}) :- {body}"


class UnionOfConjunctiveQueries:
    """A UCQ: a set of CQs of the same arity (Section 3).

    Iteration order is the insertion order with canonical duplicates
    removed, so printed rewritings are stable run to run.
    """

    __slots__ = ("name", "arity", "disjuncts", "_hash")

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], name: str | None = None):
        if not disjuncts:
            raise SafetyError("a UCQ must contain at least one CQ")
        arity = disjuncts[0].arity
        kept: list[ConjunctiveQuery] = []
        seen_keys: set = set()
        for cq in disjuncts:
            if cq.arity != arity:
                raise SafetyError(
                    f"UCQ mixes arities {arity} and {cq.arity} ({cq})"
                )
            key = cq.canonical()
            if key in seen_keys:
                continue
            seen_keys.add(key)
            kept.append(cq)
        self.name = name or kept[0].name
        self.arity = arity
        self.disjuncts = tuple(kept)
        self._hash = hash(frozenset(cq.canonical() for cq in kept))

    @classmethod
    def of(cls, query: "ConjunctiveQuery | UnionOfConjunctiveQueries") -> "UnionOfConjunctiveQueries":
        """Lift a CQ to a singleton UCQ; UCQs pass through unchanged."""
        if isinstance(query, UnionOfConjunctiveQueries):
            return query
        return cls([query])

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionOfConjunctiveQueries):
            return False
        return frozenset(cq.canonical() for cq in self.disjuncts) == frozenset(
            cq.canonical() for cq in other.disjuncts
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"UnionOfConjunctiveQueries({list(self.disjuncts)!r})"

    def __str__(self) -> str:
        return "\n".join(str(cq) for cq in self.disjuncts)
