"""Parser for a Datalog±-style textual syntax.

The concrete syntax follows the conventions of the DLGP format used by
existential-rule tools:

* **Variables** are identifiers starting with an uppercase letter
  (``X``, ``Y1``, ``Person``).
* **Constants** are identifiers starting with a lowercase letter
  (``alice``), double-quoted strings (``"a"``) or integers (``42``).
* **Atoms** are ``relation(term, ..., term)``; relation symbols are
  identifiers (any case -- the token before ``(`` is always a relation).
* **TGDs** are ``body -> head`` with comma-separated atom lists, e.g.
  ``s(Y1,Y2,Y3), t(Y4) -> r(Y1,Y3)``.  An optional ``label:`` prefix
  names the rule: ``r1: v(Y1,Y2), q(Y2) -> s(Y1,Y3,Y2)``.
* **CQs** are ``q(X, Y) :- body`` (the head relation names the query);
  boolean queries are written ``q() :- body``.
* **Programs** are sequences of TGDs separated by periods or newlines;
  ``%`` starts a comment running to end of line.
* **Databases** are sequences of ground atoms with the same separators.
* **Mappings** (GAV assertions, parsed by
  :func:`repro.obda.mappings.parse_mappings`) are
  ``source_body ~> target_atom``, e.g. ``person_row(X, N) ~> person(X)``.

Example::

    r1: s(Y1,Y2,Y3), t(Y4) -> r(Y1,Y3).
    r2: v(Y1,Y2), q(Y2) -> s(Y1,Y3,Y2).
    r3: r(Y1,Y2) -> v(Y1,Y2).
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.lang.atoms import Atom
from repro.lang.errors import ParseError
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.spans import Span
from repro.lang.terms import Constant, Term, Variable
from repro.lang.tgd import TGD

_TOKEN_SPEC = [
    ("WS", r"[ \t\r]+"),
    ("COMMENT", r"%[^\n]*"),
    ("NEWLINE", r"\n"),
    ("MAPSTO", r"~>"),
    ("ARROW", r"->"),
    ("IMPLIES", r":-"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("PERIOD", r"\."),
    ("COLON", r":"),
    ("STRING", r'"[^"\n]*"'),
    ("INT", r"-?\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{rx})" for name, rx in _TOKEN_SPEC))


class _Token(NamedTuple):
    kind: str
    value: str
    pos: int
    end: int


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", text, pos)
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            yield _Token(kind, match.group(), pos, match.end())
        pos = match.end()
    yield _Token("EOF", "", pos, pos)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = list(_tokenize(text))
        self.index = 0

    # -- token plumbing ------------------------------------------------ #

    def peek(self, skip_newlines: bool = True) -> _Token:
        i = self.index
        if skip_newlines:
            while self.tokens[i].kind == "NEWLINE":
                i += 1
        return self.tokens[i]

    def advance(self, skip_newlines: bool = True) -> _Token:
        if skip_newlines:
            while self.tokens[self.index].kind == "NEWLINE":
                self.index += 1
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.advance()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, got {token.kind} {token.value!r}",
                self.text,
                token.pos,
            )
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    def _span_from(self, start: _Token) -> Span:
        """Span from *start* to the last token consumed so far."""
        last = self.tokens[self.index - 1] if self.index else start
        return Span.from_offsets(self.text, start.pos, max(last.end, start.pos))

    # -- grammar ------------------------------------------------------- #

    def term(self) -> Term:
        token = self.advance()
        if token.kind == "IDENT":
            if token.value[0].isupper() or token.value[0] == "_":
                return Variable(token.value)
            return Constant(token.value)
        if token.kind == "STRING":
            return Constant(token.value[1:-1])
        if token.kind == "INT":
            return Constant(int(token.value))
        raise ParseError(
            f"expected a term, got {token.kind} {token.value!r}",
            self.text,
            token.pos,
        )

    def atom(self) -> Atom:
        start = self.expect("IDENT")
        self.expect("LPAREN")
        terms: list[Term] = []
        if self.peek().kind != "RPAREN":
            terms.append(self.term())
            while self.peek().kind == "COMMA":
                self.advance()
                terms.append(self.term())
        self.expect("RPAREN")
        return Atom(start.value, terms, span=self._span_from(start))

    def atom_list(self) -> list[Atom]:
        atoms = [self.atom()]
        while self.peek().kind == "COMMA":
            self.advance()
            atoms.append(self.atom())
        return atoms

    def tgd(self) -> TGD:
        start = self.peek()
        label = None
        # Lookahead for "label :" -- an IDENT followed by COLON.
        if (
            self.peek().kind == "IDENT"
            and self.tokens[self._next_significant(1)].kind == "COLON"
        ):
            label = self.advance().value
            self.expect("COLON")
        body = self.atom_list()
        self.expect("ARROW")
        head = self.atom_list()
        return TGD(body, head, label=label, span=self._span_from(start))

    def _next_significant(self, offset: int) -> int:
        """Index of the *offset*-th significant token after the cursor."""
        i = self.index
        found = 0
        while True:
            if self.tokens[i].kind != "NEWLINE":
                found += 1
                if found > offset:
                    return i
            i += 1

    def query(self) -> ConjunctiveQuery:
        start = self.expect("IDENT")
        self.expect("LPAREN")
        answers: list[Variable] = []
        if self.peek().kind != "RPAREN":
            answers.append(self._answer_variable())
            while self.peek().kind == "COMMA":
                self.advance()
                answers.append(self._answer_variable())
        self.expect("RPAREN")
        self.expect("IMPLIES")
        body = self.atom_list()
        return ConjunctiveQuery(
            answers, body, name=start.value, span=self._span_from(start)
        )

    def mapping(self) -> tuple[list[Atom], Atom]:
        """One GAV mapping line: ``source_body ~> target_atom``."""
        body = self.atom_list()
        self.expect("MAPSTO")
        target = self.atom()
        return body, target

    def _answer_variable(self) -> Variable:
        token = self.expect("IDENT")
        if not (token.value[0].isupper() or token.value[0] == "_"):
            raise ParseError(
                f"answer position must be a variable, got {token.value!r}",
                self.text,
                token.pos,
            )
        return Variable(token.value)

    def statement_separator(self) -> None:
        """Consume an optional period and any newlines."""
        if self.peek(skip_newlines=False).kind == "PERIOD":
            self.advance(skip_newlines=False)
        while self.peek(skip_newlines=False).kind == "NEWLINE":
            self.advance(skip_newlines=False)


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``r(X, "a", 3)``."""
    parser = _Parser(text)
    atom = parser.atom()
    parser.statement_separator()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError("trailing input after atom", text, token.pos)
    return atom


def parse_tgd(text: str) -> TGD:
    """Parse a single TGD, e.g. ``r1: s(X,Y) -> r(X,Z)``."""
    parser = _Parser(text)
    rule = parser.tgd()
    parser.statement_separator()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError("trailing input after TGD", text, token.pos)
    return rule


def parse_program(text: str) -> tuple[TGD, ...]:
    """Parse a sequence of TGDs separated by periods/newlines.

    Rules without an explicit label receive ``R1``, ``R2``, ... in
    order of appearance.
    """
    parser = _Parser(text)
    rules: list[TGD] = []
    while not parser.at_end():
        rule = parser.tgd()
        parser.statement_separator()
        rules.append(rule)
    return tuple(
        rule
        if rule.label
        else TGD(rule.body, rule.head, label=f"R{i}", span=rule.span)
        for i, rule in enumerate(rules, start=1)
    )


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a single CQ, e.g. ``q(X) :- r(X, Y), s(Y)``."""
    parser = _Parser(text)
    query = parser.query()
    parser.statement_separator()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError("trailing input after query", text, token.pos)
    return query


def parse_ucq(text: str) -> UnionOfConjunctiveQueries:
    """Parse one or more CQs (a UCQ), separated by periods/newlines."""
    parser = _Parser(text)
    disjuncts: list[ConjunctiveQuery] = []
    while not parser.at_end():
        disjuncts.append(parser.query())
        parser.statement_separator()
    return UnionOfConjunctiveQueries(disjuncts)


def parse_database(text: str) -> tuple[Atom, ...]:
    """Parse a sequence of ground atoms (facts)."""
    parser = _Parser(text)
    facts: list[Atom] = []
    while not parser.at_end():
        atom = parser.atom()
        if not atom.is_ground():
            raise ParseError(f"fact {atom} is not ground", text, 0)
        parser.statement_separator()
        facts.append(atom)
    return tuple(facts)
