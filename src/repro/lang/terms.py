"""Terms of the logical language: variables, constants and labeled nulls.

The paper's Section 3 interprets TGDs under the Unique Name Assumption:
distinct constant symbols denote distinct domain elements.  Labeled
nulls are *not* part of the surface syntax -- they are the fresh
witnesses invented by the chase for existential head variables -- but
they live here because they are terms wherever atoms are manipulated.

All term types are immutable, hashable and totally ordered (ordering is
by kind first, then by name/value), so they can be used freely in sets,
dict keys and sorted output.
"""

from __future__ import annotations

import itertools
import threading
from typing import Union


class Variable:
    """A first-order variable, identified by its name.

    Two variables with the same name are the same variable.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __lt__(self, other: "Term") -> bool:
        return _sort_key(self) < _sort_key(other)


class Constant:
    """A constant symbol.

    The payload may be any hashable Python value (str, int, ...); under
    the Unique Name Assumption two constants are equal iff their
    payloads are equal.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))

    def __lt__(self, other: "Term") -> bool:
        return _sort_key(self) < _sort_key(other)


class Null:
    """A labeled null: a fresh witness invented by the chase.

    Nulls compare equal iff they carry the same label.  They behave like
    constants for unification *of facts* (they denote a specific, if
    unknown, element of the chase instance) but are filtered out of
    certain answers: a tuple mentioning a null is not a certain answer.
    """

    __slots__ = ("label",)

    def __init__(self, label: str):
        if not label:
            raise ValueError("null label must be non-empty")
        self.label = label

    def __repr__(self) -> str:
        return f"Null({self.label!r})"

    def __str__(self) -> str:
        return f"_:{self.label}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and self.label == other.label

    def __hash__(self) -> int:
        return hash(("Null", self.label))

    def __lt__(self, other: "Term") -> bool:
        return _sort_key(self) < _sort_key(other)


Term = Union[Variable, Constant, Null]

_KIND_ORDER = {Constant: 0, Null: 1, Variable: 2}


def _sort_key(term: Term) -> tuple:
    """Total-order key: kind, then a string rendering of the payload."""
    kind = _KIND_ORDER[type(term)]
    if isinstance(term, Variable):
        payload = term.name
    elif isinstance(term, Constant):
        payload = (type(term.value).__name__, str(term.value))
    else:
        payload = term.label
    return (kind, payload)


def term_sort_key(term: Term) -> tuple:
    """Public sorting key for terms (stable across kinds)."""
    return _sort_key(term)


def is_variable(term: Term) -> bool:
    """True iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """True iff *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_null(term: Term) -> bool:
    """True iff *term* is a labeled :class:`Null`."""
    return isinstance(term, Null)


def is_ground(term: Term) -> bool:
    """True iff *term* contains no variable (constants and nulls)."""
    return not isinstance(term, Variable)


class _FreshCounter:
    """Thread-safe monotone counter for fresh-symbol generation."""

    def __init__(self):
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            return next(self._counter)


_fresh_vars = _FreshCounter()
_fresh_nulls = _FreshCounter()


def fresh_variable(prefix: str = "V") -> Variable:
    """Return a variable guaranteed not to clash with earlier fresh ones.

    Freshness is global to the process; user-written variables should
    avoid the reserved ``<prefix>#<n>`` shape (the parser rejects ``#``
    in identifiers, so parsed input can never collide).
    """
    return Variable(f"{prefix}#{_fresh_vars.next()}")


def fresh_null(prefix: str = "n") -> Null:
    """Return a labeled null with a globally fresh label."""
    return Null(f"{prefix}{_fresh_nulls.next()}")
