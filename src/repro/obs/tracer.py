"""Hierarchical tracing spans and aggregated metrics.

A :class:`Tracer` is the single collection point for three kinds of
telemetry:

* **spans** -- nested timed regions (``span("rewrite") >
  span("rewrite.round")``) carrying structured attributes; emitted to
  the tracer's sinks when they close;
* **counters / histograms** -- named aggregates (cache hits, CQs
  generated, chase firings, SQL rows); accumulated in the tracer and
  emitted as summary records by :meth:`Tracer.flush`;
* **events** -- point-in-time records, emitted immediately.

Every emission is a plain ``dict`` following the JSONL schema
documented in ``docs/observability.md`` (``{"v": 1, "type": ...}``),
so sinks never need schema knowledge of their own.

The tracer is deliberately zero-dependency and cheap when disabled: a
tracer constructed without sinks never allocates span state --
``span()`` returns a shared no-op handle and ``count()`` is a single
attribute check.  The module-level API in :mod:`repro.obs` keeps a
disabled tracer installed by default, so instrumented library code
pays (almost) nothing unless a caller opts in.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

SCHEMA_VERSION = 1
"""Version stamped into every emitted record (the ``"v"`` field)."""


def _round_ms(value: float) -> float:
    return round(value, 3)


class _NoopSpan:
    """The shared do-nothing span handle returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Ignore attribute updates (tracing is disabled)."""


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span handle: a timed region with structured attributes.

    Use as a context manager; attributes passed at creation or added
    via :meth:`set` end up in the emitted record's ``attrs`` mapping.
    """

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id", "depth",
        "_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes on this span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self.tracer
        tracer._last_id += 1
        self.span_id = tracer._last_id
        stack = tracer._stack
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = stack[-1].depth + 1
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end = time.perf_counter()
        tracer = self.tracer
        # Tolerate mis-nesting from exception unwinding: pop through us.
        stack = tracer._stack
        while stack:
            if stack.pop() is self:
                break
        tracer._emit(
            {
                "v": SCHEMA_VERSION,
                "type": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "depth": self.depth,
                "start_ms": _round_ms((self._start - tracer._origin) * 1e3),
                "dur_ms": _round_ms((end - self._start) * 1e3),
                "attrs": dict(self.attrs),
            }
        )
        return False


class Tracer:
    """Collects spans, counters, histograms and events into sinks.

    Args:
        *sinks: objects with an ``emit(record: dict)`` method (see
            :mod:`repro.obs.sinks`).  A tracer with no sinks -- or only
            null sinks -- is *disabled*: its instrumentation entry
            points degrade to near-free no-ops.
    """

    __slots__ = (
        "sinks", "enabled", "_counters", "_histograms", "_stack",
        "_last_id", "_origin",
    )

    def __init__(self, *sinks: Any):
        self.sinks = tuple(s for s in sinks if s is not None and not s.is_null)
        self.enabled = bool(self.sinks)
        self._counters: dict[str, int | float] = {}
        self._histograms: dict[str, list[float]] = {}
        self._stack: list[Span] = []
        self._last_id = 0
        self._origin = time.perf_counter()

    # ----------------------------------------------------------------- #
    # Recording                                                           #
    # ----------------------------------------------------------------- #

    def span(self, name: str, **attrs: Any) -> Span | _NoopSpan:
        """Open a timed span; use as a context manager."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def count(self, name: str, value: int | float = 1) -> None:
        """Add *value* (default 1) to the named counter."""
        if self.enabled:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        if self.enabled:
            self._histograms.setdefault(name, []).append(value)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point-in-time event record immediately."""
        if not self.enabled:
            return
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "type": "event",
                "name": name,
                "at_ms": _round_ms(
                    (time.perf_counter() - self._origin) * 1e3
                ),
                "attrs": dict(attrs),
            }
        )

    # ----------------------------------------------------------------- #
    # Reading / flushing                                                  #
    # ----------------------------------------------------------------- #

    def counter(self, name: str) -> int | float:
        """Current value of a counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int | float]:
        """Snapshot of every counter."""
        return dict(self._counters)

    def histogram(self, name: str) -> tuple[float, ...]:
        """The raw observations of a histogram (empty if absent)."""
        return tuple(self._histograms.get(name, ()))

    def flush(self) -> None:
        """Emit one summary record per counter and histogram.

        Idempotent in the sense that aggregates are kept (not reset);
        callers normally flush once, at the end of the traced activity.
        """
        if not self.enabled:
            return
        for name in sorted(self._counters):
            self._emit(
                {
                    "v": SCHEMA_VERSION,
                    "type": "counter",
                    "name": name,
                    "value": self._counters[name],
                }
            )
        for name in sorted(self._histograms):
            values = self._histograms[name]
            self._emit(
                {
                    "v": SCHEMA_VERSION,
                    "type": "histogram",
                    "name": name,
                    "count": len(values),
                    "sum": sum(values),
                    "min": min(values),
                    "max": max(values),
                    "mean": sum(values) / len(values),
                }
            )

    def _emit(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.sinks)
