"""Zero-dependency observability for the rewriting/chase pipeline.

The library's hot paths (:mod:`repro.rewriting`, :mod:`repro.chase`,
:mod:`repro.data.sql`, :mod:`repro.obda`) are instrumented against the
module-level functions here -- :func:`span`, :func:`count`,
:func:`observe`, :func:`event`.  By default these route to a *disabled*
tracer and cost almost nothing (one attribute check); callers opt in by
installing sinks::

    from repro import obs
    from repro.obs import InMemorySink

    with obs.use(InMemorySink()) as tracer:
        engine.answer(query, database)
        print(tracer.counter("engine.cache_misses"))

or, for tests, the one-liner::

    with obs.capture() as cap:
        engine.answer(query, database)
    assert cap.counters()["rewrite.cqs_generated"] > 0

The CLI exposes the same machinery as ``repro trace`` (span tree on
stdout) and the global ``repro --metrics out.jsonl`` flag (JSONL event
stream).  Record schema and sink API are documented in
``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.sinks import InMemorySink, JSONLSink, NullSink, TreeSink
from repro.obs.tracer import NOOP_SPAN, SCHEMA_VERSION, Span, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "Tracer",
    "Span",
    "NullSink",
    "InMemorySink",
    "TreeSink",
    "JSONLSink",
    "Capture",
    "span",
    "count",
    "observe",
    "event",
    "enabled",
    "get_tracer",
    "use",
    "capture",
]

_DISABLED = Tracer()
_current: Tracer = _DISABLED


def get_tracer() -> Tracer:
    """The currently installed tracer (disabled unless :func:`use` ran)."""
    return _current


def enabled() -> bool:
    """True iff instrumentation currently records anywhere."""
    return _current.enabled


def span(name: str, **attrs: Any):
    """Open a span on the current tracer (no-op handle when disabled)."""
    tracer = _current
    if not tracer.enabled:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def count(name: str, value: int | float = 1) -> None:
    """Bump a counter on the current tracer (no-op when disabled)."""
    tracer = _current
    if tracer.enabled:
        tracer.count(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when disabled)."""
    tracer = _current
    if tracer.enabled:
        tracer.observe(name, value)


def event(name: str, **attrs: Any) -> None:
    """Emit a point-in-time event (no-op when disabled)."""
    tracer = _current
    if tracer.enabled:
        tracer.event(name, **attrs)


@contextmanager
def use(*sinks: Any, inherit: bool = True) -> Iterator[Tracer]:
    """Install a tracer routing to *sinks* for the duration of the block.

    With ``inherit=True`` (default) the new tracer also forwards to the
    previously installed tracer's sinks, so e.g. ``repro trace`` can
    stack a :class:`TreeSink` on top of a ``--metrics`` JSONL stream.
    Counters restart at zero either way; they are flushed (emitted as
    summary records) when the block exits, and sinks passed here are
    closed.
    """
    global _current
    previous = _current
    base = previous.sinks if inherit else ()
    tracer = Tracer(*base, *sinks)
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
        tracer.flush()
        for sink in sinks:
            sink.close()


@dataclass
class Capture:
    """An installed tracer plus its in-memory sink, for assertions."""

    tracer: Tracer
    sink: InMemorySink

    def counters(self) -> dict[str, int | float]:
        """Live counter snapshot (no flush required)."""
        return self.tracer.counters()

    def counter(self, name: str) -> int | float:
        """One live counter value (0 if never bumped)."""
        return self.tracer.counter(name)

    def spans(self, name: str | None = None) -> list[dict[str, Any]]:
        """Recorded span records, optionally filtered by name."""
        return self.sink.spans(name)

    def span(self, name: str) -> dict[str, Any]:
        """First recorded span with *name* (KeyError if absent)."""
        return self.sink.span(name)

    def events(self, name: str | None = None) -> list[dict[str, Any]]:
        """Recorded event records, optionally filtered by name."""
        return self.sink.events(name)


@contextmanager
def capture(inherit: bool = False) -> Iterator[Capture]:
    """Record into a fresh :class:`InMemorySink`; yields a :class:`Capture`.

    Isolated from any outer tracer by default (``inherit=False``) so
    tests see only their own activity.
    """
    sink = InMemorySink()
    with use(sink, inherit=inherit) as tracer:
        yield Capture(tracer, sink)
