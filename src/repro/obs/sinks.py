"""Sinks: pluggable destinations for instrumentation records.

A sink is any object with ``emit(record: dict) -> None`` plus a
``close()`` and an ``is_null`` class attribute; records follow the
JSONL schema of :mod:`repro.obs.tracer` (``docs/observability.md``).
Provided sinks:

* :class:`NullSink` -- discards everything; a tracer whose only sinks
  are null is *disabled* and its instrumentation is near-free;
* :class:`InMemorySink` -- keeps records in a list with small query
  helpers; the sink tests assert against;
* :class:`TreeSink` -- accumulates spans and renders a human-readable
  tree with per-stage timings (the ``repro trace`` output);
* :class:`JSONLSink` -- serialises each record as one JSON line to a
  file path or file-like object.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any


class NullSink:
    """Discards every record; marks the owning tracer as disabled."""

    is_null = True

    def emit(self, record: dict[str, Any]) -> None:
        """Discard *record*."""

    def close(self) -> None:
        """Nothing to release."""


class InMemorySink:
    """Buffers records in memory; the sink of choice for tests."""

    is_null = False

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        """Nothing to release (records stay readable)."""

    # Query helpers ---------------------------------------------------- #

    def spans(self, name: str | None = None) -> list[dict[str, Any]]:
        """All span records, optionally filtered by span name."""
        return [
            r
            for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def span(self, name: str) -> dict[str, Any]:
        """The first span record with *name*; raises KeyError if absent."""
        for record in self.records:
            if record["type"] == "span" and record["name"] == name:
                return record
        raise KeyError(f"no span named {name!r} was recorded")

    def events(self, name: str | None = None) -> list[dict[str, Any]]:
        """All event records, optionally filtered by name."""
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def counters(self) -> dict[str, int | float]:
        """Counter records (present after the tracer flushed) as a dict."""
        return {
            r["name"]: r["value"]
            for r in self.records
            if r["type"] == "counter"
        }

    def clear(self) -> None:
        """Drop every buffered record."""
        self.records.clear()


class TreeSink:
    """Collects spans/counters and renders an indented timing tree."""

    is_null = False

    def __init__(self) -> None:
        self._spans: list[dict[str, Any]] = []
        self._counters: list[dict[str, Any]] = []
        self._events: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        kind = record["type"]
        if kind == "span":
            self._spans.append(record)
        elif kind in ("counter", "histogram"):
            self._counters.append(record)
        elif kind == "event":
            self._events.append(record)

    def close(self) -> None:
        """Nothing to release."""

    def render(self) -> str:
        """The span tree (per-stage timings) plus a counter summary."""
        lines: list[str] = []
        children: dict[int | None, list[dict[str, Any]]] = {}
        for record in self._spans:
            children.setdefault(record["parent"], []).append(record)
        for group in children.values():
            group.sort(key=lambda r: r["start_ms"])
        # Spans are emitted on close, so a recorded parent id always
        # refers to a recorded span -- except when the root never closed;
        # treat spans with unknown parents as roots too.
        known = {record["id"] for record in self._spans}
        roots = [
            record
            for parent, group in children.items()
            if parent is None or parent not in known
            for record in group
        ]
        roots.sort(key=lambda r: r["start_ms"])

        def attr_text(record: dict[str, Any]) -> str:
            attrs = record.get("attrs") or {}
            return " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))

        def walk(
            record: dict[str, Any], prefix: str, tail: bool, root: bool
        ) -> None:
            if root:
                label = record["name"]
                child_prefix = ""
            else:
                connector = "└─ " if tail else "├─ "
                label = f"{prefix}{connector}{record['name']}"
                child_prefix = prefix + ("   " if tail else "│  ")
            timing = f"{record['dur_ms']:.3f} ms"
            attrs = attr_text(record)
            lines.append(
                f"{label:<44} {timing:>12}" + (f"  {attrs}" if attrs else "")
            )
            kids = children.get(record["id"], [])
            for i, kid in enumerate(kids):
                walk(kid, child_prefix, i == len(kids) - 1, False)

        for root in roots:
            walk(root, "", True, True)
        if self._events:
            lines.append("")
            lines.append("events:")
            for record in self._events:
                attrs = attr_text(record)
                lines.append(
                    f"  {record['name']:<40} @{record['at_ms']:.3f} ms"
                    + (f"  {attrs}" if attrs else "")
                )
        if self._counters:
            lines.append("")
            lines.append("counters:")
            for record in self._counters:
                if record["type"] == "counter":
                    lines.append(f"  {record['name']:<40} {record['value']}")
                else:
                    lines.append(
                        f"  {record['name']:<40} count={record['count']} "
                        f"mean={record['mean']:.3f} max={record['max']:.3f}"
                    )
        return "\n".join(lines)


class JSONLSink:
    """Writes each record as one JSON object per line.

    Accepts a file path (opened lazily, so constructing the sink never
    touches the filesystem) or any text file-like object.
    """

    is_null = False

    def __init__(self, target: str | Path | io.TextIOBase):
        self._path: Path | None
        self._handle: Any
        if isinstance(target, (str, Path)):
            self._path = Path(target)
            self._handle = None
        else:
            self._path = None
            self._handle = target

    def emit(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            assert self._path is not None
            self._handle = self._path.open("w")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        """Flush and close the file (only if this sink opened it)."""
        if self._handle is not None:
            self._handle.flush()
            if self._path is not None:
                self._handle.close()
                self._handle = None
