"""The Skolem (semi-oblivious) chase.

Between the oblivious and restricted chases sits the *semi-oblivious*
(Skolem) chase: each existential head variable is replaced by a Skolem
term over the rule's frontier, so a trigger invents the *same* null
whenever it fires on the same frontier values.  Equivalently: run the
oblivious chase but reuse nulls per (rule, head variable, frontier
binding).

Properties exercised by the tests:

* it is insensitive to firing order (the instance is a function of the
  input, unlike the restricted chase whose *size* can depend on order);
* it lies between the two other chases:
  ``restricted ⊆ skolem ⊆ oblivious`` in instance size;
* certain answers over its fixpoint (null-free filter) coincide with
  the restricted chase's.
"""

from __future__ import annotations

from typing import Sequence

from repro.chase.chase import DEFAULT_MAX_STEPS, ChaseResult
from repro.data.database import Database
from repro.data.evaluation import all_homomorphisms
from repro.lang.atoms import Atom
from repro.lang.errors import ChaseBudgetExceeded
from repro.lang.terms import Null, Term, Variable
from repro.lang.tgd import TGD


def skolem_chase(
    rules: Sequence[TGD],
    database: Database,
    max_steps: int = DEFAULT_MAX_STEPS,
    strict: bool = False,
) -> ChaseResult:
    """Run the Skolem chase up to *max_steps* trigger firings."""
    rules = list(rules)
    instance = database.copy()
    skolem_table: dict[tuple[int, str, tuple[Term, ...]], Null] = {}
    steps = 0
    fired: set[tuple[int, tuple[Term, ...]]] = set()

    changed = True
    while changed:
        changed = False
        for rule_index, rule in enumerate(rules):
            frontier = rule.distinguished_variables()
            body_vars = rule.body_variables()
            existential = rule.existential_head_variables()
            for hom in list(all_homomorphisms(rule.body, instance)):
                trigger_key = (rule_index, tuple(hom[v] for v in body_vars))
                if trigger_key in fired:
                    continue
                if steps >= max_steps:
                    if strict:
                        raise ChaseBudgetExceeded(
                            f"skolem chase exceeded {max_steps} steps"
                        )
                    return ChaseResult(
                        instance, steps, False, len(skolem_table)
                    )
                frontier_values = tuple(hom[v] for v in frontier)
                assignment: dict[Variable, Term] = dict(hom)
                for var in existential:
                    key = (rule_index, var.name, frontier_values)
                    null = skolem_table.get(key)
                    if null is None:
                        null = Null(
                            f"f{rule_index}_{var.name}"
                            + "".join(f"_{t}" for t in frontier_values)
                        )
                        skolem_table[key] = null
                    assignment[var] = null
                added = False
                for atom in rule.head:
                    fact = Atom(
                        atom.relation,
                        [
                            assignment[t] if isinstance(t, Variable) else t
                            for t in atom.terms
                        ],
                    )
                    if instance.add(fact):
                        added = True
                fired.add(trigger_key)
                steps += 1
                if added:
                    changed = True
    return ChaseResult(instance, steps, True, len(skolem_table))
