"""Deterministic labeled-null generation for chase runs.

Each chase run owns a :class:`NullFactory` so null labels are stable
and reproducible (``n1, n2, ...``) within the run, independent of any
global state.  Reproducible labels make chase instances comparable in
tests and keep golden outputs stable.
"""

from __future__ import annotations

from repro.lang.terms import Null


class NullFactory:
    """Produces ``n1, n2, ...`` labeled nulls, one run at a time."""

    def __init__(self, prefix: str = "n") -> None:
        self._prefix = prefix
        self._count = 0

    def fresh(self) -> Null:
        """The next unused null of this factory."""
        self._count += 1
        return Null(f"{self._prefix}{self._count}")

    @property
    def created(self) -> int:
        """How many nulls this factory has handed out."""
        return self._count
