"""Weak acyclicity: the classical chase-termination guarantee.

Weak acyclicity (Fagin et al., data exchange) is orthogonal to the
paper's FO-rewritability classes but essential infrastructure here: the
test suite and benches use the chase as ground truth for certain
answers, which requires knowing the chase terminates.  A TGD set is
weakly acyclic when its *position dependency graph* has no cycle
through a special edge.

The graph has one node per position ``r[i]`` and, for every rule and
every body occurrence of a frontier variable ``x`` at position ``p``:

* a **regular** edge ``p -> q`` for every head occurrence of ``x`` at
  position ``q``;
* a **special** edge ``p -> q`` for every head position ``q`` holding
  an existential head variable (a value invented from ``x``'s value).
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.lang.atoms import Position
from repro.lang.terms import Variable
from repro.lang.tgd import TGD


def position_dependency_graph(rules: Sequence[TGD]) -> nx.MultiDiGraph:
    """Build the position dependency graph of *rules*.

    Edges carry a boolean attribute ``special``.
    """
    graph = nx.MultiDiGraph()
    for rule in rules:
        frontier = set(rule.distinguished_variables())
        existential = set(rule.existential_head_variables())
        head_sites: dict[Variable, list[Position]] = {}
        existential_sites: list[Position] = []
        for atom in rule.head:
            for position, term in enumerate(atom.terms, start=1):
                if isinstance(term, Variable):
                    site = Position(atom.relation, position)
                    if term in existential:
                        existential_sites.append(site)
                    else:
                        head_sites.setdefault(term, []).append(site)
        for atom in rule.body:
            for position, term in enumerate(atom.terms, start=1):
                if not isinstance(term, Variable) or term not in frontier:
                    continue
                source = Position(atom.relation, position)
                for target in head_sites.get(term, ()):
                    graph.add_edge(source, target, special=False)
                for target in existential_sites:
                    graph.add_edge(source, target, special=True)
    return graph


def is_weakly_acyclic(rules: Sequence[TGD]) -> bool:
    """True iff no cycle of the dependency graph uses a special edge.

    Delegates to the digest-cached dependency graph of
    :mod:`repro.analysis.depgraph`, so hot paths (the per-query
    Section-7 decision procedure) stop rebuilding the graph on every
    call; cache traffic shows up as ``analysis.graph_cache_hits``.
    """
    from repro.analysis.depgraph import dependency_graph

    return dependency_graph(rules).weakly_acyclic
