"""Certain answers via the chase.

``cert(q, P, D)`` (Section 3) is computed by chasing ``D`` with ``P``
and evaluating ``q`` over the result, keeping only null-free tuples.
This is sound and complete whenever the chase reaches a fixpoint (the
chase instance is a universal model).  When the step budget runs out
before a fixpoint, the unfiltered result would still be *sound* (every
reported tuple is certain) but possibly incomplete; callers choose via
``strict`` whether that is an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.chase.chase import DEFAULT_MAX_STEPS, restricted_chase
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.errors import ChaseBudgetExceeded
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.lang.tgd import TGD


@dataclass(frozen=True)
class CertainAnswerResult:
    """Certain answers plus provenance about how they were obtained."""

    answers: frozenset[tuple[Term, ...]]
    complete: bool
    chase_steps: int
    chase_size: int


def certain_answers_via_chase(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    rules: Sequence[TGD],
    database: Database,
    max_steps: int = DEFAULT_MAX_STEPS,
    strict: bool = True,
) -> CertainAnswerResult:
    """Compute ``cert(q, P, D)`` by restricted chase + filtered evaluation.

    With ``strict=True`` (default) a non-terminating chase within the
    budget raises :class:`ChaseBudgetExceeded`; with ``strict=False``
    the result is returned with ``complete=False`` (sound lower bound).
    """
    result = restricted_chase(list(rules), database, max_steps=max_steps)
    if not result.fixpoint and strict:
        raise ChaseBudgetExceeded(
            f"chase did not reach a fixpoint within {max_steps} steps; "
            "certain answers would be incomplete"
        )
    answers = evaluate_ucq(
        UnionOfConjunctiveQueries.of(query), result.instance, certain=True
    )
    return CertainAnswerResult(
        answers=answers,
        complete=result.fixpoint,
        chase_steps=result.steps,
        chase_size=len(result.instance),
    )


def certain_answers(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    rules: Sequence[TGD],
    database: Database,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> frozenset[tuple[Term, ...]]:
    """Shorthand returning just the answer set (strict mode)."""
    return certain_answers_via_chase(
        query, rules, database, max_steps=max_steps
    ).answers
