"""Oblivious and restricted chase engines.

A *trigger* is a pair (rule, homomorphism from the rule body into the
current instance).  The **oblivious chase** fires every trigger exactly
once; the **restricted chase** fires a trigger only when its head is
not already satisfied by an extension of the trigger homomorphism.
Both invent a fresh labeled null per existential head variable per
firing.

Neither chase terminates on arbitrary TGDs, so both engines take a
step budget and report whether they reached a fixpoint.  With
``strict=True`` they raise :class:`ChaseBudgetExceeded` instead of
returning a truncated instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import obs
from repro.chase.nulls import NullFactory
from repro.data.database import Database
from repro.data.evaluation import all_homomorphisms, find_homomorphism
from repro.lang.atoms import Atom
from repro.lang.errors import ChaseBudgetExceeded
from repro.lang.terms import Term, Variable
from repro.lang.tgd import TGD

DEFAULT_MAX_STEPS = 100_000


@dataclass(frozen=True)
class ChaseResult:
    """Outcome of a chase run.

    Attributes:
        instance: the chased database (contains the input facts).
        steps: number of trigger firings performed.
        fixpoint: True iff no applicable trigger remained.
        nulls_created: number of labeled nulls invented.
    """

    instance: Database
    steps: int
    fixpoint: bool
    nulls_created: int


def restricted_chase(
    rules: Sequence[TGD],
    database: Database,
    max_steps: int = DEFAULT_MAX_STEPS,
    strict: bool = False,
) -> ChaseResult:
    """Run the restricted (standard) chase up to *max_steps* firings.

    A trigger fires only if the instantiated head cannot already be
    mapped into the instance with the frontier held fixed, so the
    result is generally much smaller than the oblivious chase and
    terminates in strictly more cases.
    """
    return _chase(rules, database, max_steps, strict, restricted=True)


def oblivious_chase(
    rules: Sequence[TGD],
    database: Database,
    max_steps: int = DEFAULT_MAX_STEPS,
    strict: bool = False,
) -> ChaseResult:
    """Run the oblivious chase: every trigger fires exactly once."""
    return _chase(rules, database, max_steps, strict, restricted=False)


def _chase(
    rules: Sequence[TGD],
    database: Database,
    max_steps: int,
    strict: bool,
    restricted: bool,
) -> ChaseResult:
    instance = database.copy()
    nulls = NullFactory()
    steps = 0
    rounds = 0
    triggers_checked = 0
    suppressed = 0
    fired: set[tuple[int, tuple[Term, ...]]] = set()
    with obs.span(
        "chase",
        mode="restricted" if restricted else "oblivious",
        rules=len(rules),
        facts=len(instance),
    ) as span:

        def finish(fixpoint: bool) -> ChaseResult:
            span.set(
                fixpoint=fixpoint, steps=steps, rounds=rounds,
                size=len(instance), nulls=nulls.created,
            )
            obs.count("chase.rounds", rounds)
            obs.count("chase.firings", steps)
            obs.count("chase.nulls_created", nulls.created)
            obs.count("chase.triggers_checked", triggers_checked)
            obs.count("chase.triggers_suppressed", suppressed)
            return ChaseResult(instance, steps, fixpoint, nulls.created)

        # Round-based saturation: recompute triggers until a full round adds
        # nothing.  Rules iterate in input order, homomorphisms in the
        # evaluator's deterministic order, so runs are reproducible.
        changed = True
        while changed:
            changed = False
            rounds += 1
            with obs.span("chase.round", round=rounds) as round_span:
                fired_before = steps
                for rule_index, rule in enumerate(rules):
                    body_vars = rule.body_variables()
                    for hom in list(all_homomorphisms(rule.body, instance)):
                        triggers_checked += 1
                        trigger_key = (
                            rule_index,
                            tuple(hom[v] for v in body_vars),
                        )
                        if trigger_key in fired:
                            continue
                        if restricted and _head_satisfied(rule, hom, instance):
                            suppressed += 1
                            fired.add(trigger_key)
                            continue
                        if steps >= max_steps:
                            if strict:
                                raise ChaseBudgetExceeded(
                                    f"chase exceeded {max_steps} steps"
                                )
                            round_span.set(fired=steps - fired_before)
                            return finish(False)
                        _fire(rule, hom, instance, nulls)
                        fired.add(trigger_key)
                        steps += 1
                        changed = True
                round_span.set(fired=steps - fired_before)
        return finish(True)


def _head_satisfied(
    rule: TGD, hom: dict[Variable, Term], instance: Database
) -> bool:
    """True iff the instantiated head maps into *instance* (frontier fixed)."""
    frontier = set(rule.distinguished_variables())
    pattern: list[Atom] = []
    for atom in rule.head:
        terms: list[Term] = []
        for term in atom.terms:
            if isinstance(term, Variable) and term in frontier:
                terms.append(hom[term])
            else:
                terms.append(term)
        pattern.append(Atom(atom.relation, terms))
    return find_homomorphism(pattern, instance) is not None


def _fire(
    rule: TGD,
    hom: dict[Variable, Term],
    instance: Database,
    nulls: NullFactory,
) -> None:
    """Add the instantiated head, inventing nulls for ∃-head variables."""
    assignment: dict[Variable, Term] = dict(hom)
    for var in rule.existential_head_variables():
        assignment[var] = nulls.fresh()
    for atom in rule.head:
        terms = [
            assignment[t] if isinstance(t, Variable) else t
            for t in atom.terms
        ]
        instance.add(Atom(atom.relation, terms))


def chase_closure(
    rules: Iterable[TGD],
    facts: Iterable[Atom],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Database:
    """Convenience: restricted-chase a fact list and return the instance.

    Raises :class:`ChaseBudgetExceeded` if no fixpoint is reached.
    """
    result = restricted_chase(
        list(rules), Database(facts), max_steps=max_steps, strict=True
    )
    return result.instance
