"""The chase: model-theoretic substrate for certain answers.

The paper defines certain answers ``cert(q, P, D)`` as the tuples true
in *every* database extending ``D`` and satisfying the TGDs ``P``
(Section 3).  The chase constructs a universal such model by repeatedly
firing TGDs and inventing labeled nulls for existential head variables;
evaluating the query over the (terminating) chase and discarding tuples
with nulls yields exactly the certain answers.  The library uses the
chase as ground truth to validate the FO-rewriting engine.
"""

from repro.chase.certain import certain_answers, certain_answers_via_chase
from repro.chase.chase import (
    ChaseResult,
    oblivious_chase,
    restricted_chase,
)
from repro.chase.nulls import NullFactory
from repro.chase.skolem import skolem_chase
from repro.chase.termination import (
    is_weakly_acyclic,
    position_dependency_graph,
)

__all__ = [
    "ChaseResult",
    "NullFactory",
    "certain_answers",
    "certain_answers_via_chase",
    "is_weakly_acyclic",
    "oblivious_chase",
    "position_dependency_graph",
    "restricted_chase",
    "skolem_chase",
]
