"""GAV mapping assertions between a source database and an ontology.

A mapping assertion relates a conjunctive query over the *source*
schema to an atom template over the *ontology* schema (global-as-view):
for every source answer, one ontology fact is produced.  This is the
"additional layer of information between the ontology and the data
sources" of Section 1.

Mappings are applied by materialisation here (producing the virtual
ABox as actual facts); since GAV mappings are safe CQs this is simply a
query evaluation per assertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.database import Database
from repro.data.evaluation import all_homomorphisms
from repro.lang.atoms import Atom
from repro.lang.errors import SafetyError
from repro.lang.terms import Variable


@dataclass(frozen=True)
class MappingAssertion:
    """One GAV mapping: source CQ body -> ontology atom template.

    Every variable of *target* must occur in *source_body* (safety);
    constants in the target are allowed.
    """

    source_body: tuple[Atom, ...]
    target: Atom

    def __post_init__(self) -> None:
        if not self.source_body:
            raise SafetyError("mapping source must have at least one atom")
        source_vars = {
            v for atom in self.source_body for v in atom.variables()
        }
        for var in self.target.variables():
            if var not in source_vars:
                raise SafetyError(
                    f"mapping target variable {var} not bound by the source"
                )

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.source_body)
        return f"{body} ~> {self.target}"


def apply_mappings(
    mappings: Sequence[MappingAssertion], source: Database
) -> Database:
    """Materialise the virtual ABox induced by *mappings* over *source*."""
    abox = Database()
    for mapping in mappings:
        for hom in all_homomorphisms(list(mapping.source_body), source):
            terms = [
                hom[t] if isinstance(t, Variable) else t
                for t in mapping.target.terms
            ]
            abox.add(Atom(mapping.target.relation, terms))
    return abox


def parse_mappings(text: str) -> tuple[MappingAssertion, ...]:
    """Parse a mapping file: one ``source_body ~> target_atom`` per
    statement, separated by periods/newlines, ``%`` comments allowed.

    Example::

        % people come from two source tables
        person_row(Id, Name) ~> person(Id).
        staff_row(Id, Dept)  ~> person(Id).
    """
    from repro.lang.parser import _Parser

    parser = _Parser(text)
    out: list[MappingAssertion] = []
    while not parser.at_end():
        body, target = parser.mapping()
        parser.statement_separator()
        out.append(MappingAssertion(source_body=tuple(body), target=target))
    return tuple(out)


def identity_mappings(
    relations: Iterable[tuple[str, int]]
) -> tuple[MappingAssertion, ...]:
    """Mappings copying each source relation verbatim to the ontology."""
    out: list[MappingAssertion] = []
    for relation, arity in relations:
        variables = [Variable(f"X{i}") for i in range(1, arity + 1)]
        atom = Atom(relation, variables)
        out.append(MappingAssertion(source_body=(atom,), target=atom))
    return tuple(out)
