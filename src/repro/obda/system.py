"""The OBDA system facade.

:class:`OBDASystem` assembles the three layers of Section 1 of the
paper: a TGD ontology, an optional GAV mapping layer, and a source
database.  Query answering runs the FO-rewriting pipeline by default
(rewrite once, evaluate over the virtual ABox -- either in memory or
compiled to SQL), with a chase-based oracle for validation.

Before answering, :meth:`OBDASystem.classification` reports where the
ontology sits among the library's classes (the paper's Section 7
scenarios: WR / undetermined / not WR), so callers can decide between
exact rewriting and the sound approximation of
:mod:`repro.rewriting.approx`.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.chase.certain import certain_answers_via_chase
from repro.core.classify import ClassificationReport, classify
from repro.data.database import Database
from repro.data.sql import SQLiteBackend
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.signature import Signature
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.obda.mappings import MappingAssertion, apply_mappings
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.engine import FORewritingEngine


class OBDASystem:
    """Ontology + mappings + data: certain-answer query answering.

    Args:
        ontology: the TGD set (intensional layer).
        source: the source database (extensional layer).
        mappings: GAV assertions source -> ontology vocabulary; when
            None the source is taken to be stated directly in the
            ontology's vocabulary (identity mapping).
        budget: rewriting budget for the engine.
    """

    def __init__(
        self,
        ontology: Sequence[TGD],
        source: Database,
        mappings: Sequence[MappingAssertion] | None = None,
        budget: RewritingBudget | None = None,
    ):
        self._ontology = tuple(ontology)
        self._source = source
        self._mappings = tuple(mappings) if mappings is not None else None
        self._engine = FORewritingEngine(self._ontology, budget=budget)
        self._abox: Database | None = None
        self._sql_backend: SQLiteBackend | None = None
        self._classification: ClassificationReport | None = None

    # ----------------------------------------------------------------- #
    # Layers                                                              #
    # ----------------------------------------------------------------- #

    @property
    def ontology(self) -> tuple[TGD, ...]:
        """The intensional layer (TGDs)."""
        return self._ontology

    @property
    def engine(self) -> FORewritingEngine:
        """The underlying rewriting engine (rewritings are cached)."""
        return self._engine

    def abox(self) -> Database:
        """The virtual ABox: source data seen through the mappings."""
        if self._abox is None:
            if self._mappings is None:
                self._abox = self._source
            else:
                with obs.span(
                    "obda.materialize_abox", mappings=len(self._mappings)
                ) as span:
                    self._abox = apply_mappings(self._mappings, self._source)
                    span.set(facts=len(self._abox))
        return self._abox

    def classification(self) -> ClassificationReport:
        """Where the ontology sits among the implemented classes."""
        if self._classification is None:
            self._classification = classify(self._ontology)
        return self._classification

    # ----------------------------------------------------------------- #
    # Query answering                                                     #
    # ----------------------------------------------------------------- #

    def certain_answers(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers via FO rewriting over the virtual ABox."""
        with obs.span("obda.answer", backend="memory") as span:
            answers = self._engine.answer(
                query, self.abox(), require_complete=require_complete
            )
            span.set(answers=len(answers))
        return answers

    def certain_answers_sql(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers with the rewriting executed as SQLite SQL."""
        if self._sql_backend is None:
            # The rewriting may mention ontology relations with no
            # stored facts, so the schema covers the whole ontology
            # signature, not just the ABox's.
            with obs.span("obda.sql_backend_init") as init_span:
                abox = self.abox()
                signature = Signature(dict(abox.signature))
                for rule in self._ontology:
                    signature.observe_tgd(rule)
                backend = SQLiteBackend(signature)
                backend.load(abox.facts())
                init_span.set(
                    relations=len(signature), facts=len(abox)
                )
            self._sql_backend = backend
        with obs.span("obda.answer", backend="sqlite") as span:
            answers = self._engine.answer_sql(query, self._sql_backend)
            span.set(answers=len(answers))
        return answers

    def certain_answers_chase(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        max_steps: int = 100_000,
    ) -> frozenset[tuple[Term, ...]]:
        """Oracle: certain answers via the restricted chase.

        Exponentially more expensive in the data; used to validate the
        rewriting pipeline (and by the E10 bench to show the rewriting
        side's data-complexity advantage).
        """
        with obs.span("obda.chase_oracle") as span:
            result = certain_answers_via_chase(
                query, self._ontology, self.abox(), max_steps=max_steps
            )
            span.set(
                answers=len(result.answers), chase_steps=result.chase_steps
            )
        return result.answers

    def sql_for(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> str:
        """The SQL text the rewriting compiles to."""
        return self._engine.sql_for(query)

    def close(self) -> None:
        """Release the SQLite backend, if one was created."""
        if self._sql_backend is not None:
            self._sql_backend.close()
            self._sql_backend = None

    def __enter__(self) -> "OBDASystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
