"""The legacy OBDA system facade (deprecated shim).

:class:`OBDASystem` was the original public entry point assembling the
three layers of Section 1 of the paper: a TGD ontology, an optional GAV
mapping layer, and a source database.  It is now a thin delegating shim
over :class:`repro.api.Session`, kept for backward compatibility; new
code should open a session directly::

    from repro.api import Session

    with Session(ontology, database, mappings=mappings) as session:
        session.answer(query)                  # was certain_answers
        session.answer(query, backend="sql")   # was certain_answers_sql
        session.answer_chase(query)            # was certain_answers_chase

Constructing an :class:`OBDASystem` emits a :class:`DeprecationWarning`;
``docs/api.md`` has the full migration table.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Sequence

from repro.core.classify import ClassificationReport
from repro.data.database import Database
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.obda.mappings import MappingAssertion
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.engine import FORewritingEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session


class OBDASystem:
    """Deprecated: use :class:`repro.api.Session` instead.

    Every method delegates to an internal session; behaviour (including
    the three answering paths and the context-manager protocol) is
    unchanged.

    Args:
        ontology: the TGD set (intensional layer).
        source: the source database (extensional layer).
        mappings: GAV assertions source -> ontology vocabulary; when
            None the source is taken to be stated directly in the
            ontology's vocabulary (identity mapping).
        budget: rewriting budget for the engine.
    """

    def __init__(
        self,
        ontology: Sequence[TGD],
        source: Database,
        mappings: Sequence[MappingAssertion] | None = None,
        budget: RewritingBudget | None = None,
    ):
        warnings.warn(
            "OBDASystem is deprecated; use repro.api.Session instead "
            "(see docs/api.md for the migration guide)",
            DeprecationWarning,
            stacklevel=2,
        )
        # Imported lazily: repro.api.session itself imports the obda
        # mapping layer, so a module-level import here would be a cycle.
        from repro.api.options import EngineOptions
        from repro.api.session import Session

        options = (
            EngineOptions(budget=budget)
            if budget is not None
            else EngineOptions()
        )
        self._session = Session(
            ontology, source, mappings=mappings, options=options
        )

    # ----------------------------------------------------------------- #
    # Layers                                                              #
    # ----------------------------------------------------------------- #

    @property
    def session(self) -> "Session":
        """The underlying session (the non-deprecated API)."""
        return self._session

    @property
    def ontology(self) -> tuple[TGD, ...]:
        """The intensional layer (TGDs)."""
        return self._session.ontology

    @property
    def engine(self) -> FORewritingEngine:
        """The underlying rewriting engine (rewritings are cached)."""
        return self._session.engine

    def abox(self) -> Database:
        """The virtual ABox: source data seen through the mappings."""
        return self._session.abox()

    def classification(self) -> ClassificationReport:
        """Where the ontology sits among the implemented classes."""
        return self._session.classification()

    # ----------------------------------------------------------------- #
    # Query answering                                                     #
    # ----------------------------------------------------------------- #

    def certain_answers(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        require_complete: bool = True,
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers via FO rewriting over the virtual ABox."""
        return self._session.answer(
            query, require_complete=require_complete
        )

    def certain_answers_sql(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> frozenset[tuple[Term, ...]]:
        """Certain answers with the rewriting executed as SQLite SQL."""
        return self._session.answer(query, backend="sql")

    def certain_answers_chase(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        max_steps: int = 100_000,
    ) -> frozenset[tuple[Term, ...]]:
        """Oracle: certain answers via the restricted chase."""
        return self._session.answer_chase(query, max_steps=max_steps)

    def sql_for(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> str:
        """The SQL text the rewriting compiles to."""
        return self._session.sql_for(query)

    def close(self) -> None:
        """Release the SQLite backend, if one was created."""
        self._session.close()

    def __enter__(self) -> "OBDASystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
