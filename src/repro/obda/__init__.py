"""OBDA system facade: ontology + mappings + data source.

The paper's architecture (Section 1): an ontology holds the
intensional knowledge, a DBMS manages the extensional data, and an
optional mapping layer relates the two "through mapping assertions
[14]".  :class:`~repro.obda.system.OBDASystem` wires together the
library's pieces into that three-layer architecture, answering UCQs by
FO-rewriting (with a chase-based oracle available for validation).
"""

from repro.obda.mappings import (
    MappingAssertion,
    apply_mappings,
    identity_mappings,
    parse_mappings,
)
from repro.obda.strategy import Strategy, StrategyReport, answer_with_best_strategy
from repro.obda.system import OBDASystem

__all__ = [
    "MappingAssertion",
    "OBDASystem",
    "Strategy",
    "StrategyReport",
    "answer_with_best_strategy",
    "apply_mappings",
    "identity_mappings",
    "parse_mappings",
]
