"""The Section-7 decision procedure, operationalised.

Given an arbitrary TGD set, Section 7 distinguishes three situations:
(i) the set is WR -- use FO rewriting; (ii) membership cannot be
established; (iii) the set is not WR -- fall back to approximation.
:func:`answer_with_best_strategy` implements the full decision tree on
a *per-query* basis, exploiting every tool in the library:

1. **REWRITING** -- the query-relevant fragment is SWR or WR
   (:mod:`repro.core.per_query`): rewriting is guaranteed to terminate
   and the answers are exact, with AC0 data complexity.
2. **PROBED_REWRITING** -- the fragment's class is unknown but the
   staged probe (:mod:`repro.rewriting.probe`) observed the rewriting
   completing: exact answers, same evaluation path.
3. **CHASE** -- rewriting unavailable, but some member of the
   termination lattice (weak, joint or super-weak acyclicity,
   :mod:`repro.analysis.termination`) certifies the chase terminates:
   certain answers are exact (at data-dependent cost).
4. **SPLIT** -- the chase diverges, but the fragment separates
   (:mod:`repro.analysis.separability`) into a chase-safe stratified
   core ``S`` and a residual ``R`` whose rewriting of the query
   terminates: by stratification ``cert(q, S ∪ R, D) =
   cert(q, R, chase_S(D))``, so the core is chased once and only the
   residual is compiled into the query.
5. **APPROXIMATION** -- everything else: depth-bounded rewriting gives
   a sound under-approximation (:mod:`repro.rewriting.approx`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.separability import SeparabilityReport, separate
from repro.analysis.termination import (
    TerminationCertificate,
    termination_certificate,
)
from repro.chase.certain import certain_answers_via_chase
from repro.chase.chase import restricted_chase
from repro.core.per_query import classify_for_query
from repro.hybrid.cost import HybridChoice, HybridDecision, decide
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.rewriting.approx import approximate_answers
from repro.rewriting.probe import ProbeVerdict, probe_query_rewritability
from repro.rewriting.rewriter import rewrite


class Strategy(enum.Enum):
    """The answering strategy selected by the decision procedure."""

    REWRITING = "rewriting"
    PROBED_REWRITING = "probed-rewriting"
    CHASE = "chase"
    SPLIT = "split"
    APPROXIMATION = "approximation"


@dataclass(frozen=True)
class StrategyReport:
    """Answers plus how (and how reliably) they were obtained.

    Attributes:
        answers: the computed answer set.
        strategy: which branch of the decision tree ran.
        exact: True when *answers* are exactly the certain answers;
            False for the sound APPROXIMATION under-approximation.
        reason: one-line human-readable justification.
        certificate: the fragment's termination-lattice certificate,
            when the procedure got far enough to compute it.
        partition: the separability partition, when SPLIT was
            considered (CHASE and earlier branches never need one).
        decision: the hybrid cost model's view of the same fragment
            (:mod:`repro.hybrid.cost`) -- for the SPLIT and
            APPROXIMATION branches a full cost comparison over the
            live data, for earlier branches a record of the regime the
            decision tree already committed to.
    """

    answers: frozenset[tuple[Term, ...]]
    strategy: Strategy
    exact: bool
    reason: str
    certificate: TerminationCertificate | None = None
    partition: SeparabilityReport | None = None
    decision: HybridDecision | None = None


def answer_with_best_strategy(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    database: Database,
    probe_depth: int = 10,
    approx_depth: int = 8,
    chase_max_steps: int = 200_000,
) -> StrategyReport:
    """Run the per-query Section-7 decision tree and answer *query*."""
    rules = tuple(rules)
    report = classify_for_query(query, rules)
    fragment = report.relevant

    if report.fo_rewritable_guaranteed:
        result = rewrite(query, fragment)
        which = "SWR" if report.swr.is_swr else "WR"
        return StrategyReport(
            answers=evaluate_ucq(result.ucq, database),
            strategy=Strategy.REWRITING,
            exact=True,
            reason=f"query-relevant fragment is {which}: "
            "FO rewriting terminates and is exact",
            decision=HybridDecision(
                choice=HybridChoice.REWRITE,
                reason=f"fragment is {which}; rewriting is exact and "
                "needs no materialization",
                feasible=("rewrite",),
            ),
        )

    probe = probe_query_rewritability(query, fragment, max_depth=probe_depth)
    if probe.verdict is ProbeVerdict.TERMINATES:
        return StrategyReport(
            answers=evaluate_ucq(probe.rewriting, database),
            strategy=Strategy.PROBED_REWRITING,
            exact=True,
            reason="class membership unknown, but the staged rewriting "
            "completed: exact per-query rewriting",
            decision=HybridDecision(
                choice=HybridChoice.REWRITE,
                reason="staged probe observed the rewriting complete",
                feasible=("rewrite",),
            ),
        )

    certificate = termination_certificate(fragment)
    if certificate.terminating:
        level = certificate.level
        assert level is not None
        chase_result = certain_answers_via_chase(
            query, fragment, database, max_steps=chase_max_steps
        )
        return StrategyReport(
            answers=chase_result.answers,
            strategy=Strategy.CHASE,
            exact=True,
            reason=f"not (provably) FO-rewritable, but {level.value}: "
            "the chase terminates, certain answers are exact",
            certificate=certificate,
            decision=HybridDecision(
                choice=HybridChoice.MATERIALIZE,
                reason=f"chase certified terminating ({level.value}) "
                "and no exact rewriting is available",
                feasible=("materialize",),
            ),
        )

    partition = separate(fragment, certificate=certificate)
    decision = decide(
        partition=partition,
        certificate=certificate,
        data_size=len(database),
        relation_sizes={
            name: database.count(name) for name in database.relations()
        },
    )
    if partition.proper:
        split = _answer_by_split(
            query, partition, database, probe_depth, chase_max_steps
        )
        if split is not None:
            answers, how = split
            core_level = partition.core_certificate.level
            assert core_level is not None
            return StrategyReport(
                answers=answers,
                strategy=Strategy.SPLIT,
                exact=True,
                reason=f"separable: chased the {len(partition.core)}-rule "
                f"core once ({core_level.value}) and rewrote the "
                f"{len(partition.residual)}-rule residual ({how})",
                certificate=certificate,
                partition=partition,
                decision=decision,
            )

    approx = approximate_answers(
        query, fragment, database, max_depth=approx_depth
    )
    return StrategyReport(
        answers=approx.answers,
        strategy=Strategy.APPROXIMATION,
        exact=approx.exact,
        reason="outside every terminating regime: depth-bounded "
        "rewriting returns a sound under-approximation",
        certificate=certificate,
        partition=partition,
        decision=decision,
    )


def _answer_by_split(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    partition: SeparabilityReport,
    database: Database,
    probe_depth: int,
    chase_max_steps: int,
) -> tuple[frozenset[tuple[Term, ...]], str] | None:
    """Chase the core once, rewrite over the residual; None if unusable.

    Soundness rests on the stratification invariant of
    :func:`repro.analysis.separability.separate`: no core rule reads a
    residual-derived relation, so ``chase(S ∪ R, D)`` factorises into
    ``chase_R(chase_S(D))`` and the residual consequences can be
    compiled into the query by FO rewriting, evaluated with the
    certain-answer filter over the materialised core.
    """
    residual = partition.residual
    residual_report = classify_for_query(query, residual)
    if residual_report.fo_rewritable_guaranteed:
        ucq = rewrite(query, residual_report.relevant).ucq
        how = "guaranteed FO-rewritable"
    else:
        probe = probe_query_rewritability(
            query, residual, max_depth=probe_depth
        )
        if probe.verdict is not ProbeVerdict.TERMINATES:
            return None
        ucq = probe.rewriting
        how = "probe-terminating"
    chased = restricted_chase(
        list(partition.core), database, max_steps=chase_max_steps
    )
    if not chased.fixpoint:
        return None
    return evaluate_ucq(ucq, chased.instance, certain=True), how
