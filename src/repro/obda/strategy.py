"""The Section-7 decision procedure, operationalised.

Given an arbitrary TGD set, Section 7 distinguishes three situations:
(i) the set is WR -- use FO rewriting; (ii) membership cannot be
established; (iii) the set is not WR -- fall back to approximation.
:func:`answer_with_best_strategy` implements the full decision tree on
a *per-query* basis, exploiting every tool in the library:

1. **REWRITING** -- the query-relevant fragment is SWR or WR
   (:mod:`repro.core.per_query`): rewriting is guaranteed to terminate
   and the answers are exact, with AC0 data complexity.
2. **PROBED_REWRITING** -- the fragment's class is unknown but the
   staged probe (:mod:`repro.rewriting.probe`) observed the rewriting
   completing: exact answers, same evaluation path.
3. **CHASE** -- rewriting unavailable, but the fragment is weakly
   acyclic: the chase terminates, so certain answers are exact (at
   data-dependent cost).
4. **APPROXIMATION** -- everything else: depth-bounded rewriting gives
   a sound under-approximation (:mod:`repro.rewriting.approx`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.chase.certain import certain_answers_via_chase
from repro.chase.termination import is_weakly_acyclic
from repro.core.per_query import classify_for_query
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.lang.terms import Term
from repro.lang.tgd import TGD
from repro.rewriting.approx import approximate_answers
from repro.rewriting.probe import ProbeVerdict, probe_query_rewritability
from repro.rewriting.rewriter import rewrite


class Strategy(enum.Enum):
    """The answering strategy selected by the decision procedure."""

    REWRITING = "rewriting"
    PROBED_REWRITING = "probed-rewriting"
    CHASE = "chase"
    APPROXIMATION = "approximation"


@dataclass(frozen=True)
class StrategyReport:
    """Answers plus how (and how reliably) they were obtained.

    Attributes:
        answers: the computed answer set.
        strategy: which branch of the decision tree ran.
        exact: True when *answers* are exactly the certain answers;
            False for the sound APPROXIMATION under-approximation.
        reason: one-line human-readable justification.
    """

    answers: frozenset[tuple[Term, ...]]
    strategy: Strategy
    exact: bool
    reason: str


def answer_with_best_strategy(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    rules: Sequence[TGD],
    database: Database,
    probe_depth: int = 10,
    approx_depth: int = 8,
    chase_max_steps: int = 200_000,
) -> StrategyReport:
    """Run the per-query Section-7 decision tree and answer *query*."""
    rules = tuple(rules)
    report = classify_for_query(query, rules)
    fragment = report.relevant

    if report.fo_rewritable_guaranteed:
        result = rewrite(query, fragment)
        which = "SWR" if report.swr.is_swr else "WR"
        return StrategyReport(
            answers=evaluate_ucq(result.ucq, database),
            strategy=Strategy.REWRITING,
            exact=True,
            reason=f"query-relevant fragment is {which}: "
            "FO rewriting terminates and is exact",
        )

    probe = probe_query_rewritability(query, fragment, max_depth=probe_depth)
    if probe.verdict is ProbeVerdict.TERMINATES:
        return StrategyReport(
            answers=evaluate_ucq(probe.rewriting, database),
            strategy=Strategy.PROBED_REWRITING,
            exact=True,
            reason="class membership unknown, but the staged rewriting "
            "completed: exact per-query rewriting",
        )

    if is_weakly_acyclic(fragment):
        chase_result = certain_answers_via_chase(
            query, fragment, database, max_steps=chase_max_steps
        )
        return StrategyReport(
            answers=chase_result.answers,
            strategy=Strategy.CHASE,
            exact=True,
            reason="not (provably) FO-rewritable, but weakly acyclic: "
            "the chase terminates, certain answers are exact",
        )

    approx = approximate_answers(
        query, fragment, database, max_depth=approx_depth
    )
    return StrategyReport(
        answers=approx.answers,
        strategy=Strategy.APPROXIMATION,
        exact=approx.exact,
        reason="outside every terminating regime: depth-bounded "
        "rewriting returns a sound under-approximation",
    )
