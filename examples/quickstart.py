#!/usr/bin/env python3
"""Quickstart: classify an ontology, rewrite a query, answer it.

Run with ``python examples/quickstart.py`` after installing the
package.  Walks through the library's core loop on a five-rule
ontology:

1. parse a TGD ontology and a conjunctive query;
2. check FO-rewritability via the paper's SWR/WR conditions;
3. compute the UCQ rewriting;
4. evaluate it over a plain database (no reasoning at query time);
5. cross-check against the chase and show the generated SQL.
"""

from repro import (
    Database,
    Session,
    classify,
    parse_database,
    parse_program,
    parse_query,
    rewrite,
)

ONTOLOGY = """
    r1: assistantProfessor(X) -> professor(X).
    r2: professor(X) -> faculty(X).
    r3: faculty(X) -> teaches(X, C).
    r4: teaches(X, C) -> course(C).
    r5: teaches(X, C), takes(S, C) -> instructs(X, S).
"""

DATA = """
    assistantProfessor(ada).
    professor(turing).
    teaches(turing, logic101).
    takes(babbage, logic101).
"""

QUERY = "q(X) :- faculty(X)"


def main() -> None:
    ontology = parse_program(ONTOLOGY)
    query = parse_query(QUERY)
    database = Database(parse_database(DATA))

    print("== ontology ==")
    for rule in ontology:
        print(f"  {rule}")

    print("\n== classification ==")
    report = classify(ontology)
    print(report.table())

    print("\n== UCQ rewriting of", query, "==")
    result = rewrite(query, ontology)
    print(f"complete: {result.complete}, disjuncts: {result.size}")
    for cq in result.ucq:
        print(f"  {cq}")

    print("\n== certain answers ==")
    with Session(ontology, database) as session:
        prepared = session.prepare(query)
        answers = prepared.answer()
        oracle = session.answer_chase(query)
        print("rewriting :", sorted(str(row[0]) for row in answers))
        print("chase     :", sorted(str(row[0]) for row in oracle))
        assert answers == oracle, "rewriting must agree with the chase"

        print("\n== the same rewriting as SQL ==")
        print(prepared.sql)
        sql_answers = prepared.answer(backend="sql")
        assert sql_answers == answers, "SQL execution must agree too"
    print("\nall three answering paths agree ✓")


if __name__ == "__main__":
    main()
