#!/usr/bin/env python3
"""Watch a rewriting diverge -- and approximate it anyway.

Example 2 of the paper is not FO-rewritable: the boolean query
``q() :- r("a", X)`` grows an *unbounded chain* of join variables.
This script makes the divergence visible (per-depth growth of the
partial rewriting) and then uses the Section-7-style sound
approximation to still answer the query over a concrete database.
"""

from repro import Database, RewritingBudget, rewrite
from repro.chase import restricted_chase
from repro.lang import parse_database
from repro.rewriting import approximate_answers
from repro.workloads.paper import EXAMPLE2_QUERY, example2

DATA = """
    t(a, a).
    t(b, a).
    s(c, c, a).
    r(a, d).
"""


def main() -> None:
    rules = example2()
    query = EXAMPLE2_QUERY
    print("rules:")
    for rule in rules:
        print(f"  {rule}")
    print(f"query: {query}\n")

    print("== the unbounded chain (paper Example 2) ==")
    print(f"{'depth':>5}  {'CQs generated':>13}  {'UCQ size':>8}  "
          f"{'widest body':>11}  complete?")
    for depth in range(1, 11):
        result = rewrite(
            query, rules, RewritingBudget(max_depth=depth, max_cqs=100_000)
        )
        print(
            f"{depth:>5}  {result.generated:>13}  {result.size:>8}  "
            f"{result.max_body_atoms:>11}  {result.complete}"
        )
    print("the rewriting never completes: each round adds a longer join\n")

    database = Database(parse_database(DATA))
    print("== sound approximation over a concrete database ==")
    report = approximate_answers(query, rules, database, max_depth=8)
    for depth, count, size in zip(
        report.depths, report.answer_counts, report.ucq_sizes
    ):
        print(f"depth {depth}: partial UCQ has {size} disjuncts, "
              f"{count} answer(s)")
    print(f"answers stabilised at depth {report.converged_at}; "
          f"exact: {report.exact}")

    # Cross-check the approximation against a bounded chase: for THIS
    # database the chase terminates, so certain answers are computable.
    chase = restricted_chase(list(rules), database, max_steps=10_000)
    print(f"\nchase reached fixpoint: {chase.fixpoint} "
          f"({chase.steps} steps, {len(chase.instance)} facts)")
    from repro.data import evaluate_ucq

    truth = evaluate_ucq(
        rewrite(query, rules, RewritingBudget(max_depth=8)).ucq, database
    )
    print(f"approximate answers == depth-8 partial answers: "
          f"{report.answers == truth}")


if __name__ == "__main__":
    main()
