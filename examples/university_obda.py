#!/usr/bin/env python3
"""A full OBDA deployment over the university domain.

Demonstrates the three-layer architecture of the paper's Section 1:

* **source layer**: a raw "registrar" database whose schema does NOT
  match the ontology (tables ``emp_record`` and ``enrollment``);
* **mapping layer**: GAV assertions translating source rows into
  ontology facts;
* **ontology layer**: the university TGD set (SWR, hence
  FO-rewritable), answering queries the raw data never stated.
"""

from repro import Session, parse_atom, parse_query
from repro.data import Database
from repro.data.csvio import facts_from_rows
from repro.obda import MappingAssertion
from repro.workloads.ontologies import university_ontology


def build_source() -> Database:
    """The registrar's own schema: nothing ontology-shaped about it."""
    source = Database()
    # emp_record(person, role, department)
    source.add_all(
        facts_from_rows(
            "emp_record",
            [
                ("noether", "full_prof", "math"),
                ("hopper", "assistant_prof", "cs"),
                ("dijkstra", "full_prof", "cs"),
                ("lovelace", "lecturer", "cs"),
            ],
        )
    )
    # enrollment(student, course, taught_by)
    source.add_all(
        facts_from_rows(
            "enrollment",
            [
                ("wiles", "algebra", "noether"),
                ("knuth", "compilers", "dijkstra"),
                ("liskov", "compilers", "dijkstra"),
                ("liskov", "databases", "hopper"),
            ],
        )
    )
    # advising(student, advisor)
    source.add_all(
        facts_from_rows(
            "advising",
            [("wiles", "noether"), ("knuth", "dijkstra")],
        )
    )
    return source


def build_mappings() -> tuple[MappingAssertion, ...]:
    """GAV mappings: source schema -> ontology vocabulary."""
    return (
        MappingAssertion(
            (parse_atom('emp_record(P, "full_prof", D)'),),
            parse_atom("fullProfessor(P)"),
        ),
        MappingAssertion(
            (parse_atom('emp_record(P, "assistant_prof", D)'),),
            parse_atom("assistantProfessor(P)"),
        ),
        MappingAssertion(
            (parse_atom('emp_record(P, "lecturer", D)'),),
            parse_atom("lecturer(P)"),
        ),
        MappingAssertion(
            (parse_atom("emp_record(P, R, D)"),),
            parse_atom("worksFor(P, D)"),
        ),
        MappingAssertion(
            (parse_atom("enrollment(S, C, T)"),),
            parse_atom("takes(S, C)"),
        ),
        MappingAssertion(
            (parse_atom("enrollment(S, C, T)"),),
            parse_atom("teaches(T, C)"),
        ),
        MappingAssertion(
            (parse_atom("advising(S, A)"),),
            parse_atom("hasAdvisor(S, A)"),
        ),
    )


QUERIES = (
    ("every employee", "q(X) :- employee(X)"),
    ("every student", "q(X) :- student(X)"),
    ("who instructs whom", "q(X, Y) :- instructs(X, Y)"),
    ("advisors that are faculty", "q(Y) :- hasAdvisor(X, Y), faculty(Y)"),
    ("dept affiliations", "q(X, D) :- affiliated(X, D)"),
)


def main() -> None:
    ontology = university_ontology()
    source = build_source()
    mappings = build_mappings()

    with Session(ontology, source, mappings=mappings) as session:
        print("== classification of the ontology ==")
        print(session.classification().table())
        print(f"\nvirtual ABox: {len(session.abox())} facts "
              f"(from {len(source)} source rows)")

        for title, text in QUERIES:
            query = parse_query(text)
            prepared = session.prepare(query)
            answers = prepared.answer()
            oracle = session.answer_chase(query)
            assert answers == oracle, f"mismatch on {title}"
            rendered = sorted(
                "(" + ", ".join(str(t) for t in row) + ")" for row in answers
            )
            print(f"\n== {title}: {query}")
            print(f"   rewriting: {prepared.result.size} disjunct(s)")
            for row in rendered:
                print(f"   {row}")


if __name__ == "__main__":
    main()
