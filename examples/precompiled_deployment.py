#!/usr/bin/env python3
"""Precompiled OBDA deployment: rewrite once, answer forever.

The OBDA cost model: rewriting is per-query, evaluation is
per-database.  This example precompiles the university query workload
into a rewriting store on disk (the "deployment artifact"), then
answers the workload over several fresh databases *without the
ontology in sight* -- only the stored UCQs and plain evaluation.
"""

import tempfile
from pathlib import Path

from repro.data import evaluate_ucq
from repro.rewriting import RewritingStore, precompile_workload
from repro.workloads.ontologies import (
    university_data,
    university_ontology,
    university_queries,
)


def main() -> None:
    ontology = university_ontology()
    workload = university_queries()

    # ---- build time: compile the workload once -------------------- #
    store = precompile_workload(
        [query for _, query in workload], ontology
    )
    artifact = Path(tempfile.mkdtemp()) / "university.rw"
    store.save(artifact)
    print(f"compiled {len(store)} rewritings -> {artifact}")
    for name, query in workload:
        entry = store.get(query)
        print(f"  {name}: {len(entry.rewriting)} disjunct(s)")

    # ---- run time: no ontology, no rewriter -- just the store ----- #
    deployed = RewritingStore.load(artifact)
    print("\nanswering over fresh databases with the stored UCQs only:")
    for size in (10, 25):
        database = university_data(size, seed=size)
        counts = []
        for name, query in workload:
            entry = deployed.get(query)
            assert entry is not None and entry.complete
            answers = evaluate_ucq(entry.rewriting, database)
            counts.append(f"{name.split('-')[0]}={len(answers)}")
        print(f"  |D|={len(database):>3}: {'  '.join(counts)}")

    # Sanity: the deployed path equals a live rewrite+evaluate.
    from repro.rewriting import rewrite

    database = university_data(12, seed=99)
    for name, query in workload:
        live = evaluate_ucq(rewrite(query, ontology).ucq, database)
        stored = evaluate_ucq(deployed.get(query).rewriting, database)
        assert live == stored, name
    print("\ndeployed answers == live rewriting answers ✓")


if __name__ == "__main__":
    main()
