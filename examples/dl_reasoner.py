#!/usr/bin/env python3
"""A small Description Logic reasoner on top of the TGD machinery.

Shows the Section-6 punchline: a DL with *qualified existential
restrictions* -- not expressible in DL-Lite_R -- still translates to
Weakly Recursive TGDs, so concept queries, conjunctive queries and
ABox satisfiability all run by FO rewriting over the raw data.
"""

from repro.core import classify
from repro.data import Database
from repro.data.csvio import facts_from_rows
from repro.dlite import (
    extended_tbox_to_tgds,
    is_satisfiable,
    parse_extended_tbox,
)
from repro.lang import parse_query
from repro.api import Session

TBOX = """
Doctor <= Clinician
Nurse <= Clinician
Clinician <= exists worksIn.Ward        % qualified existential (beyond DL-Lite)
exists treats.Patient <= Clinician      % qualified on the left too
Doctor <= exists treats
exists treats- <= Patient
Ward <= not Patient
Doctor <= not Patient
"""


def build_abox() -> Database:
    abox = Database()
    abox.add_all(facts_from_rows("Doctor", [("house",), ("wilson",)]))
    abox.add_all(facts_from_rows("Nurse", [("espinosa",)]))
    abox.add_all(
        facts_from_rows(
            "treats",
            [("house", "patient13"), ("cuddy", "patient7")],
        )
    )
    abox.add_all(facts_from_rows("Patient", [("patient7",)]))
    return abox


def main() -> None:
    tbox = parse_extended_tbox(TBOX)
    rules = extended_tbox_to_tgds(tbox)

    print("== TBox ==")
    for axiom in tbox:
        print(f"  {axiom}")
    print("\n== translated TGDs ==")
    for rule in rules:
        print(f"  {rule}")

    print("\n== classification ==")
    report = classify(rules)
    print(report.table())
    assert not report.swr.is_swr, "multi-head rules are outside SWR"
    assert report.wr is not None and report.wr.is_wr

    abox = build_abox()
    satisfiable, violated = is_satisfiable(tbox, abox, rules=rules)
    print(f"\nABox satisfiable: {satisfiable} {list(violated)}")

    with Session(rules, abox) as session:
        for title, text in (
            ("all clinicians", "q(X) :- Clinician(X)"),
            ("all patients", "q(X) :- Patient(X)"),
            ("who works somewhere (maybe anonymous)", "q(X) :- worksIn(X, W)"),
            ("is anyone in some ward?", "q() :- worksIn(X, W), Ward(W)"),
        ):
            query = parse_query(text)
            answers = session.answer(query)
            oracle = session.answer_chase(query)
            assert answers == oracle
            if query.is_boolean():
                rendered = "yes" if answers else "no"
            else:
                rendered = ", ".join(
                    sorted(str(row[0]) for row in answers)
                ) or "(none)"
            print(f"{title}: {rendered}")

    # An inconsistent ABox is detected through inference, not lookup.
    bad = build_abox()
    bad.add_all(facts_from_rows("Patient", [("house",)]))
    satisfiable, violated = is_satisfiable(tbox, bad, rules=rules)
    print(f"\nafter asserting Patient(house): satisfiable={satisfiable}")
    for axiom in violated:
        print(f"  violated: {axiom}")


if __name__ == "__main__":
    main()
