#!/usr/bin/env python3
"""Classify the paper's three examples and render their graphs.

Reproduces the narrative of Sections 5–6: Example 1 is SWR; Example 2
fools the position graph but is caught by the P-node graph; Example 3
escapes every baseline class yet is WR.  Writes Graphviz DOT files for
Figures 1–3 next to this script (render with ``dot -Tpng``).
"""

from pathlib import Path

from repro.core import classify
from repro.graphs import (
    build_pnode_graph,
    build_position_graph,
    pnode_graph_to_dot,
    position_graph_to_dot,
)
from repro.workloads.paper import example1, example2, example3

OUT = Path(__file__).resolve().parent


def show(name: str, rules) -> None:
    print("=" * 70)
    print(f"{name}:")
    for rule in rules:
        print(f"  {rule}")
    report = classify(rules)
    print()
    print(report.table())
    print()
    print(report.swr.explain())
    if report.wr is not None:
        print(report.wr.explain())


def main() -> None:
    ex1, ex2, ex3 = example1(), example2(), example3()
    show("Example 1 (paper Figure 1)", ex1)
    show("Example 2 (paper Figures 2-3)", ex2)
    show("Example 3 (weak recursion)", ex3)

    figures = {
        "figure1_position_graph.dot": position_graph_to_dot(
            build_position_graph(ex1), name="Fig1"
        ),
        "figure2_position_graph.dot": position_graph_to_dot(
            build_position_graph(ex2), name="Fig2"
        ),
        "figure3_pnode_graph.dot": pnode_graph_to_dot(
            build_pnode_graph(ex2), name="Fig3"
        ),
    }
    print("=" * 70)
    for filename, dot in figures.items():
        path = OUT / filename
        path.write_text(dot + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
