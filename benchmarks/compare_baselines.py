"""Perf-regression gate: diff benchmark JSON artifacts against baselines.

The benchmark suite lands machine-readable artifacts under
``benchmarks/out/*.json``; this script compares them against the
committed reference snapshots in ``benchmarks/baselines/`` and exits
non-zero when a tracked metric drifts beyond the tolerance.  CI runs it
as a blocking step right after the bench suite.

What is compared:

* **Deterministic metrics always** -- kernel/engine counters
  (``minimize.*``, ``rewrite.*``, ...), disjunct counts, corpus sizes,
  cache hit/miss tallies, and boolean flags such as ``same_ucq``.
  These are reproducible bit-for-bit, so any drift is a real behaviour
  change: either a regression, or an intentional change that should be
  re-baselined with ``--update-baselines``.
* **Timings only under ``--check-timings``** -- wall-clock fields
  (``*_ms``, ``*_s``, ``seconds``, speedups and overhead ratios) are
  noisy on shared runners, so by default they are reported but never
  fail the gate.  Nightly runs on quieter hardware can opt in.
* **Machine-dependent fields never** -- e.g. auto-resolved ``workers``
  counts, which track the runner's CPU count.

Updating baselines after an intentional change::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/ -q
    python benchmarks/compare_baselines.py --update-baselines

and commit the refreshed ``benchmarks/baselines/*.json``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Any, Iterator

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_OUT = BENCH_DIR / "out"
DEFAULT_BASELINES = BENCH_DIR / "baselines"

# Wall-clock-derived leaves: compared only under --check-timings.
TIMING_SUFFIXES = ("_ms", "_s", "_seconds")
TIMING_KEYS = {"seconds", "dur_ms"}
TIMING_SUBSTRINGS = ("speedup", "over_bypass", "qps")

# Machine-dependent leaves: never compared (track the runner, not the code).
MACHINE_KEYS = {"workers"}


def is_timing_key(key: str) -> bool:
    if key in TIMING_KEYS:
        return True
    if key.endswith(TIMING_SUFFIXES):
        return True
    return any(piece in key for piece in TIMING_SUBSTRINGS)


def flatten(obj: Any, prefix: str = "") -> Iterator[tuple[str, str, Any]]:
    """Yield ``(path, leaf_key, value)`` for every scalar leaf."""
    if isinstance(obj, dict):
        for key in sorted(obj):
            yield from flatten(obj[key], f"{prefix}/{key}")
    elif isinstance(obj, list):
        for index, value in enumerate(obj):
            yield from flatten(value, f"{prefix}/{index}")
    else:
        parts = [p for p in prefix.split("/") if p and not p.isdigit()]
        yield prefix, (parts[-1] if parts else prefix), obj


def compare_file(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    tolerance: float,
    check_timings: bool,
) -> tuple[list[str], list[str]]:
    """Return ``(regressions, warnings)`` for one artifact pair."""
    regressions: list[str] = []
    warnings: list[str] = []
    base_leaves = {path: (key, value) for path, key, value in flatten(baseline)}
    cur_leaves = {path: (key, value) for path, key, value in flatten(current)}

    for path, (key, base_value) in base_leaves.items():
        if key in MACHINE_KEYS:
            continue
        if path not in cur_leaves:
            regressions.append(f"{path}: present in baseline, missing now")
            continue
        cur_value = cur_leaves[path][1]
        numeric = isinstance(base_value, (int, float)) and not isinstance(
            base_value, bool
        )
        if numeric and isinstance(cur_value, (int, float)):
            if is_timing_key(key) and not check_timings:
                continue
            drift = abs(cur_value - base_value) / max(abs(base_value), 1.0)
            if drift > tolerance:
                regressions.append(
                    f"{path}: {base_value} -> {cur_value} "
                    f"({drift:+.0%} drift, tolerance {tolerance:.0%})"
                )
        elif cur_value != base_value:
            regressions.append(f"{path}: {base_value!r} -> {cur_value!r}")

    for path in cur_leaves.keys() - base_leaves.keys():
        warnings.append(f"{path}: new metric, not in baseline")
    return regressions, warnings


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare benchmark JSON artifacts against baselines."
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="max relative drift for numeric metrics (default: 0.25)",
    )
    parser.add_argument(
        "--check-timings",
        action="store_true",
        help="also gate wall-clock fields (off by default: runner noise)",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="copy benchmarks/out/*.json over the committed baselines",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="restrict to artifact NAME (stem or filename; repeatable) "
        "-- lets a CI job gate just the artifact it produced instead "
        "of staging a filtered baseline directory",
    )
    parser.add_argument("--out-dir", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--baseline-dir", type=Path, default=DEFAULT_BASELINES)
    args = parser.parse_args(argv)

    only = set(args.only or ())

    def selected(path: Path) -> bool:
        return not only or path.stem in only or path.name in only

    artifacts = sorted(p for p in args.out_dir.glob("*.json") if selected(p))
    if only and not artifacts:
        print(
            f"--only matched no artifacts in {args.out_dir} "
            f"(asked for: {', '.join(sorted(only))})"
        )
        return 2
    if args.update_baselines:
        if not artifacts:
            print(f"no JSON artifacts in {args.out_dir}; run the benches first")
            return 2
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for artifact in artifacts:
            shutil.copy(artifact, args.baseline_dir / artifact.name)
            print(f"baseline updated: {artifact.name}")
        return 0

    baselines = sorted(
        p for p in args.baseline_dir.glob("*.json") if selected(p)
    )
    if not baselines:
        print(f"no baselines in {args.baseline_dir}; nothing to gate")
        return 0

    failed = False
    current_names = {a.name for a in artifacts}
    for baseline_path in baselines:
        name = baseline_path.name
        if name not in current_names:
            print(f"FAIL {name}: baseline committed but artifact not produced")
            failed = True
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads((args.out_dir / name).read_text())
        regressions, warnings = compare_file(
            baseline,
            current,
            tolerance=args.tolerance,
            check_timings=args.check_timings,
        )
        status = "FAIL" if regressions else "ok"
        print(f"{status:>4} {name}")
        for line in regressions:
            print(f"       {line}")
        for line in warnings:
            print(f"       note: {line}")
        failed = failed or bool(regressions)

    for name in sorted(current_names - {b.name for b in baselines}):
        print(
            f"note {name}: no committed baseline "
            "(add one with --update-baselines)"
        )

    if failed:
        print(
            "\nregression detected.  If the change is intentional, refresh "
            "with:\n  python benchmarks/compare_baselines.py --update-baselines"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(run())
