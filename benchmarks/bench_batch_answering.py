"""BATCH -- compile-once/serve-many speedups of the session layer.

The api_redesign acceptance bench: >= 50 generated SWR queries answered
four ways over one ontology --

* **seed**      -- the pre-Session path: one fresh ``rewrite()`` +
  in-memory evaluation per query, nothing shared (what every caller
  paid before the API redesign);
* **cold**      -- one :class:`repro.api.Session` with an empty
  persistent cache, sequential answering: pays every compilation once,
  writes each to disk;
* **parallel**  -- ``Session.answer_many`` over a multi-worker pool
  against the same (now warm) cache directory;
* **warm**      -- a *fresh* Session over the same cache directory,
  sequential: every compilation served from disk.

Hard gates are on the cache *counters* (deterministic), not on
wall-clock: the warm run must hit the disk cache for every query and
generate zero rewriting CQs -- "warm-run rewriting time near zero" by
construction, and the JSON artifact records the measured times to show
it.  Answers must be identical across all four paths.
"""

from __future__ import annotations

import random
import tempfile
import time

from _harness import write_artifact, write_json_artifact

from repro import obs
from repro.api import Session, resolve_workers
from repro.data.database import Database
from repro.lang.parser import parse_query
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import (
    concept_hierarchy,
    generate_database,
    swr_but_not_baselines,
)

QUERY_COUNT = 60


def _workload():
    depth = QUERY_COUNT - 4
    rules = concept_hierarchy(depth) + swr_but_not_baselines(2)
    queries = [parse_query(f"q(X) :- c{i}(X)") for i in range(1, depth + 1)]
    queries += [parse_query(f"q(X) :- u{c}(X)") for c in range(2)]
    queries += [parse_query(f"q(X) :- r{c}(X)") for c in range(2)]
    assert len(queries) >= 50
    facts = generate_database(random.Random(23), rules, facts_per_relation=4)
    return rules, queries, Database(facts)


def _timed(workload):
    start = time.perf_counter()
    result = workload()
    return result, time.perf_counter() - start


def test_batch_answering_speedups():
    rules, queries, database = _workload()
    budget = RewritingBudget.default()
    report: dict[str, dict] = {}

    # -- seed: per-query rewrite + evaluate, nothing shared ----------- #
    from repro.data.evaluation import evaluate_ucq

    def seed_run():
        return [
            evaluate_ucq(rewrite(q, rules, budget).ucq, database)
            for q in queries
        ]

    seed_answers, seed_seconds = _timed(seed_run)
    report["seed"] = {"seconds": seed_seconds}

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        # -- cold: one session, empty persistent cache ---------------- #
        with obs.capture() as cold_trace:
            with Session(rules, database, cache_dir=cache_dir) as session:
                (cold_answers, cold_seconds) = _timed(
                    lambda: [session.answer(q) for q in queries]
                )
                cold_stats = session.cache_stats()
        report["cold"] = {
            "seconds": cold_seconds,
            "disk_hits": cold_trace.counter("engine.disk_hits"),
            "disk_misses": cold_trace.counter("engine.disk_misses"),
            "cqs_generated": cold_trace.counter("rewrite.cqs_generated"),
            "cache_writes": cold_stats["persistent"]["writes"],
        }

        # -- parallel: answer_many over the warm cache ---------------- #
        workers = min(4, resolve_workers(None, len(queries)))
        with obs.capture() as par_trace:
            with Session(rules, database, cache_dir=cache_dir) as session:
                (batch, parallel_seconds) = _timed(
                    lambda: session.answer_all(queries, max_workers=workers)
                )
        parallel_answers = [item.answers for item in batch]
        report["parallel"] = {
            "seconds": parallel_seconds,
            "workers": workers,
            "disk_hits": par_trace.counter("engine.disk_hits"),
            "cqs_generated": par_trace.counter("rewrite.cqs_generated"),
        }

        # -- warm: fresh session, every compilation from disk --------- #
        with obs.capture() as warm_trace:
            with Session(rules, database, cache_dir=cache_dir) as session:
                (warm_answers, warm_seconds) = _timed(
                    lambda: [session.answer(q) for q in queries]
                )
                warm_stats = session.cache_stats()
        rewrite_ms = sum(
            s["dur_ms"] for s in warm_trace.spans("engine.rewrite")
        )
        report["warm"] = {
            "seconds": warm_seconds,
            "rewriting_ms": rewrite_ms,
            "disk_hits": warm_trace.counter("engine.disk_hits"),
            "cqs_generated": warm_trace.counter("rewrite.cqs_generated"),
        }

    # -- identical answers on every path ------------------------------ #
    assert cold_answers == seed_answers
    assert parallel_answers == seed_answers
    assert warm_answers == seed_answers

    # -- deterministic cache gates ------------------------------------ #
    n = len(queries)
    assert report["cold"]["disk_misses"] == n
    assert report["cold"]["cache_writes"] == n
    assert report["cold"]["cqs_generated"] > 0
    assert report["parallel"]["disk_hits"] == n
    assert report["parallel"]["cqs_generated"] == 0
    assert report["warm"]["disk_hits"] == n
    assert report["warm"]["cqs_generated"] == 0
    assert warm_stats["persistent"]["hits"] == n
    assert warm_stats["persistent"]["misses"] == 0
    # No rewriting ran warm, so its measured time is (near) zero.
    assert report["warm"]["rewriting_ms"] == 0.0

    lines = [
        "BATCH: compile-once/serve-many over "
        f"{n} SWR queries ({len(rules)} rules)",
        "",
        f"{'path':<10} {'seconds':>9}  notes",
        f"{'seed':<10} {seed_seconds:>9.3f}  rewrite+evaluate per query, no sharing",
        f"{'cold':<10} {report['cold']['seconds']:>9.3f}  "
        f"session, {report['cold']['cache_writes']} cache writes",
        f"{'parallel':<10} {report['parallel']['seconds']:>9.3f}  "
        f"answer_many, {report['parallel']['workers']} workers, "
        f"{report['parallel']['disk_hits']} disk hits",
        f"{'warm':<10} {report['warm']['seconds']:>9.3f}  "
        f"fresh session, {report['warm']['disk_hits']} disk hits, "
        f"rewriting {report['warm']['rewriting_ms']:.3f} ms",
        "",
        f"warm speedup over seed: {seed_seconds / max(report['warm']['seconds'], 1e-9):.1f}x",
    ]
    write_artifact("BATCH_answering.txt", "\n".join(lines))
    write_json_artifact(
        "BATCH_answering.json",
        {
            "schema": 1,
            "queries": n,
            "rules": len(rules),
            "paths": report,
            "warm_speedup_over_seed": seed_seconds
            / max(report["warm"]["seconds"], 1e-9),
        },
    )

    # Soft wall-clock sanity (generous: shared CI runners are noisy).
    assert report["warm"]["seconds"] < seed_seconds * 2.0
