"""Ablation benches for the design choices DESIGN.md calls out.

Three ablations; two show a component is load-bearing, one documents a
deliberate redundancy:

* **redundancy elimination** (core minimization + subsumption pruning)
  in the rewriter -- with both disabled, Example 1's harmless
  ``r -> s -> v -> r`` cycle emits ever-longer subsumed CQs and the
  saturation of an *SWR* set no longer terminates (Theorem 1's
  algorithmic content lives here);
* **the context check** in the P-node graph -- without it, a rewriting
  step that real piece-unification can never perform (a shared
  variable meeting an invented null whose context cannot join the
  piece) is over-approximated, and a genuinely FO-rewritable set is
  wrongly rejected as non-WR;
* **factorization** in the rewriter -- measured to be *redundant* in
  this engine: the piece unifier's forced aggregation already merges
  query atoms whenever an existential head variable requires it, so
  disabling the explicit factorization step loses no answers on the
  canonical repeated-existential pattern.  The step is retained as a
  cheap safety net.
"""

from _harness import write_artifact

from repro.chase.certain import certain_answers
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.graphs.pnode_graph import build_pnode_graph
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.lang.printer import format_program
from repro.rewriting.budget import RewritingBudget
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import context_blocked_family
from repro.workloads.paper import EXAMPLE1_QUERY, example1


def test_ablation_redundancy_elimination(benchmark):
    rules = example1()
    budget = RewritingBudget(max_depth=10, max_cqs=3_000)

    def compare():
        full = rewrite(EXAMPLE1_QUERY, rules, budget)
        bare = rewrite(
            EXAMPLE1_QUERY,
            rules,
            budget,
            prune_subsumed=False,
            minimize=False,
        )
        return full, bare

    full, bare = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert full.complete
    assert not bare.complete  # diverges without redundancy elimination

    lines = [
        "Ablation A1 -- redundancy elimination in the rewriter "
        "(Example 1)",
        "",
        "                          complete  CQs generated  depth",
        f"minimize + prune (full)   {str(full.complete):<8}  "
        f"{full.generated:>13}  {full.depth_reached:>5}",
        f"neither (bare)            {str(bare.complete):<8}  "
        f"{bare.generated:>13}  {bare.depth_reached:>5}",
        "",
        "without core minimization and subsumption pruning, the",
        "harmless r -> s -> v -> r cycle keeps emitting longer",
        "(subsumed) CQs: even an SWR set never saturates.  Theorem 1's",
        "termination rests on redundancy elimination.",
    ]
    write_artifact("ablation_redundancy.txt", "\n".join(lines))


def test_ablation_factorization_redundant(benchmark):
    # Head r(Z, Z): answering q() :- r(U, V), r(V, U) requires merging
    # the two query atoms.  Forced aggregation achieves it even with
    # the explicit factorization step disabled.
    rules = parse_program("a(X) -> r(Z, Z).")
    query = parse_query("q() :- r(U, V), r(V, U)")
    database = Database(parse_database("a(c)."))

    def compare():
        with_fact = rewrite(query, rules)
        without_fact = rewrite(query, rules, factorize=False)
        return with_fact, without_fact

    with_fact, without_fact = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    truth = certain_answers(query, rules, database)
    assert truth == {()}
    assert evaluate_ucq(with_fact.ucq, database) == truth
    assert evaluate_ucq(without_fact.ucq, database) == truth

    lines = [
        "Ablation A2 -- explicit factorization is redundant here",
        "",
        "rule:  a(X) -> r(Z, Z)        query:  q() :- r(U, V), r(V, U)",
        "database: a(c)                certain answer: yes (chase)",
        "",
        f"with factorization   : UCQ size {with_fact.size}, finds the "
        "answer",
        f"without factorization: UCQ size {without_fact.size}, finds the "
        "answer",
        "",
        "the piece unifier aggregates the second query atom into the",
        "piece as soon as the existential class of Z leaks into it, so",
        "the merged rewriting is produced without a separate",
        "factorization step.  The step is kept as a safety net (it is",
        "cheap and the completeness literature motivates it for other",
        "operator designs).",
    ]
    write_artifact("ablation_factorization.txt", "\n".join(lines))


def test_ablation_pnode_context_check(benchmark):
    rules = context_blocked_family()

    def compare():
        with_check = build_pnode_graph(rules, context_check=True)
        without_check = build_pnode_graph(rules, context_check=False)
        return with_check.dangerous_cycle(), without_check.dangerous_cycle()

    with_check, without_check = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert with_check is None         # WR (correct)
    assert without_check is not None  # spurious rejection

    # Ground truth: the set really is FO-rewritable -- the rewriting
    # terminates on the atomic queries.
    for text in ("q(X, Y, Z) :- r(X, Y, Z)", "q(X, Y) :- t(X, Y)"):
        assert rewrite(parse_query(text), rules).complete

    lines = [
        "Ablation A3 -- the P-node graph's context check (Section 6)",
        "",
        "rules:",
        format_program(rules),
        "",
        "with context check    : no dangerous cycle   => WR (correct)",
        "without context check : spurious d+m+s cycle => wrongly not WR",
        "",
        "the apparent r -> t -> r recursion is broken in real rewriting:",
        "continuing it would unify a shared variable (also constrained",
        "by the u-atom) with Ra's invented null, and u can join no",
        "piece.  The compatibility condition 'requires to check the",
        "context of a P-atom' (paper, Section 6) -- this is why.",
    ]
    write_artifact("ablation_context_check.txt", "\n".join(lines))
