"""E5 -- Figure 3: the P-node graph of Example 2 detects the danger.

Regenerates the (reconstructed) P-node graph of Example 2, asserts the
Definition-8 verdict -- a cycle with ``d``, ``m`` and ``s`` edges and
no ``i``-edge exists, so the set is NOT WR -- and emits the witness
cycle alongside the node inventory that matches the paper's Figure 3
(``r(x1,x2)``, ``s(x1,x1,x2)``, ``s(z,z,x1)``, ...).
"""

from _harness import write_artifact

from repro.core.wr import is_wr
from repro.graphs.dot import pnode_graph_to_dot
from repro.graphs.pnode_graph import build_pnode_graph
from repro.lang.printer import format_program
from repro.workloads.paper import example2


def test_figure3_pnode_graph(benchmark):
    rules = example2()

    def build_and_check():
        graph = build_pnode_graph(rules)
        return graph, graph.dangerous_cycle()

    graph, witness = benchmark(build_and_check)

    assert witness is not None
    labels = set().union(*(e.labels for e in witness))
    assert {"d", "m", "s"} <= labels and "i" not in labels
    assert not is_wr(rules).is_wr

    names = {str(n) for n in graph.pnodes}
    for expected in ("r(x1, x2)", "s(x1, x1, x2)", "s(z, z, x1)"):
        assert expected in names

    artifact = "\n".join(
        [
            "Figure 3 -- P-node graph of Example 2 (reconstruction)",
            "",
            "input TGDs:",
            format_program(rules),
            "",
            graph.summary(),
            "",
            "dangerous cycle (contains d, m and s; no i):",
        ]
        + [f"  {edge}" for edge in witness]
        + [
            "",
            "=> P is NOT weakly recursive (Definition 8): the repeated",
            "   variable of body(R2), encoded as the P-atom s(z, z, x1),",
            "   splits the traced unknown across two body atoms of R1 --",
            "   exactly the case the position graph (Figure 2) misses.",
        ]
    )
    write_artifact("figure3_pnode_graph.txt", artifact)
    write_artifact(
        "figure3_pnode_graph.dot", pnode_graph_to_dot(graph, "Fig3")
    )
