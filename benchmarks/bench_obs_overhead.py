"""OBS -- disabled-instrumentation overhead of the observability layer.

The instrumentation wired through the rewriting pipeline must be
near-free when no sink is installed (the default).  This bench times
the Example 1 rewriting in three modes:

* **bypass**  -- ``repro.obs``'s entry points monkeypatched to bare
  stubs, approximating the library with no instrumentation at all;
* **disabled** -- the shipped default (null tracer installed);
* **enabled**  -- an :class:`InMemorySink` collecting every record.

The acceptance gate is ``disabled <= 1.05 x bypass`` (under 5%
overhead).  Wall-clock noise easily exceeds 5% on shared runners, so
the modes are measured in *interleaved* batches (clock drift and
thermal effects hit all modes equally) and each mode is scored by its
minimum batch -- the standard estimator for a lower-bound cost.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from _harness import write_artifact, write_json_artifact

from repro import obs
from repro.obs import InMemorySink
from repro.obs.tracer import NOOP_SPAN
from repro.rewriting.rewriter import rewrite
from repro.workloads.paper import EXAMPLE1_QUERY, example1

BATCHES = 9
RUNS_PER_BATCH = 25
MAX_DISABLED_OVERHEAD = 1.05


def _batch_seconds(workload) -> float:
    """The fastest single run of a batch (scaled to batch length).

    Scoring by the per-run minimum discards scheduler preemptions and
    GC pauses that land inside a batch, which otherwise dominate the
    few-percent effect this bench gates on.
    """
    best = float("inf")
    for _ in range(RUNS_PER_BATCH):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best * RUNS_PER_BATCH


def _bypass_obs(monkeypatch) -> None:
    """Stub the obs entry points: the no-instrumentation baseline."""
    monkeypatch.setattr(obs, "span", lambda name, **attrs: NOOP_SPAN)
    monkeypatch.setattr(obs, "count", lambda name, value=1: None)
    monkeypatch.setattr(obs, "observe", lambda name, value: None)
    monkeypatch.setattr(obs, "event", lambda name, **attrs: None)


def test_disabled_instrumentation_overhead(monkeypatch):
    rules = example1()
    workload = lambda: rewrite(EXAMPLE1_QUERY, rules)  # noqa: E731
    workload()  # warm parser caches etc. before timing anything

    sink = InMemorySink()
    best = {"bypass": float("inf"), "disabled": float("inf"),
            "enabled": float("inf")}
    for _ in range(BATCHES):
        for mode in best:
            if mode == "bypass":
                _bypass_obs(monkeypatch)
                context = nullcontext()
            elif mode == "enabled":
                context = obs.use(sink)
            else:
                context = nullcontext()
            with context:
                if mode == "disabled":
                    assert not obs.enabled()
                best[mode] = min(best[mode], _batch_seconds(workload))
            if mode == "bypass":
                monkeypatch.undo()
    bypass, disabled, enabled = (
        best["bypass"], best["disabled"], best["enabled"]
    )
    assert sink.records  # enabled mode really recorded spans

    ratio = disabled / bypass
    payload = {
        "schema": 1,
        "workload": "rewrite(EXAMPLE1_QUERY, example1())",
        "runs_per_batch": RUNS_PER_BATCH,
        "batches": BATCHES,
        "bypass_s": round(bypass, 6),
        "disabled_s": round(disabled, 6),
        "enabled_s": round(enabled, 6),
        "disabled_over_bypass": round(ratio, 4),
        "enabled_over_bypass": round(enabled / bypass, 4),
        "gate": MAX_DISABLED_OVERHEAD,
    }
    write_json_artifact("obs_overhead.json", payload)
    per_run = 1e3 / RUNS_PER_BATCH
    write_artifact(
        "obs_overhead.txt",
        "\n".join(
            [
                "OBS -- observability overhead on the Example 1 rewriting",
                "",
                f"min over {BATCHES} batches of {RUNS_PER_BATCH} runs:",
                f"  bypass   (no instrumentation)  {bypass * per_run:.3f} ms/run",
                f"  disabled (default null tracer) {disabled * per_run:.3f} ms/run",
                f"  enabled  (in-memory sink)      {enabled * per_run:.3f} ms/run",
                "",
                f"disabled/bypass ratio: {ratio:.4f} "
                f"(gate: < {MAX_DISABLED_OVERHEAD})",
            ]
        ),
    )
    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation costs {(ratio - 1) * 100:.1f}% "
        f"(gate {MAX_DISABLED_OVERHEAD})"
    )
