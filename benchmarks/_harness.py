"""Shared helpers for the benchmark suite.

Every bench regenerates its paper artifact (figure listing, table, or
series) as a text file under ``benchmarks/out/`` and prints it, so a
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
reproduced artifacts on disk for comparison with the paper (see
EXPERIMENTS.md).

Benches that want per-stage breakdowns run their workload through
:func:`capture_stage_metrics`, which records the same span/counter
records as ``repro --metrics`` (the JSONL schema of
``docs/observability.md``) and returns them alongside the workload's
result; :func:`write_json_artifact` then lands them next to the text
artifact as ``<name>.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.obs import InMemorySink

OUT_DIR = Path(__file__).resolve().parent / "out"


def write_artifact(name: str, text: str) -> Path:
    """Write one reproduced artifact and echo it to stdout."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text.rstrip() + "\n")
    print(f"\n===== {name} =====")
    print(text.rstrip())
    return path


def write_json_artifact(name: str, payload: dict[str, Any]) -> Path:
    """Write one JSON artifact (e.g. a per-stage metrics breakdown)."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def capture_stage_metrics(
    workload: Callable[[], Any],
) -> tuple[Any, dict[str, Any]]:
    """Run *workload* under an isolated tracer; return (result, metrics).

    The metrics dict carries the same records ``repro --metrics`` emits
    -- ``{"schema": 1, "spans": [...], "counters": {...}}`` -- so BENCH
    JSON artifacts share one vocabulary with the CLI's JSONL stream.
    """
    sink = InMemorySink()
    with obs.use(sink, inherit=False):
        result = workload()
    return result, {
        "schema": 1,
        "spans": [
            {
                "name": r["name"],
                "depth": r["depth"],
                "dur_ms": r["dur_ms"],
                "attrs": r["attrs"],
            }
            for r in sink.spans()
        ],
        "counters": sink.counters(),
    }


def stage_summary(metrics: dict[str, Any]) -> str:
    """Render captured metrics as text lines for a BENCH artifact."""
    lines = ["per-stage breakdown (span: total ms over all calls):"]
    totals: dict[str, tuple[int, float]] = {}
    for span in metrics["spans"]:
        calls, duration = totals.get(span["name"], (0, 0.0))
        totals[span["name"]] = (calls + 1, duration + span["dur_ms"])
    for name in sorted(totals):
        calls, duration = totals[name]
        lines.append(f"  {name:<28} {duration:>10.3f} ms  ({calls} calls)")
    if metrics["counters"]:
        lines.append("counters:")
        lines.extend(
            f"  {name:<28} {metrics['counters'][name]}"
            for name in sorted(metrics["counters"])
        )
    return "\n".join(lines)
