"""Shared helpers for the benchmark suite.

Every bench regenerates its paper artifact (figure listing, table, or
series) as a text file under ``benchmarks/out/`` and prints it, so a
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
reproduced artifacts on disk for comparison with the paper (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).resolve().parent / "out"


def write_artifact(name: str, text: str) -> Path:
    """Write one reproduced artifact and echo it to stdout."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text.rstrip() + "\n")
    print(f"\n===== {name} =====")
    print(text.rstrip())
    return path
