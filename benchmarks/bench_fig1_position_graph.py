"""E1 -- Figure 1: the position graph of the paper's Example 1.

Regenerates the node/edge listing (and DOT source) of Figure 1 and
measures the cost of building the graph plus running the Definition-5
cycle check.  Asserts the properties the paper reads off the figure:
no ``s``-edges, hence SWR.
"""

from _harness import write_artifact

from repro.core.swr import is_swr
from repro.graphs.dot import position_graph_to_dot
from repro.graphs.position_graph import build_position_graph
from repro.lang.printer import format_program
from repro.workloads.paper import example1


def test_figure1_position_graph(benchmark):
    rules = example1()

    def build_and_check():
        graph = build_position_graph(rules)
        return graph, graph.dangerous_cycle()

    graph, dangerous = benchmark(build_and_check)

    # Paper: "Since there are no s-edges in the position graph AG(P)
    # ... it immediately follows that P is a set of SWR TGDs."
    assert graph.s_edges() == ()
    assert dangerous is None
    assert is_swr(rules).is_swr

    artifact = "\n".join(
        [
            "Figure 1 -- position graph AG(P) of Example 1",
            "",
            "input TGDs:",
            format_program(rules),
            "",
            graph.summary(),
            "",
            f"s-edges: {len(graph.s_edges())} (paper: none)",
            f"m-edges: {len(graph.m_edges())}",
            "dangerous (m+s) cycle: none  =>  P is SWR (Theorem 1: "
            "FO-rewritable)",
            "",
            "note: node t[1] follows from Definition 4 point 1(b) applied",
            "to the existential body variable Y4; see EXPERIMENTS.md.",
        ]
    )
    write_artifact("figure1_position_graph.txt", artifact)
    write_artifact(
        "figure1_position_graph.dot", position_graph_to_dot(graph, "Fig1")
    )
