"""E-HY -- the hybrid crossover: rewriting vs (partial) materialization.

Two experiments over the university workload:

1. **Decision sweep** (data size x query mix): the cost model of
   :mod:`repro.hybrid.cost` is evaluated on a grid of database sizes
   and workload weights (queries served between data changes) over a
   concept-hierarchy family whose static disjunct bound is moderate
   enough for the comparison to be non-trivial.  The artifact records
   the chosen regime per cell -- the expected shape is a crossover
   front: small data / hot mixes amortize a materialization,
   query-sparse cells on big data stay with pure rewriting.  Empirical
   per-regime timings land next to each size as ``*_ms`` fields
   (reported, not gated: runner noise).

2. **Delta phase** (incremental maintenance vs full re-chase): a
   materialized core absorbs a fixed sequence of single-fact inserts
   and deletes via the semi-naive/DRed delta chase, against the cost of
   re-chasing the mutated base from scratch at every step.  The gate is
   counter-based and deterministic -- every mutation must take the
   incremental path (``hybrid.full_rechase == 0``) and the final
   instance must agree with a fresh chase on every workload query; the
   measured ``speedup`` (>= 5x expected) is recorded for the nightly
   timing gate.
"""

import time

from _harness import capture_stage_metrics, write_artifact, write_json_artifact

from repro.analysis.separability import separate
from repro.chase.chase import restricted_chase
from repro.data.evaluation import evaluate_ucq
from repro.hybrid import MaterializedCore, decide
from repro.data.database import Database
from repro.lang.atoms import Atom
from repro.lang.parser import parse_program, parse_query
from repro.lang.terms import Constant
from repro.rewriting.rewriter import rewrite
from repro.workloads.ontologies import (
    university_data,
    university_ontology,
    university_queries,
)

SIZES = (16, 64, 256)
WEIGHTS = (1, 8, 64)

#: Depth of the sweep family's concept hierarchy.  The estimator's
#: static disjunct bound is exponential in the depth, so a shallow
#: hierarchy keeps the rewriting regime genuinely competitive.
HIERARCHY_DEPTH = 4

#: Size of the university base database for the maintenance phase.
DELTA_BASE_SIZE = 60


def hierarchy_rules():
    """``lvl0 <= lvl1 <= ... <= lvlD``: a pure concept hierarchy."""
    return parse_program(
        "\n".join(
            f"H{i}: lvl{i}(X) -> lvl{i + 1}(X)."
            for i in range(HIERARCHY_DEPTH)
        )
    )


def hierarchy_data(size):
    database = Database()
    for i in range(size):
        database.add(Atom("lvl0", (Constant(f"e{i}"),)))
    return database


def hierarchy_query():
    return parse_query(f"q(X) :- lvl{HIERARCHY_DEPTH}(X)")


def decision_sweep(rules, query):
    """The cost model's regime choice on the (size, weight) grid.

    The workload query is handed to the separability pass so the
    estimator's static disjunct bound (rather than the unbounded
    no-workload default) prices the rewriting regime.
    """
    partition = separate(rules, [query])
    matrix = {}
    for size in SIZES:
        database = hierarchy_data(size)
        relation_sizes = {
            name: database.count(name) for name in database.relations()
        }
        for weight in WEIGHTS:
            decision = decide(
                partition=partition,
                data_size=len(database),
                relation_sizes=relation_sizes,
                workload_weight=weight,
            )
            matrix[f"size{size}/weight{weight}"] = decision.choice.value
    return matrix


def empirical_timings(rules, query):
    """Measured per-size costs of the two pure regimes (reported only)."""
    rewriting = rewrite(query, rules)
    assert rewriting.complete
    timings = {}
    for size in SIZES:
        database = hierarchy_data(size)
        start = time.perf_counter()
        rewrite_answers = evaluate_ucq(rewriting.ucq, database)
        rewrite_eval_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        chased = restricted_chase(list(rules), database)
        build_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        chase_answers = evaluate_ucq(query, chased.instance, certain=True)
        chase_eval_ms = (time.perf_counter() - start) * 1000

        assert rewrite_answers == chase_answers
        timings[f"size{size}"] = {
            "answers": len(rewrite_answers),
            "rewrite_eval_ms": round(rewrite_eval_ms, 3),
            "materialize_build_ms": round(build_ms, 3),
            "materialize_eval_ms": round(chase_eval_ms, 3),
        }
    return timings


def _mutations(base):
    """A deterministic mutation tape: 12 inserts then 4 deletes.

    Inserts introduce fresh graduate students wired to existing
    people (advisor edges fan out derived facts); deletes retract base
    facts whose consequences must be DRed-retracted.
    """
    inserts = []
    for i in range(6):
        fresh = Constant(f"delta{i}")
        inserts.append([Atom("gradStudent", (fresh,))])
        inserts.append(
            [Atom("hasAdvisor", (fresh, Constant(f"person{i}")))]
        )
    deletes = [
        [Atom("gradStudent", (Constant(f"delta{i}"),))] for i in range(2)
    ] + [
        [Atom("hasAdvisor", (Constant(f"delta{i}"), Constant(f"person{i}")))]
        for i in range(2)
    ]
    return inserts, deletes


def delta_phase(rules, queries):
    """Incremental maintenance vs per-step full re-chase."""
    base = university_data(DELTA_BASE_SIZE, seed=7)
    inserts, deletes = _mutations(base)

    def incremental():
        core = MaterializedCore(rules, base)
        start = time.perf_counter()
        for batch in inserts:
            core.apply_insert(batch)
        for batch in deletes:
            core.apply_delete(batch)
        return core, (time.perf_counter() - start)

    (core, incremental_s), metrics = capture_stage_metrics(incremental)

    # Reference: re-chase the mutated base from scratch at every step,
    # exactly what a maintenance-free engine would have to do.
    reference = base.copy()
    start = time.perf_counter()
    for batch in inserts:
        for fact in batch:
            reference.add(fact)
        chased = restricted_chase(list(rules), reference)
    for batch in deletes:
        for fact in batch:
            reference.discard(fact)
        chased = restricted_chase(list(rules), reference)
    rechase_s = time.perf_counter() - start

    answers = {}
    for name, query in queries:
        incremental_answers = evaluate_ucq(query, core.instance, certain=True)
        rechase_answers = evaluate_ucq(query, chased.instance, certain=True)
        assert incremental_answers == rechase_answers, name
        answers[name] = len(incremental_answers)

    counters = metrics["counters"]
    return {
        "mutations": len(inserts) + len(deletes),
        "delta_applied": counters.get("hybrid.delta_applied", 0),
        "delta_facts": counters.get("hybrid.delta_facts", 0),
        "full_rechase": counters.get("hybrid.full_rechase", 0),
        "consistency_findings": len(core.check_consistency()),
        "answers": answers,
        "incremental_ms": round(incremental_s * 1000, 3),
        "rechase_ms": round(rechase_s * 1000, 3),
        "speedup": round(rechase_s / max(incremental_s, 1e-9), 2),
    }


def test_hybrid_crossover(benchmark):
    sweep_rules = hierarchy_rules()
    sweep_query = hierarchy_query()
    delta_rules = university_ontology()

    def workload():
        return (
            decision_sweep(sweep_rules, sweep_query),
            empirical_timings(sweep_rules, sweep_query),
            delta_phase(delta_rules, university_queries()),
        )

    matrix, timings, delta = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )

    # A genuine crossover: both regimes must appear on the grid.
    assert {"rewrite", "materialize"} <= set(matrix.values()), matrix

    # The counter gate: every mutation took the incremental path ...
    assert delta["full_rechase"] == 0
    assert delta["delta_applied"] == delta["mutations"]
    assert delta["consistency_findings"] == 0
    # ... and the incremental path actually pays for itself.
    assert delta["speedup"] >= 5.0, delta

    payload = {
        "schema": 1,
        "sizes": list(SIZES),
        "weights": list(WEIGHTS),
        "decision_matrix": matrix,
        "timings": timings,
        "delta_phase": delta,
    }
    write_json_artifact("hybrid_crossover.json", payload)

    lines = [
        "E-HY -- hybrid crossover",
        f"(depth-{HIERARCHY_DEPTH} hierarchy sweep; university delta phase)",
        "",
        "cost-model regime per (size, workload weight):",
        f"{'size':>6}  " + "  ".join(f"{f'w={w}':<11}" for w in WEIGHTS),
    ]
    for size in SIZES:
        row = "  ".join(
            f"{matrix[f'size{size}/weight{w}']:<11}" for w in WEIGHTS
        )
        lines.append(f"{size:>6}  {row}")
    lines += [
        "",
        "delta phase (incremental maintenance vs full re-chase):",
        f"  mutations      {delta['mutations']}"
        f" (delta-applied {delta['delta_applied']},"
        f" full re-chases {delta['full_rechase']})",
        f"  incremental    {delta['incremental_ms']:.1f} ms",
        f"  re-chase       {delta['rechase_ms']:.1f} ms",
        f"  speedup        {delta['speedup']:.1f}x",
    ]
    write_artifact("hybrid_crossover.txt", "\n".join(lines))
