"""E6 -- Example 3: recursion that is "only apparent".

Regenerates the class-membership row the paper walks through (not
Linear / Multilinear / Sticky / Sticky-Join / SWR, yet WR) and measures
both the WR check and the rewriting that -- despite the apparent
R1/R2/R3 cycle -- terminates on every atomic query and matches the
chase.
"""

import random

from _harness import write_artifact

from repro.chase.certain import certain_answers
from repro.core.classify import classify
from repro.data.database import Database
from repro.data.evaluation import evaluate_ucq
from repro.lang.parser import parse_query
from repro.lang.printer import format_program, format_ucq
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import generate_database
from repro.workloads.paper import example3

QUERIES = (
    "q(X, Y) :- r(X, Y)",
    "q(X, Y, Z) :- s(X, Y, Z)",
    "q() :- t(X, Y, Z)",
    "q(X) :- u(X), t(X, X, Y)",
)


def test_example3_classification(benchmark):
    rules = example3()
    report = benchmark(lambda: classify(rules))

    memberships = report.memberships()
    assert memberships["linear"] is False
    assert memberships["multilinear"] is False
    assert memberships["sticky"] is False
    assert memberships["sticky-join"] is False
    assert memberships["SWR"] is False
    assert memberships["WR"] is True

    lines = [
        "E6 -- classification of Example 3",
        "",
        "input TGDs:",
        format_program(rules),
        "",
        report.table(),
        "",
        "paper narrative check:",
        "  not linear       : body(R3) contains two atoms        OK",
        "  not multilinear  : u(Y1) misses frontier variable Y2  OK",
        "  not sticky       : Y1 twice in t(Y1,Y1,Y2)            OK",
        "  not sticky-join  : Y1 in two atoms of body(R3)        OK",
        "  not SWR          : not a set of simple TGDs           OK",
        "  WR               : no d+m+s cycle in the P-node graph OK",
    ]
    write_artifact("example3_classification.txt", "\n".join(lines))


def test_example3_rewriting_terminates(benchmark):
    rules = example3()
    queries = [parse_query(text) for text in QUERIES]

    def rewrite_all():
        return [rewrite(query, rules) for query in queries]

    results = benchmark(rewrite_all)
    assert all(result.complete for result in results)

    for query, result in zip(queries, results):
        for seed in range(3):
            facts = generate_database(
                random.Random(seed), rules, facts_per_relation=4,
                domain_size=4,
            )
            database = Database(facts)
            assert evaluate_ucq(result.ucq, database) == certain_answers(
                query, rules, database, max_steps=100_000
            )

    lines = ["E6 -- rewritings over Example 3 (all terminate)", ""]
    for query, result in zip(queries, results):
        lines.append(f"query: {query}")
        lines.append(
            f"  complete={result.complete} depth={result.depth_reached} "
            f"disjuncts={result.size}"
        )
        lines.append(format_ucq(result.ucq))
        lines.append("")
    lines.append(
        "the cyclic application of R1, R2, R3 never occurs: blocked by"
    )
    lines.append(
        "existential head variables meeting repeated frontier variables."
    )
    write_artifact("example3_rewritings.txt", "\n".join(lines))
