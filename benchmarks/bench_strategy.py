"""The Section-7 decision procedure end to end.

Runs :func:`repro.obda.answer_with_best_strategy` over a spectrum of
(ontology, query) situations -- SWR, WR-only, weakly-acyclic-only,
and nothing-at-all -- and reports which branch each case takes and
whether the answers are exact.  This is the "what to do in situations
(i)/(ii)/(iii)" table the paper's Section 7 sketches.
"""

from _harness import write_artifact

from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program, parse_query
from repro.obda.strategy import answer_with_best_strategy
from repro.workloads.ontologies import university_data, university_ontology
from repro.workloads.paper import EXAMPLE2_QUERY, example2, example3

NON_WA_RULES = parse_program(
    """
    t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).
    s(Y1, Y1, Y2) -> r(Y2, Y3).
    r(X, Y) -> t(Y, Z).
    """
)


def cases():
    return (
        (
            "university / employee",
            parse_query("q(X) :- employee(X)"),
            university_ontology(),
            university_data(15, seed=4),
        ),
        (
            "example 3 / r-query",
            parse_query("q(X, Y) :- r(X, Y)"),
            example3(),
            Database(parse_database("s(a, b, c). u(a).")),
        ),
        (
            "example 2 / chain query",
            EXAMPLE2_QUERY,
            example2(),
            Database(parse_database("t(b, a). r(b, e).")),
        ),
        (
            "example 2 + t-feedback / chain query",
            EXAMPLE2_QUERY,
            NON_WA_RULES,
            Database(parse_database("t(b, a). r(b, e).")),
        ),
    )


def run_all():
    rows = []
    for name, query, rules, database in cases():
        report = answer_with_best_strategy(query, rules, database)
        rows.append(
            (
                name,
                report.strategy.value,
                report.exact,
                len(report.answers),
                report.reason,
            )
        )
    return rows


def test_strategy_triage(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_name = {name: strategy for name, strategy, *_ in rows}
    assert by_name["university / employee"] == "rewriting"
    assert by_name["example 3 / r-query"] == "rewriting"
    assert by_name["example 2 / chain query"] == "chase"
    assert by_name["example 2 + t-feedback / chain query"] == "approximation"

    lines = [
        "Section-7 decision procedure: per-(ontology, query) triage",
        "",
        "case                                  strategy       exact  |answers|",
    ]
    for name, strategy, exact, count, _ in rows:
        lines.append(f"{name:<37} {strategy:<13}  {str(exact):<5}  {count}")
    lines.append("")
    lines.append("reasons:")
    for name, _, _, _, reason in rows:
        lines.append(f"  {name}: {reason}")
    write_artifact("strategy_triage.txt", "\n".join(lines))
