"""Corpus classification table: the full matrix over curated sets.

Classifies every corpus entry against every implemented class and
prints the matrix -- the repo's version of a "Table 1: how the classes
relate on concrete inputs".  All verdicts are pinned by the corpus
annotations (also asserted by the test suite), so this bench doubles
as a regression check with timing.
"""

from _harness import write_artifact

from repro.core.classify import classify
from repro.lang.printer import format_table
from repro.workloads.corpus import CORPUS

COLUMNS = (
    "SWR",
    "WR",
    "inclusion-dependencies",
    "linear",
    "multilinear",
    "sticky",
    "sticky-join",
    "aGRD",
    "domain-restricted",
    "weakly-acyclic",
)


def classify_corpus():
    rows = []
    for entry in CORPUS:
        memberships = classify(entry.rules()).memberships()
        for class_name, expected in entry.expected.items():
            assert memberships[class_name] is expected, entry.name
        rows.append(
            [entry.name]
            + [
                {True: "y", False: ".", None: "?"}[memberships[c]]
                for c in COLUMNS
            ]
        )
    return rows


def test_corpus_classification(benchmark):
    rows = benchmark.pedantic(classify_corpus, rounds=1, iterations=1)

    short = {
        "SWR": "SWR",
        "WR": "WR",
        "inclusion-dependencies": "ID",
        "linear": "LIN",
        "multilinear": "ML",
        "sticky": "ST",
        "sticky-join": "SJ",
        "aGRD": "aGRD",
        "domain-restricted": "DR",
        "weakly-acyclic": "WA",
    }
    table = format_table(
        ("entry",) + tuple(short[c] for c in COLUMNS), rows
    )
    lines = [
        "Corpus classification matrix (y = member, . = not, ? = undecided)",
        "",
        table,
        "",
        "entries and provenance:",
    ]
    lines.extend(f"  {e.name}: {e.description}" for e in CORPUS)
    write_artifact("corpus_matrix.txt", "\n".join(lines))
