"""SERVE -- closed-loop load harness over the async serving layer.

The serving acceptance bench: a zipf-mixed query stream (weights
``1/rank^1.1``, seeded) over a 40-query concept-hierarchy workload,
driven closed-loop -- 16 client threads, each with one keep-alive
connection, each firing its next request the moment the previous one
answers -- against a live :class:`repro.serve.ReproServer` on a real
socket.  Four phases:

* **cold**     -- boot over an empty cache directory, issue every
  distinct query once: every compilation runs and lands on disk;
* **warm**     -- restart over the same cache directory, ``warm_all()``,
  then the full zipf load: every request must be admitted and answered
  with ZERO rewriting (the counter gate), yielding p50/p99/QPS;
* **shed**     -- a saturated one-slot server (worker pinned by a
  barrier) must 429 every excess request with a ``Retry-After``;
* **deadline** -- a pinned worker under a request deadline must 504
  and count ``serve.deadline_exceeded``.

Hard gates are on the deterministic counters (admitted/shed/errors,
``rewrite.cqs_generated``, disk hits); wall-clock percentiles are
recorded in the JSON artifact but -- as everywhere in this suite --
only gate under ``--check-timings``.

Run standalone as the CI smoke: ``python benchmarks/bench_serving_load.py
--smoke --requests 200 --concurrency 16`` boots the real ``repro
serve`` CLI in a subprocess, drives the mix, and exits non-zero on any
shed or error.
"""

from __future__ import annotations

import collections
import http.client
import json
import random
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro import obs
from repro.data.database import Database
from repro.lang.parser import parse_database, parse_program
from repro.serve import BackgroundServer, ReproServer, ServeConfig, TenantRegistry
from repro.workloads.generators import concept_hierarchy, generate_database

DEPTH = 40  # distinct queries in the mix
ZIPF_EXPONENT = 1.1
REQUESTS = 1000
CONCURRENCY = 16


# --------------------------------------------------------------------- #
# Workload                                                              #
# --------------------------------------------------------------------- #


def _workload():
    rules = concept_hierarchy(DEPTH)
    queries = [f"q(X) :- c{i}(X)" for i in range(1, DEPTH + 1)]
    facts = generate_database(random.Random(7), rules, facts_per_relation=3)
    return rules, queries, Database(facts)


def _zipf_plan(queries, requests, seed=11):
    """A seeded zipf-weighted request plan over *queries*."""
    rng = random.Random(seed)
    weights = [1.0 / (rank**ZIPF_EXPONENT) for rank in range(1, len(queries) + 1)]
    return rng.choices(queries, weights=weights, k=requests)


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


# --------------------------------------------------------------------- #
# Closed-loop client                                                    #
# --------------------------------------------------------------------- #


def _drive(host, port, plan, concurrency):
    """Drive *plan* closed-loop; return (sorted latencies s, status tally)."""
    work = collections.deque(plan)
    lock = threading.Lock()
    latencies: list[float] = []
    statuses: collections.Counter = collections.Counter()

    def post(conn, query):
        conn.request(
            "POST",
            "/v1/query",
            body=json.dumps({"query": query}),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        response.read()
        return response.status

    def client():
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            while True:
                with lock:
                    if not work:
                        return
                    query = work.popleft()
                start = time.perf_counter()
                try:
                    status = post(conn, query)
                except (http.client.HTTPException, OSError):
                    # Stale keep-alive connection: reconnect, retry once.
                    conn.close()
                    conn = http.client.HTTPConnection(host, port, timeout=60)
                    try:
                        status = post(conn, query)
                    except (http.client.HTTPException, OSError):
                        status = 599  # client-side failure marker
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    statuses[status] += 1
        finally:
            conn.close()

    pool = [threading.Thread(target=client) for _ in range(concurrency)]
    start = time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    wall = time.perf_counter() - start
    return sorted(latencies), statuses, wall


def _server(cache_dir, rules, database, **config_kwargs):
    config = ServeConfig(port=0, **config_kwargs)
    registry = TenantRegistry(
        cache_dir=cache_dir, options=config.effective_options()
    )
    registry.register("default", rules, database)
    return ReproServer(registry, config)


# --------------------------------------------------------------------- #
# Phases                                                                #
# --------------------------------------------------------------------- #


def _phase_cold(cache_dir, rules, database, queries):
    """Every distinct query once against an empty cache."""
    with obs.capture() as trace:
        server = _server(cache_dir, rules, database, workers=4, queue_depth=16)
        with BackgroundServer(server) as (host, port):
            latencies, statuses, _wall = _drive(host, port, queries, 4)
    return {
        "statuses": dict(statuses),
        "disk_misses": trace.counter("engine.disk_misses"),
        "cache_writes": trace.counter("api.cache.writes"),
        "cqs_generated": trace.counter("rewrite.cqs_generated"),
    }


def _phase_warm(cache_dir, rules, database, plan, concurrency):
    """Restart, warm from disk, then serve the zipf mix rewrite-free."""
    with obs.capture() as trace:
        server = _server(cache_dir, rules, database, workers=4, queue_depth=16)
        warmed = server.registry.warm_all()
        with BackgroundServer(server) as (host, port):
            latencies, statuses, wall = _drive(host, port, plan, concurrency)
        stats = server.admission.stats()
    return {
        "warmed": warmed,
        "statuses": dict(statuses),
        "admitted": stats["admitted"],
        "shed": stats["shed"],
        "errors": stats["errors"],
        "disk_hits": trace.counter("engine.disk_hits"),
        "cqs_generated": trace.counter("rewrite.cqs_generated"),
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "qps": len(plan) / max(wall, 1e-9),
    }


def _phase_shed(rules, database, query, excess=5):
    """Saturate a one-slot server; every excess request must 429."""
    release = threading.Event()
    server = _server(None, rules, database, workers=1, queue_depth=0)
    server._before_execute = release.wait
    shed_statuses: collections.Counter = collections.Counter()
    retry_after_ok = True
    with obs.capture() as trace:
        with BackgroundServer(server) as (host, port):
            blocker = threading.Thread(
                target=lambda: _drive(host, port, [query], 1)
            )
            blocker.start()
            deadline = time.time() + 10
            while server.admission.inflight == 0:
                assert time.time() < deadline, "blocker never admitted"
                time.sleep(0.01)
            for _ in range(excess):
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    conn.request(
                        "POST", "/v1/query", body=json.dumps({"query": query})
                    )
                    response = conn.getresponse()
                    response.read()
                    shed_statuses[response.status] += 1
                    retry_after = response.getheader("Retry-After")
                    if retry_after is None or int(retry_after) < 1:
                        retry_after_ok = False
                finally:
                    conn.close()
            release.set()
            blocker.join(timeout=30)
    return {
        "statuses": dict(shed_statuses),
        "shed": trace.counter("serve.shed"),
        "all_429": set(shed_statuses) == {429},
        "retry_after_present": retry_after_ok,
        "excess": excess,
    }


def _phase_deadline(rules, database, query, deadline_seconds=0.2):
    """A pinned worker under a request deadline must 504."""
    release = threading.Event()
    server = _server(
        None,
        rules,
        database,
        workers=1,
        queue_depth=4,
        deadline_seconds=deadline_seconds,
    )
    server._before_execute = release.wait
    with obs.capture() as trace:
        with BackgroundServer(server) as (host, port):
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.request(
                    "POST", "/v1/query", body=json.dumps({"query": query})
                )
                status = conn.getresponse().status
            finally:
                conn.close()
            release.set()
            limit = time.time() + 10
            while server.admission.inflight:
                assert time.time() < limit, "slot never released"
                time.sleep(0.01)
    return {
        "status": status,
        "deadline_exceeded": trace.counter("serve.deadline_exceeded"),
    }


# --------------------------------------------------------------------- #
# The bench (pytest entry)                                              #
# --------------------------------------------------------------------- #


def test_serving_load():
    from _harness import write_artifact, write_json_artifact

    rules, queries, database = _workload()
    plan = _zipf_plan(queries, REQUESTS)

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as cache_dir:
        cold = _phase_cold(cache_dir, rules, database, queries)
        warm = _phase_warm(cache_dir, rules, database, plan, CONCURRENCY)
    shed = _phase_shed(rules, database, queries[0])
    deadline = _phase_deadline(rules, database, queries[0])

    # -- deterministic gates ------------------------------------------ #
    n = len(queries)
    assert cold["statuses"] == {200: n}
    assert cold["disk_misses"] == n
    assert cold["cache_writes"] == n
    assert cold["cqs_generated"] > 0

    assert warm["warmed"] == n
    assert warm["statuses"] == {200: REQUESTS}
    assert warm["admitted"] == REQUESTS
    assert warm["shed"] == 0
    assert warm["errors"] == 0
    assert warm["disk_hits"] == n
    # The headline gate: a fully warm server rewrites NOTHING.
    assert warm["cqs_generated"] == 0

    assert shed["all_429"], shed
    assert shed["shed"] == shed["excess"]
    assert shed["retry_after_present"]
    assert deadline["status"] == 504
    assert deadline["deadline_exceeded"] == 1

    lines = [
        f"SERVE: closed-loop zipf load, {REQUESTS} requests x "
        f"{CONCURRENCY} clients over {n} distinct queries",
        "",
        f"{'phase':<10} {'gate':<42} observed",
        f"{'cold':<10} {'every query compiled + written once':<42} "
        f"{cold['cache_writes']} writes, {cold['cqs_generated']} CQs",
        f"{'warm':<10} {'all admitted, zero shed, ZERO rewrites':<42} "
        f"{warm['admitted']} admitted, {warm['shed']} shed, "
        f"{warm['cqs_generated']} CQs",
        f"{'shed':<10} {'saturated server 429s with Retry-After':<42} "
        f"{shed['shed']}/{shed['excess']} shed",
        f"{'deadline':<10} {'pinned worker deadline -> 504':<42} "
        f"status {deadline['status']}",
        "",
        f"warm p50 {warm['p50_ms']:.2f} ms | p99 {warm['p99_ms']:.2f} ms "
        f"| {warm['qps']:.0f} QPS",
    ]
    write_artifact("serving_load.txt", "\n".join(lines))
    write_json_artifact(
        "serving_load.json",
        {
            "schema": 1,
            "distinct_queries": n,
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "cold": {
                "disk_misses": cold["disk_misses"],
                "cache_writes": cold["cache_writes"],
                "cqs_generated": cold["cqs_generated"],
            },
            "warm": {
                "warmed": warm["warmed"],
                "all_admitted": warm["admitted"] == REQUESTS,
                "shed": warm["shed"],
                "errors": warm["errors"],
                "disk_hits": warm["disk_hits"],
                "cqs_generated": warm["cqs_generated"],
                "p50_ms": warm["p50_ms"],
                "p99_ms": warm["p99_ms"],
                "qps": warm["qps"],
            },
            "shed_phase": {
                "shed": shed["shed"],
                "all_429": shed["all_429"],
                "retry_after_present": shed["retry_after_present"],
            },
            "deadline_phase": deadline,
        },
    )


# --------------------------------------------------------------------- #
# Standalone smoke: boots the real CLI                                  #
# --------------------------------------------------------------------- #

_ANNOUNCE = re.compile(r"listening on http://([^:]+):(\d+)")


def _smoke(requests, concurrency):
    """Boot ``repro serve`` as a subprocess and drive the zipf mix."""
    rules, queries, database = _workload()
    plan = _zipf_plan(queries, requests)
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        program = Path(tmp) / "program.dlp"
        data = Path(tmp) / "data.dlp"
        program.write_text(" ".join(f"{rule}." for rule in rules) + "\n")
        data.write_text(
            " ".join(f"{fact}." for fact in database.facts()) + "\n"
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(program),
                str(data),
                "--port",
                "0",
                "--workers",
                "4",
                "--queue-depth",
                str(max(16, concurrency)),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            announce = process.stdout.readline()
            match = _ANNOUNCE.search(announce)
            if match is None:
                process.kill()
                rest = process.stdout.read()
                print(f"server failed to boot:\n{announce}{rest}")
                return 1
            host, port = match.group(1), int(match.group(2))
            print(announce.strip())
            latencies, statuses, wall = _drive(host, port, plan, concurrency)
            status_line, _, stats = _http_get(host, port, "/v1/stats")
            admission = stats["admission"] if status_line == 200 else {}
        finally:
            process.terminate()
            process.wait(timeout=30)

    shed = admission.get("shed", -1)
    errors = admission.get("errors", -1)
    ok = (
        set(statuses) == {200}
        and shed == 0
        and errors == 0
        and len(latencies) == requests
    )
    print(
        f"smoke: {requests} requests x {concurrency} clients -> "
        f"statuses {dict(statuses)}, shed {shed}, errors {errors}, "
        f"p50 {_percentile(latencies, 0.5) * 1000:.2f} ms, "
        f"p99 {_percentile(latencies, 0.99) * 1000:.2f} ms, "
        f"{len(plan) / max(wall, 1e-9):.0f} QPS"
    )
    print("smoke: OK" if ok else "smoke: FAILED (shed/error gate)")
    return 0 if ok else 1


def _http_get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        raw = response.read()
        return (
            response.status,
            dict(response.getheaders()),
            json.loads(raw) if raw else None,
        )
    finally:
        conn.close()


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="boot the real `repro serve` CLI and gate zero shed/error",
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=CONCURRENCY)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("standalone runs require --smoke (pytest runs the bench)")
    return _smoke(args.requests, args.concurrency)


if __name__ == "__main__":
    sys.exit(main())
