"""E7 -- the subsumption matrix (Section 5's containment claims).

Over seeded random *simple* TGD sets, counts membership in each class
and verifies the paper's subsumption empirically: every set accepted by
Linear, Multilinear, Sticky or Sticky-Join is also SWR, while SWR (and
WR) accept strictly more.  The artifact is the matrix of counts plus
the strictness witnesses.
"""

import random

from _harness import write_artifact

from repro.classes.linear import is_linear, is_multilinear
from repro.classes.sticky import is_sticky, is_sticky_join
from repro.core.swr import is_swr
from repro.core.wr import is_wr
from repro.lang.printer import format_program, format_table
from repro.workloads.generators import (
    random_linear,
    random_multilinear,
    random_simple,
    swr_but_not_baselines,
)

N_SETS = 60


def _population():
    """A mixed population: unconstrained, linear and multilinear sets.

    Random unconstrained simple sets almost never come out linear, so
    the population deliberately mixes in generator-targeted families;
    every set in it is simple, which is what the E7 claim quantifies
    over.
    """
    per_family = N_SETS // 3
    for seed in range(per_family):
        yield random_simple(
            random.Random(seed), n_rules=4, n_relations=4, max_arity=3
        )
    for seed in range(per_family):
        yield random_linear(random.Random(1000 + seed), n_rules=4)
    for seed in range(per_family):
        rules = random_multilinear(random.Random(2000 + seed), n_rules=3)
        if all(r.is_simple() for r in rules):
            yield rules


def classify_population():
    counts = {
        "linear": 0,
        "multilinear": 0,
        "sticky": 0,
        "sticky-join": 0,
        "SWR": 0,
        "WR": 0,
    }
    violations = []
    swr_only = 0
    total = 0
    for rules in _population():
        total += 1
        members = {
            "linear": bool(is_linear(rules)),
            "multilinear": bool(is_multilinear(rules)),
            "sticky": bool(is_sticky(rules)),
            "sticky-join": bool(is_sticky_join(rules)),
            "SWR": is_swr(rules).is_swr,
            "WR": is_wr(rules).is_wr,
        }
        for name, member in members.items():
            counts[name] += member
        in_baseline = any(
            members[n]
            for n in ("linear", "multilinear", "sticky", "sticky-join")
        )
        if in_baseline and not members["SWR"]:
            violations.append([str(r) for r in rules])
        if members["SWR"] and not in_baseline:
            swr_only += 1
        if members["SWR"] and not members["WR"]:
            violations.append(("wr", [str(r) for r in rules]))
    return counts, violations, swr_only, total


def test_classification_matrix(benchmark):
    counts, violations, swr_only, total = benchmark.pedantic(
        classify_population, rounds=1, iterations=1
    )
    assert violations == [], violations
    # Every class must be represented in the sampled population.
    assert all(count > 0 for count in counts.values()), counts

    witness = swr_but_not_baselines()
    assert is_swr(witness).is_swr

    table = format_table(
        ("class", f"accepted (of {total} random simple sets)"),
        sorted(counts.items(), key=lambda kv: kv[1]),
    )
    lines = [
        "E7 -- class membership over random simple TGD sets",
        "",
        table,
        "",
        f"sets in SWR but in NO baseline class: {swr_only}",
        "subsumption violations (baseline-accepts but SWR-rejects): 0",
        "WR-subsumes-SWR violations: 0",
        "",
        "hand-written strictness witness (SWR, outside all four "
        "baselines):",
        format_program(witness),
    ]
    write_artifact("classification_matrix.txt", "\n".join(lines))
