"""Optimization + diagnosis benches: relevance filtering and probing.

* **Relevance filtering**: a realistic ontology bundles modules the
  query never touches; backward-reachability filtering drops them
  before the rewriter runs.  Measured on the university ontology
  padded with disjoint transport-style modules.
* **Rewritability probe**: the Section-7 triage -- before committing a
  budget, classify a (query, rule set) pair as TERMINATES / DIVERGING /
  UNKNOWN.  Measured on the paper's examples: Example 1 and per-query
  cases of Example 2 terminate, the Example 2 chain is diagnosed as
  diverging.
"""

import time

from _harness import write_artifact

from repro.lang.parser import parse_query
from repro.rewriting.probe import ProbeVerdict, probe_query_rewritability
from repro.rewriting.relevance import relevant_rules
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import swr_but_not_baselines
from repro.workloads.ontologies import university_ontology
from repro.workloads.paper import EXAMPLE2_QUERY, example1, example2

QUERY = parse_query("q(X) :- employee(X)")


def padded_ontology(modules: int):
    rules = list(university_ontology())
    rules.extend(swr_but_not_baselines(copies=modules))
    return tuple(rules)


def test_relevance_filtering(benchmark):
    rules = padded_ontology(modules=30)
    report = relevant_rules(QUERY, rules)
    # Every padding rule is dropped, plus university rules the query
    # cannot reach (student/course bookkeeping).
    assert len(report.dropped) >= 90

    def filtered_run():
        filtered = relevant_rules(QUERY, rules).relevant
        return rewrite(QUERY, filtered)

    result = benchmark(filtered_run)
    assert result.complete

    start = time.perf_counter()
    unfiltered = rewrite(QUERY, rules)
    unfiltered_time = time.perf_counter() - start
    start = time.perf_counter()
    filtered = filtered_run()
    filtered_time = time.perf_counter() - start
    assert unfiltered.ucq == filtered.ucq

    lines = [
        "Relevance filtering on the university ontology + 30 disjoint "
        "padding modules",
        "",
        f"rules total          : {len(rules)}",
        f"rules after filtering: {len(relevant_rules(QUERY, rules).relevant)}",
        f"unfiltered rewrite   : {unfiltered_time:.4f}s",
        f"filtered rewrite     : {filtered_time:.4f}s "
        f"({unfiltered_time / max(filtered_time, 1e-9):.1f}x)",
        "",
        "identical rewritings; the saturation loop no longer visits the",
        "ninety unreachable padding rules each round.",
    ]
    write_artifact("relevance_filtering.txt", "\n".join(lines))


def test_rewritability_probe(benchmark):
    cases = [
        ("Example 1, q(X) :- r(X,Y)", parse_query("q(X) :- r(X, Y)"), example1()),
        ("Example 2, q() :- r(\"a\",X)", EXAMPLE2_QUERY, example2()),
        (
            "Example 2, q(X,Y) :- t(X,Y)",
            parse_query("q(X, Y) :- t(X, Y)"),
            example2(),
        ),
        (
            "university, q(X) :- employee(X)",
            QUERY,
            university_ontology(),
        ),
    ]

    def probe_all():
        return [
            (name, probe_query_rewritability(query, rules, max_depth=10))
            for name, query, rules in cases
        ]

    reports = benchmark.pedantic(probe_all, rounds=1, iterations=1)
    verdicts = {name: report.verdict for name, report in reports}
    assert verdicts["Example 1, q(X) :- r(X,Y)"] is ProbeVerdict.TERMINATES
    assert verdicts['Example 2, q() :- r("a",X)'] is ProbeVerdict.DIVERGING
    assert verdicts["Example 2, q(X,Y) :- t(X,Y)"] is ProbeVerdict.TERMINATES

    lines = [
        "Per-query rewritability probe (Section 7 triage)",
        "",
        "case                                verdict      widths",
    ]
    for name, report in reports:
        widths = ",".join(str(w) for w in report.widths)
        lines.append(f"{name:<35} {report.verdict.value:<12} {widths}")
    lines += [
        "",
        "even over the non-WR Example 2, individual queries can be",
        "FO-rewritable (the t-query terminates) -- the per-query view",
        "[11] is strictly finer than the per-ontology class check.",
    ]
    write_artifact("rewritability_probe.txt", "\n".join(lines))
