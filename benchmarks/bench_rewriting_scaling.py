"""Rewriting scaling: UCQ size and time vs ontology depth/width.

A figure-like performance series for the rewriting engine itself, on
the two canonical DL-style families:

* a concept *hierarchy* of depth d -- the rewriting of a query on the
  top concept has exactly d+1 disjuncts (linear growth);
* a *role chain* of depth d -- existential propagation, the rewriting
  of a boolean query on the last relation also grows linearly.

The shape to observe: disjunct counts grow linearly (no blow-up on
these SWR families) and time stays polynomial.
"""

import time

from _harness import write_artifact

from repro.lang.atoms import Atom
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Variable
from repro.rewriting.rewriter import rewrite
from repro.workloads.generators import concept_hierarchy, role_chain

DEPTHS = (4, 8, 16, 32)


def hierarchy_series():
    rows = []
    for depth in DEPTHS:
        rules = concept_hierarchy(depth)
        query = ConjunctiveQuery(
            [Variable("X")], [Atom(f"c{depth}", [Variable("X")])]
        )
        start = time.perf_counter()
        result = rewrite(query, rules)
        elapsed = time.perf_counter() - start
        assert result.complete
        assert result.size == depth + 1
        rows.append((depth, result.size, elapsed))
    return rows


def chain_series():
    rows = []
    for depth in DEPTHS:
        rules = role_chain(depth)
        query = ConjunctiveQuery(
            [], [Atom(f"r{depth}", [Variable("X"), Variable("Y")])]
        )
        start = time.perf_counter()
        result = rewrite(query, rules)
        elapsed = time.perf_counter() - start
        assert result.complete
        assert result.size == depth + 1
        rows.append((depth, result.size, elapsed))
    return rows


def test_rewriting_scaling_hierarchy(benchmark):
    rules = concept_hierarchy(max(DEPTHS))
    query = ConjunctiveQuery(
        [Variable("X")], [Atom(f"c{max(DEPTHS)}", [Variable("X")])]
    )
    benchmark(lambda: rewrite(query, rules))

    rows = hierarchy_series()
    lines = [
        "Rewriting scaling -- concept hierarchy c0 ⊑ ... ⊑ c_d",
        "",
        "depth  disjuncts  seconds",
    ]
    lines.extend(
        f"{depth:>5}  {size:>9}  {elapsed:.4f}" for depth, size, elapsed in rows
    )
    lines += ["", "disjuncts = depth + 1 exactly: linear, no blow-up."]
    write_artifact("rewriting_scaling_hierarchy.txt", "\n".join(lines))


def test_rewriting_scaling_chain(benchmark):
    rules = role_chain(max(DEPTHS))
    query = ConjunctiveQuery(
        [], [Atom(f"r{max(DEPTHS)}", [Variable("X"), Variable("Y")])]
    )
    benchmark(lambda: rewrite(query, rules))

    rows = chain_series()
    lines = [
        "Rewriting scaling -- existential role chain r_i(x,y) -> "
        "r_{i+1}(x,z)",
        "",
        "depth  disjuncts  seconds",
    ]
    lines.extend(
        f"{depth:>5}  {size:>9}  {elapsed:.4f}" for depth, size, elapsed in rows
    )
    lines += [
        "",
        "boolean queries traverse the whole chain (the invented value",
        "needs no witness); linear growth again.",
    ]
    write_artifact("rewriting_scaling_chain.txt", "\n".join(lines))
